//! Facade-level differential fuzz sweep: a modest fixed seed range
//! through `expose::fuzz` must produce zero cross-layer disagreements
//! and cover every Table 5 feature bucket — the same contract the
//! `fuzz-smoke` CI job enforces at 2000 seeds, kept small enough for
//! `cargo test`.

use expose::core::SupportLevel;
use expose::fuzz::{generate_case, run_range, FuzzBudget, GenConfig};
use expose::syntax::features::FeatureSet;

#[test]
fn differential_sweep_is_clean_and_deterministic() {
    // Small in debug mode — the 2000-seed release sweep is the
    // fuzz-smoke CI job's.
    let cfg = GenConfig::default();
    let budget = FuzzBudget::quick();
    let (stats, failures) = run_range(0..120, &cfg, &budget);
    assert_eq!(stats.cases, 120);
    assert!(
        failures.is_empty(),
        "cross-layer disagreements: {:?}",
        failures
            .iter()
            .map(|f| (f.case.to_line(), f.disagreement.layer.name()))
            .collect::<Vec<_>>()
    );
    // Determinism: the identical range reproduces the identical stats.
    let (stats2, _) = run_range(0..120, &cfg, &budget);
    assert_eq!(stats, stats2, "same seeds must give same stats");
}

#[test]
fn feature_space_coverage_over_the_smoke_range() {
    // Coverage is a property of *generation* alone — no need to pay
    // for the four-layer differential check per seed here (the release
    // fuzz-smoke job gates the same property end to end).
    let cfg = GenConfig::default();
    let budget = FuzzBudget::quick();
    let mut seen = [false; 19];
    let mut supports = [false; 2];
    for seed in 0..2000u64 {
        let Ok(regex) = generate_case(seed, &cfg, &budget).regex() else {
            continue;
        };
        for (i, (_, present)) in FeatureSet::of(&regex).rows().iter().enumerate() {
            seen[i] |= present;
        }
        supports[usize::from(SupportLevel::required_for(&regex) >= SupportLevel::Captures)] = true;
    }
    let missing: Vec<&str> = FeatureSet::default()
        .rows()
        .iter()
        .zip(seen)
        .filter(|(_, s)| !s)
        .map(|((name, _), _)| *name)
        .collect();
    assert!(missing.is_empty(), "uncovered Table 5 buckets: {missing:?}");
    // The support-level metric sees both buckets.
    assert!(supports.iter().all(|&s| s));
}

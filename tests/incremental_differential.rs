//! Incremental ≡ from-scratch at the engine level: running DSE with
//! the assumption-stack flip sessions (the default) and with
//! `SolverConfig::incremental` off must produce identical verdict
//! trails, generated inputs, coverage and bugs — over every library
//! workload and a seeded generated corpus. The incremental run must
//! also actually exercise the new machinery (prefix reuse, verdict
//! replays), so the equality is not vacuous.

use expose::dse::{parser::parse_program, run_dse, EngineConfig, Harness, Report};

/// The deterministic projection both runs must agree on: everything
/// except wall-clock and cache hit/miss splits.
#[derive(Debug, PartialEq)]
struct Projection {
    coverage: Vec<u32>,
    executions: usize,
    tests_generated: usize,
    bugs: Vec<(u32, Vec<String>)>,
    verdicts: Vec<(bool, bool, bool, usize, bool)>,
}

fn project(report: &Report) -> Projection {
    let mut coverage: Vec<u32> = report.coverage.iter().copied().collect();
    coverage.sort_unstable();
    Projection {
        coverage,
        executions: report.executions,
        tests_generated: report.tests_generated,
        bugs: report.bugs.clone(),
        verdicts: report
            .queries
            .iter()
            .map(|q| {
                (
                    q.modeled_regex,
                    q.had_captures,
                    q.sat,
                    q.refinements,
                    q.limit_hit,
                )
            })
            .collect(),
    }
}

fn run_both(source: &str, entry: &str, arity: usize, max_executions: usize) -> (Report, Report) {
    let program = parse_program(source).expect("workload parses");
    let harness = Harness::strings(entry, arity);
    let base = EngineConfig {
        max_executions,
        max_steps: 50_000,
        ..EngineConfig::default()
    };
    let mut incremental_config = base.clone();
    incremental_config.solver.incremental = true;
    let mut scratch_config = base;
    scratch_config.solver.incremental = false;
    let incremental = run_dse(&program, &harness, &incremental_config);
    let scratch = run_dse(&program, &harness, &scratch_config);
    (incremental, scratch)
}

#[test]
fn library_workloads_agree_between_incremental_and_scratch() {
    let mut prefix_reuse = 0u64;
    let mut queries = 0usize;
    for w in expose::corpus::library_workloads() {
        let (incremental, scratch) = run_both(w.source, w.entry, w.arity, 8);
        assert_eq!(
            project(&incremental),
            project(&scratch),
            "{}: incremental diverged from scratch",
            w.name
        );
        assert_eq!(
            scratch.prefix_reuse_hits(),
            0,
            "{}: scratch run must not touch the session path",
            w.name
        );
        prefix_reuse += incremental.prefix_reuse_hits();
        queries += incremental.queries.len();
    }
    assert!(queries > 100, "only {queries} flip queries solved");
    assert!(
        prefix_reuse > 0,
        "the incremental runs never reused a prefix frame"
    );
}

#[test]
fn generated_corpus_agrees_between_incremental_and_scratch() {
    let mut verdict_replays = 0u64;
    for p in expose::corpus::generate_dse_programs(12, 0x1c4e5eed) {
        let (incremental, scratch) = run_both(&p.source, &p.entry, p.arity, 6);
        assert_eq!(
            project(&incremental),
            project(&scratch),
            "{}: incremental diverged from scratch",
            p.name
        );
        verdict_replays += incremental.verdict_replays();
    }
    assert!(
        verdict_replays > 0,
        "the generated corpus never replayed a CEGAR run"
    );
}

//! The docs book as a test subject: `docs/src/SUMMARY.md` must list
//! only chapters that exist, every chapter file must be reachable from
//! the summary, and no relative markdown link anywhere in the book (or
//! in `README.md`) may dangle — including `#anchor` fragments, which
//! must name a real heading in the target chapter. This is the "book
//! build" of the docs CI job: the container has no mdbook, but a
//! dangling link is a structural fact about the files, not the
//! renderer.

use std::collections::BTreeSet;
use std::path::{Component, Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn book_src() -> PathBuf {
    repo_root().join("docs").join("src")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

/// Markdown files of the book, relative to `docs/src`, sorted.
fn book_chapters() -> Vec<PathBuf> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap_or_else(|e| panic!("cannot list {dir:?}: {e}"))
            .map(|entry| entry.expect("readable entry").path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                walk(&path, out);
            } else if path.extension().is_some_and(|ext| ext == "md") {
                out.push(path);
            }
        }
    }
    let mut files = Vec::new();
    walk(&book_src(), &mut files);
    files
}

/// Inline links `[text](target)` outside fenced code blocks.
fn markdown_links(source: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in source.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                if let Some(close) = line[i + 2..].find(')') {
                    links.push(line[i + 2..i + 2 + close].to_string());
                    i += 2 + close;
                    continue;
                }
            }
            i += 1;
        }
    }
    links
}

/// GitHub/mdBook-style anchor slugs of the file's headings.
fn heading_slugs(source: &str) -> BTreeSet<String> {
    let mut slugs = BTreeSet::new();
    let mut in_fence = false;
    for line in source.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let title = line.trim_start_matches('#').trim();
        let mut slug = String::new();
        for c in title.chars() {
            match c {
                ' ' => slug.push('-'),
                c if c.is_ascii_alphanumeric() || c == '-' || c == '_' => {
                    slug.push(c.to_ascii_lowercase())
                }
                _ => {}
            }
        }
        slugs.insert(slug);
    }
    slugs
}

/// Resolves `link` (a relative path, fragment already split off)
/// against the directory of `from`, without touching the filesystem
/// for the `..` handling so escapes above the repo root are caught.
fn resolve(from: &Path, link: &str) -> PathBuf {
    let mut parts: Vec<Component> = from
        .parent()
        .expect("files have parents")
        .components()
        .collect();
    for component in Path::new(link).components() {
        match component {
            Component::ParentDir => {
                assert!(
                    parts.pop().is_some(),
                    "{from:?}: link {link:?} escapes the repository"
                );
            }
            Component::CurDir => {}
            other => parts.push(other),
        }
    }
    parts.iter().collect()
}

/// Checks every relative link of `file`; external and bare-anchor
/// links are skipped. Returns the broken ones.
fn broken_links(file: &Path) -> Vec<String> {
    let source = read(file);
    let mut broken = Vec::new();
    for link in markdown_links(&source) {
        if link.starts_with("http://")
            || link.starts_with("https://")
            || link.starts_with("mailto:")
            || link.starts_with('#')
        {
            continue;
        }
        let (path_part, fragment) = match link.split_once('#') {
            Some((p, f)) => (p, Some(f.to_string())),
            None => (link.as_str(), None),
        };
        let target = resolve(file, path_part);
        if !target.exists() {
            broken.push(format!("{} -> {link} (missing file)", file.display()));
            continue;
        }
        if let Some(fragment) = fragment {
            if target.extension().is_some_and(|ext| ext == "md")
                && !heading_slugs(&read(&target)).contains(&fragment)
            {
                broken.push(format!("{} -> {link} (missing anchor)", file.display()));
            }
        }
    }
    broken
}

#[test]
fn summary_lists_existing_chapters_and_no_orphans() {
    let summary_path = book_src().join("SUMMARY.md");
    let summary = read(&summary_path);
    let mut listed = BTreeSet::new();
    for link in markdown_links(&summary) {
        let target = resolve(&summary_path, &link);
        assert!(
            target.exists(),
            "SUMMARY.md lists a missing chapter: {link}"
        );
        listed.insert(target);
    }
    assert!(!listed.is_empty(), "SUMMARY.md lists no chapters");
    for chapter in book_chapters() {
        if chapter == summary_path {
            continue;
        }
        assert!(
            listed.contains(&chapter),
            "chapter not reachable from SUMMARY.md: {}",
            chapter.display()
        );
    }
}

#[test]
fn no_dangling_links_in_book_or_readme() {
    let mut files = book_chapters();
    files.push(repo_root().join("README.md"));
    let broken: Vec<String> = files.iter().flat_map(|f| broken_links(f)).collect();
    assert!(broken.is_empty(), "dangling links:\n{}", broken.join("\n"));
}

#[test]
fn readme_stays_a_landing_page() {
    let lines = read(&repo_root().join("README.md")).lines().count();
    assert!(
        lines <= 120,
        "README.md is {lines} lines; keep it a landing page (<= 120) and grow the book instead"
    );
}

//! The Table 6 workloads as integration tests: every library program
//! parses, runs, and full support beats concretization on the
//! regex-heavy ones.

use expose::core::SupportLevel;
use expose::dse::{parser::parse_program, run_dse, EngineConfig, Harness};

#[test]
fn all_workloads_execute() {
    for w in expose::corpus::library_workloads() {
        let program =
            parse_program(w.source).unwrap_or_else(|e| panic!("{} must parse: {e}", w.name));
        let report = run_dse(
            &program,
            &Harness::strings(w.entry, w.arity),
            &EngineConfig {
                max_executions: 2,
                ..EngineConfig::default()
            },
        );
        assert!(report.executions >= 1, "{} must run", w.name);
        assert!(
            report.coverage_fraction() > 0.0,
            "{} must cover code",
            w.name
        );
    }
}

#[test]
fn full_support_beats_concrete_on_yn() {
    let w = expose::corpus::library_workloads()
        .into_iter()
        .find(|w| w.name == "yn")
        .expect("yn workload");
    let program = parse_program(w.source).expect("parse");
    let harness = Harness::strings(w.entry, w.arity);
    let concrete = run_dse(
        &program,
        &harness,
        &EngineConfig {
            support: SupportLevel::Concrete,
            max_executions: 10,
            ..EngineConfig::default()
        },
    );
    let full = run_dse(
        &program,
        &harness,
        &EngineConfig {
            support: SupportLevel::Refinement,
            max_executions: 10,
            ..EngineConfig::default()
        },
    );
    assert!(
        full.coverage_fraction() > concrete.coverage_fraction(),
        "full {:.2} vs concrete {:.2}",
        full.coverage_fraction(),
        concrete.coverage_fraction()
    );
}

//! Cross-crate integration tests: parser → model → solver → CEGAR →
//! oracle, and the full DSE pipeline.

use expose::core::{api::build_match_model, cegar::CegarSolver, model::BuildConfig};
use expose::dse::{parser::parse_program, run_dse, EngineConfig, Harness};
use expose::matcher::RegExp;
use expose::strsolve::{Formula, Outcome, VarPool};
use expose::syntax::Regex;

/// Solves a positive membership query and validates the witness with
/// the concrete matcher.
fn witness_for(literal: &str) -> Option<String> {
    let regex = Regex::parse_literal(literal).expect("literal");
    let mut pool = VarPool::new();
    let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
    let result = CegarSolver::default().solve(&Formula::top(), std::slice::from_ref(&c));
    match result.outcome {
        Outcome::Sat(model) => {
            let input = model.get_str(c.input).expect("assigned").to_string();
            let mut oracle = RegExp::from_regex(regex);
            assert!(
                oracle.test(&input),
                "CEGAR witness {input:?} must match {literal} concretely"
            );
            Some(input)
        }
        _ => None,
    }
}

/// Solves a negative query and validates the witness does not match.
fn non_witness_for(literal: &str) -> Option<String> {
    let regex = Regex::parse_literal(literal).expect("literal");
    let mut pool = VarPool::new();
    let c = build_match_model(&regex, false, &mut pool, &BuildConfig::default());
    let result = CegarSolver::default().solve(&Formula::top(), std::slice::from_ref(&c));
    match result.outcome {
        Outcome::Sat(model) => {
            let input = model.get_str(c.input).expect("assigned").to_string();
            let mut oracle = RegExp::from_regex(regex);
            assert!(
                !oracle.test(&input),
                "negative witness {input:?} must NOT match {literal}"
            );
            Some(input)
        }
        _ => None,
    }
}

#[test]
fn membership_witnesses_validate() {
    for literal in [
        "/goo+d/",
        "/^[0-9]{2,4}$/",
        r"/^<(\w+)>$/",
        "/a|b|c/",
        r"/\bword\b/",
        "/(?=ab)a./",
        "/colou?r/i",
        "/^line$/m",
    ] {
        assert!(
            witness_for(literal).is_some(),
            "{literal} should have a witness"
        );
    }
}

#[test]
fn backref_witnesses_validate() {
    for literal in [r"/^(ab|c)\1$/", r"/(['x])y\1/", r"/^(a+)-\1$/"] {
        assert!(
            witness_for(literal).is_some(),
            "{literal} should have a witness"
        );
    }
}

#[test]
fn non_membership_witnesses_validate() {
    for literal in ["/^a+$/", "/goo+d/", "/^[0-9]+$/", r"/^(x)\1$/"] {
        assert!(
            non_witness_for(literal).is_some(),
            "{literal} should have a non-matching witness"
        );
    }
}

#[test]
fn unsatisfiable_membership_is_unsat() {
    // `a` anchored both ways to be both "a" and "b" via conjunction.
    let regex = Regex::parse_literal("/^a$/").expect("literal");
    let mut pool = VarPool::new();
    let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
    let problem = Formula::eq_lit(c.input, "b");
    let result = CegarSolver::default().solve(&problem, &[c]);
    assert_eq!(result.outcome, Outcome::Unsat);
}

#[test]
fn paper_overview_path_constraints() {
    // §3.2's second step: covering the "timeout" branch requires an
    // input whose C1 is exactly "timeout".
    let regex = Regex::parse_literal(r"/^<(\w+)>([0-9]*)<\/\1>$/").expect("literal");
    let mut pool = VarPool::new();
    let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
    let problem = Formula::and(vec![
        Formula::bool_is(c.captures[1].defined, true),
        Formula::eq_lit(c.captures[1].value, "timeout"),
        // The bug: C2 (the number) empty.
        Formula::bool_is(c.captures[2].defined, true),
        Formula::eq_lit(c.captures[2].value, ""),
    ]);
    let result = CegarSolver::default().solve(&problem, std::slice::from_ref(&c));
    let model = result.outcome.model().expect("satisfiable");
    let input = model.get_str(c.input).expect("assigned");
    assert_eq!(input, "<timeout></timeout>");
}

#[test]
fn dse_covers_nested_regex_branches() {
    let program = parse_program(
        r#"function route(path) {
            let m = /^\/api\/([a-z]+)\/([0-9]+)$/.exec(path);
            if (m) {
                if (m[1] === "users") { return "user"; }
                return "resource";
            }
            if (/^\/static\//.test(path)) { return "static"; }
            return "404";
        }"#,
    )
    .expect("parse");
    let report = run_dse(
        &program,
        &Harness::strings("route", 1),
        &EngineConfig {
            max_executions: 24,
            ..EngineConfig::default()
        },
    );
    assert!(
        report.coverage_fraction() > 0.99,
        "all four outcomes reachable: {report:?}"
    );
}

#[test]
fn support_levels_are_monotone_on_capture_program() {
    use expose::core::SupportLevel;
    let src = r#"function f(s) {
        let m = /^([a-z]+):([0-9]+)$/.exec(s);
        if (m) {
            if (m[1] === "port") { return "port"; }
            return "pair";
        }
        return "none";
    }"#;
    let program = parse_program(src).expect("parse");
    let mut coverage = Vec::new();
    for level in SupportLevel::ALL {
        let report = run_dse(
            &program,
            &Harness::strings("f", 1),
            &EngineConfig {
                support: level,
                max_executions: 16,
                ..EngineConfig::default()
            },
        );
        coverage.push(report.coverage_fraction());
    }
    // Concrete ≤ Modeling ≤ Captures (±: refinement equal here).
    assert!(coverage[1] >= coverage[0]);
    assert!(coverage[2] >= coverage[1]);
    assert!(coverage[3] >= coverage[2] - 1e-9);
    // And captures genuinely matter for this program.
    assert!(coverage[2] > coverage[1]);
}

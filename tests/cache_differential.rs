//! Differential tests for the cross-query caches and the parallel flip
//! solver: hits and misses must be observationally identical — same
//! `Sat`/`Unsat`/`Unknown` verdicts, same models — and a DSE report
//! must not depend on the flip worker count.

use std::sync::Arc;

use expose::core::{build_match_model, BuildConfig, ModelCache, SupportLevel};
use expose::dse::{parser::parse_program, run_dse, DseCaches, EngineConfig, Harness, Report};
use expose::strsolve::{Formula, QueryCache, Solver, Term, VarPool};
use expose::syntax::Regex;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// A random conjunction over a small variable pool, mirroring the
/// constraint families the capturing-language models emit.
fn random_formula(rng: &mut StdRng, pool: &mut VarPool) -> Formula {
    let vars: Vec<_> = (0..4).map(|i| pool.fresh_str(format!("v{i}"))).collect();
    let flags: Vec<_> = (0..2).map(|i| pool.fresh_bool(format!("b{i}"))).collect();
    let literals = ["", "a", "b", "ab", "abc", "cc"];
    let n = 1 + rng.random_range(0usize..4);
    let mut conjuncts = Vec::new();
    for _ in 0..n {
        let v = *vars.choose(rng).expect("nonempty");
        let u = *vars.choose(rng).expect("nonempty");
        let lit = *literals.choose(rng).expect("nonempty");
        conjuncts.push(match rng.random_range(0usize..8) {
            0 => Formula::eq_concat(v, vec![Term::Var(u), Term::lit(lit)]),
            1 => Formula::eq_concat(v, vec![Term::lit(lit), Term::Var(u), Term::Var(u)]),
            2 => Formula::eq_lit(v, lit),
            3 => Formula::ne_lit(v, lit),
            4 => Formula::eq_var(v, u),
            5 => Formula::ne_var(v, u),
            // Definedness flags, including inside disjunctions whose
            // untaken branch leaves a flag unassigned — a cached model
            // must not invent assignments for those.
            6 => Formula::bool_is(
                *flags.choose(rng).expect("nonempty"),
                rng.random_range(0usize..2) == 0,
            ),
            _ => Formula::or(vec![
                Formula::bool_is(flags[0], true),
                Formula::bool_is(flags[1], true),
            ]),
        });
    }
    Formula::and(conjuncts)
}

#[test]
fn query_cache_verdicts_match_uncached_on_random_corpus() {
    let cache = Arc::new(QueryCache::new(4096));
    let cached_solver = Solver::default().with_cache(cache.clone());
    let uncached_solver = Solver::default();

    let mut agreements = 0usize;
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(0xcafe ^ seed);
        let mut pool = VarPool::new();
        let formula = random_formula(&mut rng, &mut pool);

        let (reference, _) = uncached_solver.solve(&formula);
        // First solve may miss or hit (structurally equal formulas
        // recur across seeds); the second is always a hit.
        let (first, _) = cached_solver.solve(&formula);
        let (second, s2) = cached_solver.solve(&formula);
        assert_eq!(s2.cache_hits, 1, "seed {seed}: second solve must hit");

        // Verdicts and models must agree exactly: the solver is
        // deterministic, so the cache must be invisible.
        assert_eq!(reference, first, "seed {seed}: miss path diverged");
        assert_eq!(reference, second, "seed {seed}: hit path diverged");
        agreements += 1;
    }
    assert_eq!(agreements, 300);
    assert!(cache.hits() >= 300);
}

#[test]
fn query_cache_is_sound_across_pools_with_disjoint_numbering() {
    // The same structural query asked from pools with different raw
    // indices: the hit must be rehydrated into the asking pool's vars.
    let cache = Arc::new(QueryCache::new(64));
    let solver = Solver::default().with_cache(cache.clone());
    for padding in 0..5usize {
        let mut pool = VarPool::new();
        for i in 0..padding {
            pool.fresh_str(format!("pad{i}"));
        }
        let v = pool.fresh_str("v");
        let u = pool.fresh_str("u");
        let formula = Formula::and(vec![
            Formula::eq_concat(v, vec![Term::lit("x"), Term::Var(u)]),
            Formula::eq_lit(u, "y"),
        ]);
        let (outcome, _) = solver.solve(&formula);
        let model = outcome.model().expect("sat");
        assert_eq!(model.get_str(v), Some("xy"), "padding {padding}");
        assert_eq!(model.get_str(u), Some("y"), "padding {padding}");
    }
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), 4);
}

#[test]
fn model_cache_hit_equals_fresh_build_for_paper_patterns() {
    let patterns = [
        "/^a+$/",
        "/^v?(\\d+)\\.(\\d+)\\.(\\d+)(-([a-z0-9.]+))?$/",
        "/^<(\\w+)>([0-9]*)<\\/\\1>$/",
        "/(a|ab)/",
        "/^a*(a)?$/",
        "/^(?!foo)[a-z]+$/",
    ];
    let cache = ModelCache::new(64);
    let cfg = BuildConfig::default();
    for literal in patterns {
        let regex = Regex::parse_literal(literal).expect("literal");
        for positive in [true, false] {
            // Prime, then hit.
            let mut warm = VarPool::new();
            cache.get_or_build(&regex, positive, SupportLevel::Refinement, &mut warm, &cfg);
            let mut pool_hit = VarPool::new();
            let (cached, hit) = cache.get_or_build(
                &regex,
                positive,
                SupportLevel::Refinement,
                &mut pool_hit,
                &cfg,
            );
            assert!(hit, "{literal} ({positive}) must hit after priming");

            let mut pool_fresh = VarPool::new();
            let fresh = build_match_model(&regex, positive, &mut pool_fresh, &cfg);
            // The rebased cached model must be *identical* to a direct
            // build into an identically-sized pool.
            assert_eq!(cached.formula, fresh.formula, "{literal} ({positive})");
            assert_eq!(cached.input, fresh.input);
            assert_eq!(cached.captures, fresh.captures);
            assert_eq!(cached.exact, fresh.exact);

            // And solving both must agree.
            let solver = Solver::default();
            let (a, _) = solver.solve(&cached.formula);
            let (b, _) = solver.solve(&fresh.formula);
            assert_eq!(a, b, "{literal} ({positive})");
        }
    }
}

/// Everything except timing- and scheduling-dependent report fields.
fn comparable(r: &Report) -> impl PartialEq + std::fmt::Debug {
    (
        {
            let mut coverage: Vec<_> = r.coverage.iter().copied().collect();
            coverage.sort_unstable();
            coverage
        },
        r.stmt_count,
        r.executions,
        r.tests_generated,
        r.bugs.clone(),
        r.queries
            .iter()
            .map(|q| (q.sat, q.refinements, q.limit_hit, q.modeled_regex))
            .collect::<Vec<_>>(),
    )
}

#[test]
fn flip_workers_one_and_eight_produce_identical_reports() {
    for w in expose::corpus::library_workloads()
        .into_iter()
        .filter(|w| matches!(w.name, "semver" | "yn" | "query-string"))
    {
        let program = parse_program(w.source).expect("parse");
        let harness = Harness::strings(w.entry, w.arity);
        let base = EngineConfig {
            max_executions: 10,
            ..EngineConfig::default()
        };
        let serial = run_dse(
            &program,
            &harness,
            &EngineConfig {
                flip_workers: 1,
                ..base.clone()
            },
        );
        let parallel = run_dse(
            &program,
            &harness,
            &EngineConfig {
                flip_workers: 8,
                ..base
            },
        );
        assert_eq!(
            comparable(&serial),
            comparable(&parallel),
            "{}: worker count changed the report",
            w.name
        );
    }
}

#[test]
fn shared_caches_across_runs_preserve_reports() {
    // Two runs of the same program against one shared cache set: the
    // second run (all-hits) must reproduce the first run's report.
    let program = parse_program(
        r#"function f(x) {
            let m = /^([a-z]+)-(\d+)$/.exec(x);
            if (m) { if (m[1] === "build") { return 1; } return 2; }
            return 0;
        }"#,
    )
    .expect("parse");
    let harness = Harness::strings("f", 1);
    let config = EngineConfig {
        max_executions: 10,
        ..EngineConfig::default()
    };
    let caches = DseCaches::from_config(&config);
    let cold = expose::dse::run_dse_with_caches(&program, &harness, &config, &caches);
    let warm = expose::dse::run_dse_with_caches(&program, &harness, &config, &caches);
    assert_eq!(comparable(&cold), comparable(&warm));
    assert!(
        warm.model_cache_hits > 0 && warm.model_cache_misses == 0,
        "warm run must be all model-cache hits: {warm:?}"
    );
}

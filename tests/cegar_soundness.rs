//! Differential soundness tests for the CEGAR loop (Algorithm 1)
//! against the concrete ES6 matcher:
//!
//! * every `Sat` witness of a positive membership model must be
//!   accepted by the concrete `RegExp` oracle (model soundness);
//! * every `Unsat` on a literal-equality query (`input = s`) must be
//!   confirmed unmatched by the oracle on `s` (refutation soundness) —
//!   and symmetrically, a `Sat` answer must pin the input to a string
//!   the oracle accepts.

use expose::core::{api::build_match_model, cegar::CegarSolver, model::BuildConfig};
use expose::matcher::RegExp;
use expose::strsolve::{Formula, Outcome, VarPool};
use expose::syntax::Regex;

/// Regex corpus spanning the feature classes the CEGAR loop must get
/// right: captures, anchors, lazy quantifiers, and lookaheads.
fn corpus() -> Vec<&'static str> {
    vec![
        // Captures and alternation.
        "/^(a+)(b+)$/",
        "/^(a|ab)(c|bc)$/",
        "/(x+)(x*)y/",
        "/^(?:(a)|(b))+$/",
        // Anchors.
        "/^ab$/",
        "/^a*(a)?$/",
        "/end$/",
        "/^start/",
        // Lazy quantifiers.
        "/^(a+?)(a+)$/",
        "/^(.*?)=(.*)$/",
        "/<(.+?)>/",
        // Lookaheads.
        "/(?=ab)a(b)/",
        "/(?!aa)a(b|c)/",
        r"/^(?=[a-z]+$)(\w+)x$/",
        // Backreferences.
        r"/^(ab|c)\1$/",
    ]
}

/// Literal candidate inputs exercised against every corpus regex.
fn candidates() -> Vec<&'static str> {
    vec![
        "", "a", "b", "ab", "ba", "aa", "abc", "aab", "abab", "cc", "xy", "xxy", "a=b", "=", "<t>",
        "start", "end", "zx", "ax",
    ]
}

#[test]
fn sat_witnesses_accepted_by_oracle() {
    for literal in corpus() {
        let regex = Regex::parse_literal(literal).expect("corpus literal parses");
        let mut pool = VarPool::new();
        let constraint = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
        let result =
            CegarSolver::default().solve(&Formula::top(), std::slice::from_ref(&constraint));
        match result.outcome {
            Outcome::Sat(model) => {
                let input = model.get_str(constraint.input).expect("input assigned");
                let mut oracle = RegExp::from_regex(regex);
                assert!(
                    oracle.test(input),
                    "CEGAR witness {input:?} for {literal} rejected by the concrete matcher"
                );
            }
            Outcome::Unknown if !constraint.exact => {}
            other => panic!("{literal} should be satisfiable, got {other:?}"),
        }
    }
}

#[test]
fn literal_equality_queries_agree_with_oracle() {
    for literal in corpus() {
        let regex = Regex::parse_literal(literal).expect("corpus literal parses");
        for candidate in candidates() {
            let mut pool = VarPool::new();
            let constraint = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
            let problem = Formula::eq_lit(constraint.input, candidate);
            let result = CegarSolver::default().solve(&problem, std::slice::from_ref(&constraint));
            let mut oracle = RegExp::from_regex(regex.clone());
            let concrete = oracle.test(candidate);
            match result.outcome {
                Outcome::Sat(model) => {
                    assert_eq!(
                        model.get_str(constraint.input),
                        Some(candidate),
                        "Sat model must pin input to the literal for {literal}"
                    );
                    assert!(
                        concrete,
                        "CEGAR Sat on {literal} = {candidate:?} but the oracle rejects it"
                    );
                }
                Outcome::Unsat => {
                    assert!(
                        !concrete,
                        "CEGAR Unsat on {literal} = {candidate:?} but the oracle accepts it"
                    );
                }
                Outcome::Unknown => {
                    // Allowed only for inexact models (budget/approx);
                    // exact models must decide this small corpus.
                    assert!(
                        !constraint.exact,
                        "unexpected Unknown for exact model {literal} = {candidate:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn negative_literal_queries_agree_with_oracle() {
    // The §4.4 non-membership models, differentially on pinned inputs.
    for literal in corpus() {
        let regex = Regex::parse_literal(literal).expect("corpus literal parses");
        for candidate in candidates() {
            let mut pool = VarPool::new();
            let constraint = build_match_model(&regex, false, &mut pool, &BuildConfig::default());
            let problem = Formula::eq_lit(constraint.input, candidate);
            let result = CegarSolver::default().solve(&problem, std::slice::from_ref(&constraint));
            let mut oracle = RegExp::from_regex(regex.clone());
            let concrete = oracle.test(candidate);
            match result.outcome {
                Outcome::Sat(_) => assert!(
                    !concrete,
                    "non-membership Sat on {literal} ≠ {candidate:?} but the oracle matches"
                ),
                Outcome::Unsat => assert!(
                    concrete,
                    "non-membership Unsat on {literal} ≠ {candidate:?} but the oracle rejects"
                ),
                Outcome::Unknown => {
                    assert!(
                        !constraint.exact,
                        "unexpected Unknown for exact model {literal} nonmatch {candidate:?}"
                    );
                }
            }
        }
    }
}

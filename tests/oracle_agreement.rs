//! Property-based tests of the paper's central soundness invariants:
//!
//! * every CEGAR-accepted model re-validates under the concrete matcher
//!   with identical capture assignments (Algorithm 1 termination
//!   property, §5.4);
//! * the concrete matcher agrees with a classical DFA on regular
//!   patterns.

use expose::core::{api::build_match_model, cegar::CegarSolver, model::BuildConfig};
use expose::matcher::RegExp;
use expose::strsolve::{Formula, Outcome, VarPool};
use expose::syntax::Regex;
use proptest::prelude::*;

/// A small pool of regexes covering the feature matrix.
fn regex_pool() -> Vec<&'static str> {
    vec![
        "/^a*(a)?$/",
        "/^(a*)(a*)$/",
        "/^(a|ab)(c|bc)$/",
        r"/^(\w+)=(\w*)$/",
        "/(x+)(x*)y/",
        r"/^(ab|c)\1$/",
        "/^-?([0-9]+)(\\.([0-9]+))?$/",
        "/(?:(a)|(b))+/",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CEGAR-accepted capture assignments equal the engine's.
    #[test]
    fn cegar_models_agree_with_oracle(
        idx in 0usize..8,
        pin in "[ab=x0-9]{0,4}",
    ) {
        let literal = regex_pool()[idx];
        let regex = Regex::parse_literal(literal).expect("literal");
        let mut pool = VarPool::new();
        let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
        // Half the runs pin the input to a random short string, which
        // stresses the refinement loop on ambiguous splits.
        let problem = if pin.is_empty() {
            Formula::top()
        } else {
            Formula::eq_lit(c.input, pin.clone())
        };
        let result = CegarSolver::default().solve(&problem, std::slice::from_ref(&c));
        if let Outcome::Sat(model) = result.outcome {
            let input = model.get_str(c.input).expect("assigned");
            let mut oracle = RegExp::from_regex(regex);
            let concrete = oracle.exec(input).expect("must match concretely");
            for (i, cap) in c.captures.iter().enumerate() {
                let oracle_value = concrete.captures.get(i).cloned().flatten();
                let model_value = if model.get_bool(cap.defined) {
                    Some(model.get_str(cap.value).unwrap_or("").to_string())
                } else {
                    None
                };
                prop_assert_eq!(
                    oracle_value, model_value,
                    "capture {} of {} on {:?}", i, literal, input
                );
            }
        }
    }

    /// The backtracking matcher decides classical membership exactly as
    /// the DFA does.
    #[test]
    fn matcher_agrees_with_dfa(input in "[abc]{0,8}") {
        use expose::automata::{compile_classical, Alphabet, CompileOptions, Dfa};
        use std::sync::Arc;

        for pattern in ["a(b|c)*", "(ab)+c?", "a{2,3}b", "(a|b)c"] {
            let ast = expose::syntax::parse(pattern).expect("parse");
            let re = compile_classical(&ast, &CompileOptions::default()).expect("classical");
            let mut sets = Vec::new();
            re.collect_sets(&mut sets);
            let alphabet = Arc::new(Alphabet::from_sets(&sets));
            let dfa = Dfa::from_cregex(&re, &alphabet);

            // Anchor the pattern for whole-word comparison.
            let mut anchored = RegExp::new(&format!("^(?:{pattern})$"), "").expect("regex");
            prop_assert_eq!(
                anchored.test(&input),
                dfa.contains(&input),
                "pattern {} on {:?}", pattern, input
            );
        }
    }

    /// Negative models never produce matching witnesses.
    #[test]
    fn negative_witnesses_never_match(idx in 0usize..8) {
        let literal = regex_pool()[idx];
        let regex = Regex::parse_literal(literal).expect("literal");
        let mut pool = VarPool::new();
        let c = build_match_model(&regex, false, &mut pool, &BuildConfig::default());
        let result = CegarSolver::default().solve(&Formula::top(), std::slice::from_ref(&c));
        if let Outcome::Sat(model) = result.outcome {
            let input = model.get_str(c.input).expect("assigned");
            let mut oracle = RegExp::from_regex(regex);
            prop_assert!(!oracle.test(input), "{} matched {:?}", literal, input);
        }
    }
}

//! The §3.4 matching-precedence walkthrough.
//!
//! The base model for `/^a*(a)?$/` admits the spurious tuple
//! ("aa", "aa", "a"); the CEGAR loop (Algorithm 1) validates candidates
//! against the concrete matcher and refines until the capture agrees
//! with greedy semantics: C1 = ⊥.
//!
//! Run with: `cargo run --example refinement`

use expose::core::{api::build_match_model, cegar::CegarSolver, model::BuildConfig};
use expose::strsolve::{Formula, Solver, VarPool};
use expose::syntax::Regex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let regex = Regex::parse_literal("/^a*(a)?$/")?;
    println!("regex: {regex}, input pinned to \"aa\"");

    let mut pool = VarPool::new();
    let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
    let problem = Formula::eq_lit(c.input, "aa");

    // Without refinement the base model may assign C1 = "a" (spurious).
    let plain = Solver::default();
    let mut parts = vec![problem.clone(), c.formula.clone()];
    parts.push(Formula::top());
    let (outcome, _) = plain.solve(&Formula::and(parts));
    if let Some(model) = outcome.model() {
        let c1 = if model.get_bool(c.captures[1].defined) {
            format!("{:?}", model.get_str(c.captures[1].value).unwrap_or(""))
        } else {
            "⊥".to_string()
        };
        println!("base model (no refinement): C1 = {c1}");
    }

    // With CEGAR the answer is engine-correct: C1 = ⊥.
    let result = CegarSolver::default().solve(&problem, std::slice::from_ref(&c));
    let model = result.outcome.model().expect("satisfiable");
    assert!(!model.get_bool(c.captures[1].defined));
    println!(
        "CEGAR ({} refinement(s)): C1 = ⊥, C0 = {:?} — matches V8/spec semantics",
        result.stats.refinements,
        model.get_str(c.captures[0].value).unwrap_or("")
    );
    Ok(())
}

//! Quickstart: solve capturing-language constraints for an ES6 regex.
//!
//! Models `/<(\w+)>([0-9]*)<\/\1>/` (the Listing 1 regex), asks the
//! CEGAR solver for a matching input whose first capture group equals
//! `"timeout"`, and validates the witness with the concrete matcher.
//!
//! Run with: `cargo run --example quickstart`

use expose::core::{api::build_match_model, cegar::CegarSolver, model::BuildConfig};
use expose::matcher::RegExp;
use expose::strsolve::{Formula, VarPool};
use expose::syntax::Regex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let regex = Regex::parse_literal(r"/<(\w+)>([0-9]*)<\/\1>/")?;
    println!("regex: {regex}");

    // Build the Algorithm 2 membership model (w, C0, C1, C2) ∈ Lc(R).
    let mut pool = VarPool::new();
    let constraint = build_match_model(&regex, true, &mut pool, &BuildConfig::default());

    // Constrain C1 = "timeout" (the §3.2 scenario).
    let problem = Formula::and(vec![
        Formula::bool_is(constraint.captures[1].defined, true),
        Formula::eq_lit(constraint.captures[1].value, "timeout"),
    ]);

    // Solve with matching-precedence refinement (Algorithm 1).
    let result = CegarSolver::default().solve(&problem, std::slice::from_ref(&constraint));
    let model = result.outcome.model().expect("constraint is satisfiable");
    let input = model.get_str(constraint.input).expect("input assigned");
    println!("solver witness: {input:?}");
    println!("refinements used: {}", result.stats.refinements);

    // Validate with the concrete ES6 matcher — the witness must really
    // match and bind C1 = "timeout".
    let mut oracle = RegExp::from_regex(regex);
    let m = oracle.exec(input).expect("witness matches concretely");
    println!("concrete match: {:?}", m.captures);
    assert_eq!(m.group(1), Some("timeout"));
    println!("OK: capture-correct input generated.");
    Ok(())
}

//! The §7.1 survey on a synthetic corpus sample.
//!
//! Generates 2,000 synthetic packages calibrated to the paper's feature
//! frequencies and prints the Table 4 rows. (The full table binaries in
//! `crates/bench` print paper-vs-measured comparisons.)
//!
//! Run with: `cargo run --example survey_demo`

use expose::corpus::{generate_corpus, CorpusProfile};
use expose::survey::survey_packages;

fn main() {
    let packages = generate_corpus(2_000, &CorpusProfile::default(), 1);
    let survey = survey_packages(&packages);

    println!(
        "survey over {} synthetic packages:",
        survey.packages.packages
    );
    for (label, count, pct) in survey.packages.rows() {
        println!("  {label:<38} {count:>7}  {pct:>5.1}%");
    }
    println!(
        "regexes: {} total, {} unique",
        survey.features.total, survey.features.unique
    );
    println!("top features by unique usage:");
    for (name, _total, _tp, unique, up) in survey.features.rows().into_iter().take(6) {
        println!("  {name:<20} {unique:>6} ({up:.1}% of unique)");
    }
}

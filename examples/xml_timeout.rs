//! Listing 1 of the paper: DSE finds the regex bug — and the two match
//! engines handle the XML patterns it is built around.
//!
//! The program parses `<tag>number</tag>` arguments; because the number
//! part uses a Kleene star, `<timeout></timeout>` sets `timeout` to the
//! empty string and the final assertion fails. Dynamic symbolic
//! execution with the capturing-language models finds that input
//! automatically (§3.2).
//!
//! The second half runs the same family of patterns through both match
//! engines directly: the Listing 1 regex carries a backreference and
//! stays on the backtracker, while a catastrophic open-tag variant
//! blows past a generous backtracking budget yet is decided by the
//! Pike-VM fast path in a few hundred linear steps.
//!
//! Run with: `cargo run --example xml_timeout`

use expose::dse::{parser::parse_program, run_dse, EngineConfig, Harness};
use expose::matcher::{compile, select, Engine, EngineKind, PikeVm};
use expose::syntax::{Flags, Regex};

const LISTING_1: &str = r#"
function processArgs(args) {
    let timeout = "500";
    for (let i = 0; i < args.length; i = i + 1) {
        let arg = args[i];
        let parts = /^<(\w+)>([0-9]*)<\/\1>$/.exec(arg);
        if (parts) {
            if (parts[1] === "timeout") {
                timeout = parts[2];
            }
        }
    }
    assert(/^[0-9]+$/.test(timeout) === true);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(LISTING_1)?;
    let harness = Harness::string_array("processArgs", 1);
    let config = EngineConfig {
        max_executions: 48,
        ..EngineConfig::default()
    };

    println!("running DSE on Listing 1 (paper §3.2) ...");
    let report = run_dse(&program, &harness, &config);
    println!(
        "executions: {}, tests generated: {}, coverage: {:.0}%",
        report.executions,
        report.tests_generated,
        100.0 * report.coverage_fraction()
    );

    match report.bugs.first() {
        Some((stmt, inputs)) => {
            println!(
                "assertion failure at statement {stmt} with input {:?}",
                inputs[0]
            );
            println!("(the paper's predicted bug input is \"<timeout></timeout>\")");
        }
        None => println!("no bug found — increase the execution budget"),
    }
    assert!(!report.bugs.is_empty(), "the Listing 1 bug must be found");

    println!();
    println!("engine routing for the XML patterns:");

    // Listing 1's tag matcher: the \1 backreference is inexpressible in
    // a Thompson program, so the selection analysis keeps it on the
    // spec-operational backtracker.
    let listing1 = Regex::new(r"^<(\w+)>([0-9]*)<\/\1>$", Flags::default())?;
    let selection = select(&listing1.ast, listing1.flags);
    println!(
        "  /^<(\\w+)>([0-9]*)<\\/\\1>$/  ->  {:?} ({})",
        selection.kind, selection.reason
    );
    assert_eq!(selection.kind, EngineKind::Backtrack);

    // The catastrophic variant: an open tag that never closes, with an
    // ambiguous inner quantifier. Exponential for a backtracker,
    // trivially linear for the Pike VM.
    let pathological = Regex::new(r"<(\w+\s*)*>", Flags::default())?;
    let selection = select(&pathological.ast, pathological.flags);
    println!(
        "  /<(\\w+\\s*)*>/              ->  {:?} ({})",
        selection.kind, selection.reason
    );
    let input: Vec<char> = "<timeout aaaaaaaaaaaaaaaaaaaaaa".chars().collect();

    let budget = 1_000_000u64;
    let backtracker = Engine::new(&pathological.ast, pathological.flags);
    let started = std::time::Instant::now();
    let bt_verdict = backtracker.search_within(&input, 0, budget);
    let bt_elapsed = started.elapsed();
    match bt_verdict {
        Err(limit) => println!(
            "  backtracker: {limit} after {budget} steps ({:.1} ms) — the ReDoS signal",
            bt_elapsed.as_secs_f64() * 1e3
        ),
        Ok(m) => println!("  backtracker: unexpectedly finished with {m:?}"),
    }

    let prog = compile(&pathological.ast, pathological.flags).expect("fast path");
    let vm = PikeVm::new(&prog);
    let started = std::time::Instant::now();
    let vm_verdict = vm.search(&input, 0);
    let vm_elapsed = started.elapsed();
    println!(
        "  pike vm:     decided (match: {}) in {} steps ({:.0} µs)",
        vm_verdict.is_some(),
        vm.last_steps(),
        vm_elapsed.as_secs_f64() * 1e6
    );
    assert!(vm_verdict.is_none(), "the unterminated tag must not match");
    Ok(())
}

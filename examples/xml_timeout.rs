//! Listing 1 of the paper: DSE finds the regex bug.
//!
//! The program parses `<tag>number</tag>` arguments; because the number
//! part uses a Kleene star, `<timeout></timeout>` sets `timeout` to the
//! empty string and the final assertion fails. Dynamic symbolic
//! execution with the capturing-language models finds that input
//! automatically (§3.2).
//!
//! Run with: `cargo run --example xml_timeout`

use expose::dse::{parser::parse_program, run_dse, EngineConfig, Harness};

const LISTING_1: &str = r#"
function processArgs(args) {
    let timeout = "500";
    for (let i = 0; i < args.length; i = i + 1) {
        let arg = args[i];
        let parts = /^<(\w+)>([0-9]*)<\/\1>$/.exec(arg);
        if (parts) {
            if (parts[1] === "timeout") {
                timeout = parts[2];
            }
        }
    }
    assert(/^[0-9]+$/.test(timeout) === true);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(LISTING_1)?;
    let harness = Harness::string_array("processArgs", 1);
    let config = EngineConfig {
        max_executions: 48,
        ..EngineConfig::default()
    };

    println!("running DSE on Listing 1 (paper §3.2) ...");
    let report = run_dse(&program, &harness, &config);
    println!(
        "executions: {}, tests generated: {}, coverage: {:.0}%",
        report.executions,
        report.tests_generated,
        100.0 * report.coverage_fraction()
    );

    match report.bugs.first() {
        Some((stmt, inputs)) => {
            println!(
                "assertion failure at statement {stmt} with input {:?}",
                inputs[0]
            );
            println!("(the paper's predicted bug input is \"<timeout></timeout>\")");
        }
        None => println!("no bug found — increase the execution budget"),
    }
    assert!(!report.bugs.is_empty(), "the Listing 1 bug must be found");
    Ok(())
}

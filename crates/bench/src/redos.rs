//! The shared ReDoS corpus: classic catastrophic-backtracking patterns
//! with non-matching inputs sized so the backtracker's search space is
//! astronomically large while the Pike VM's `O(n·m)` simulation decides
//! each in microseconds.
//!
//! Used by the `redos` CI gate binary, the `perf` artifact, and the
//! criterion micro-benchmarks — one corpus, three consumers, so the
//! numbers all describe the same workload.

use es6_matcher::{compile, Engine, PikeVm, Prog};
use regex_syntax_es6::{Flags, Regex};

/// One pathological pattern plus the adversarial input that triggers
/// exponential backtracking.
#[derive(Debug, Clone, Copy)]
pub struct RedosCase {
    /// Short stable identifier (fit for JSON keys and table rows).
    pub name: &'static str,
    /// The regex source, without delimiters.
    pub pattern: &'static str,
    /// Flag string (parsed with [`Flags`]).
    pub flags: &'static str,
    /// The input that blows up a backtracking search.
    pub input: &'static str,
}

/// The corpus. Every pattern is backreference-free so
/// [`es6_matcher::select()`] routes it to the Pike VM; every input fails
/// to match, forcing a backtracker to exhaust the whole search space.
pub fn redos_corpus() -> Vec<RedosCase> {
    vec![
        RedosCase {
            name: "nested_plus",
            pattern: "^(a+)+$",
            flags: "",
            input: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaab",
        },
        RedosCase {
            name: "alt_same",
            pattern: "^(a|a)*$",
            flags: "",
            input: "aaaaaaaaaaaaaaaaaaaaaaaaab",
        },
        RedosCase {
            name: "alt_overlap",
            pattern: "^(a|aa)+$",
            flags: "",
            input: "aaaaaaaaaaaaaaaaaaaaaaaaaaaab",
        },
        RedosCase {
            name: "class_star_star",
            pattern: "^([a-zA-Z]+)*$",
            flags: "",
            input: "abcdefghijklmnopqrstuvwxyzAB!",
        },
        RedosCase {
            name: "star_in_star",
            pattern: "(a*)*b",
            flags: "",
            input: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaac",
        },
        RedosCase {
            name: "nested_dot",
            pattern: "^(.*)*x$",
            flags: "",
            input: "yyyyyyyyyyyyyyyyyyyyyyyyyyy",
        },
        RedosCase {
            name: "xml_tag",
            // The paper's motivating shape: an XML open-tag matcher
            // whose inner quantifier overlaps with the outer one (the
            // optional `\s*` lets a name run split arbitrarily across
            // iterations), on a tag that never closes.
            pattern: "<(\\w+\\s*)*>",
            flags: "",
            input: "<timeout aaaaaaaaaaaaaaaaaaaaaa",
        },
        RedosCase {
            name: "email_local",
            // Email local-part with *optional* dot separators: a letter
            // run partitions into iterations in exponentially many ways
            // once the `@` never arrives.
            pattern: "^([a-z0-9]+[.]?)+@[a-z0-9]+[.][a-z]+$",
            flags: "",
            input: "aaaaaaaaaaaaaaaaaaaaaaaaaa",
        },
        RedosCase {
            name: "word_runs",
            pattern: "^(\\w+\\s?)*$",
            flags: "",
            input: "some words and then some more!",
        },
    ]
}

/// Parses one case's pattern. Panics on a malformed corpus entry —
/// these are compile-time constants, not inputs.
pub fn parse_case(case: &RedosCase) -> Regex {
    let flags: Flags = case.flags.parse().expect("corpus flags parse");
    Regex::new(case.pattern, flags)
        .unwrap_or_else(|e| panic!("corpus pattern {} must parse: {e}", case.name))
}

/// Compiles one case for the fast path. Panics if the pattern falls
/// back — the corpus is Pike-VM-routable by construction, and a
/// fallback here means the selection analysis regressed.
pub fn compile_case(case: &RedosCase) -> (Regex, Prog) {
    let regex = parse_case(case);
    let prog = compile(&regex.ast, regex.flags).unwrap_or_else(|e| {
        panic!(
            "corpus pattern {} must take the fast path, fell back: {}",
            case.name, e.reason
        )
    });
    (regex, prog)
}

/// The `O(n·m)` step-bound witness for one program and input length:
/// generous constant factor, but linear in `n` and in program size.
pub fn vm_step_bound(prog: &Prog, input_chars: usize) -> u64 {
    (input_chars as u64 + 2) * (prog.code.len() as u64 + 1) * (prog.looks.len() as u64 + 1) * 8
}

/// Outcome of running one corpus case through both engines.
#[derive(Debug, Clone)]
pub struct RedosOutcome {
    /// The case name.
    pub name: &'static str,
    /// VM instruction visits (must stay under [`vm_step_bound`]).
    pub vm_steps: u64,
    /// The bound the VM was held to.
    pub vm_bound: u64,
    /// VM wall-clock for the search, in milliseconds.
    pub vm_ms: f64,
    /// Whether the budgeted backtracker exhausted its step budget
    /// (the expected ReDoS signal).
    pub bt_flagged: bool,
    /// Backtracker wall-clock until the budget verdict, in milliseconds.
    pub bt_ms: f64,
}

/// Runs one case: the Pike VM must *decide* it (no match, within the
/// linear bound); the backtracker, budgeted at `bt_budget` steps, is
/// expected to exhaust the budget.
pub fn run_case(case: &RedosCase, bt_budget: u64) -> RedosOutcome {
    let (regex, prog) = compile_case(case);
    let chars: Vec<char> = case.input.chars().collect();
    let bound = vm_step_bound(&prog, chars.len());

    let vm = PikeVm::new(&prog);
    let started = std::time::Instant::now();
    let vm_result = vm.search_within(&chars, 0, bound);
    let vm_ms = started.elapsed().as_secs_f64() * 1e3;
    match vm_result {
        Ok(Some(m)) => panic!(
            "corpus input for {} unexpectedly matched at {}..{}",
            case.name, m.start, m.end
        ),
        Ok(None) => {}
        Err(_) => panic!(
            "Pike VM exceeded its linear bound on {} ({} steps > {bound})",
            case.name,
            vm.last_steps()
        ),
    }

    let bt = Engine::new(&regex.ast, regex.flags);
    let started = std::time::Instant::now();
    let bt_flagged = bt.search_within(&chars, 0, bt_budget).is_err();
    let bt_ms = started.elapsed().as_secs_f64() * 1e3;

    RedosOutcome {
        name: case.name,
        vm_steps: vm.last_steps(),
        vm_bound: bound,
        vm_ms,
        bt_flagged,
        bt_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_and_compiles() {
        for case in redos_corpus() {
            let (_, prog) = compile_case(&case);
            assert!(!prog.code.is_empty(), "{}: empty program", case.name);
        }
    }

    #[test]
    fn vm_decides_every_case_within_bound() {
        for case in redos_corpus() {
            let outcome = run_case(&case, 100_000);
            assert!(
                outcome.vm_steps <= outcome.vm_bound,
                "{}: {} steps over bound {}",
                outcome.name,
                outcome.vm_steps,
                outcome.vm_bound
            );
            assert!(
                outcome.bt_flagged,
                "{}: backtracker finished within 100k steps — input not pathological",
                outcome.name
            );
        }
    }
}

//! Shared harness for the evaluation reproduction (Tables 4–8).
//!
//! Each `table*` binary regenerates one table of the paper's evaluation
//! section; this library holds the run helpers they share with the
//! criterion micro-benchmarks.

pub mod redos;

use corpus::{DseProgram, LibraryWorkload};
use expose_core::SupportLevel;
use expose_dse::parser::parse_program;
use expose_dse::{run_dse, EngineConfig, Harness, Report};
use strsolve::SolverConfig;

/// Budget preset for the DSE experiments.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum executions per program.
    pub executions: usize,
    /// Interpreter step budget per execution.
    pub steps: u64,
}

impl Budget {
    /// A quick budget for benches and CI. Generous enough in
    /// executions that the generational search re-visits shared path
    /// prefixes — the regime the cross-query caches are built for (and
    /// the regime real DSE runs spend their time in).
    pub fn quick() -> Budget {
        Budget {
            executions: 40,
            steps: 50_000,
        }
    }

    /// The budget used by the table binaries.
    pub fn full() -> Budget {
        Budget {
            executions: 48,
            steps: 100_000,
        }
    }
}

/// Engine configuration for a support level and budget.
pub fn engine_config(support: SupportLevel, budget: Budget) -> EngineConfig {
    EngineConfig {
        support,
        max_executions: budget.executions,
        max_steps: budget.steps,
        solver: SolverConfig::default(),
        ..EngineConfig::default()
    }
}

/// Runs one Table 6 library workload at a support level.
pub fn run_workload(workload: &LibraryWorkload, support: SupportLevel, budget: Budget) -> Report {
    let program = parse_program(workload.source)
        .unwrap_or_else(|e| panic!("workload {} must parse: {e}", workload.name));
    let harness = Harness::strings(workload.entry, workload.arity);
    run_dse(&program, &harness, &engine_config(support, budget))
}

/// Runs one generated Table 7 program at a support level.
pub fn run_generated(program: &DseProgram, support: SupportLevel, budget: Budget) -> Report {
    let parsed = parse_program(&program.source)
        .unwrap_or_else(|e| panic!("program {} must parse: {e}", program.name));
    let harness = Harness::strings(&program.entry, program.arity);
    run_dse(&parsed, &harness, &engine_config(support, budget))
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Geometric mean of (strictly positive) ratios.
pub fn geometric_mean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.max(1e-9).ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 1.0);
    }

    #[test]
    fn workloads_all_parse_and_run() {
        for w in corpus::library_workloads() {
            let report = run_workload(
                &w,
                SupportLevel::Concrete,
                Budget {
                    executions: 1,
                    steps: 10_000,
                },
            );
            assert!(report.executions >= 1, "{} must execute", w.name);
        }
    }
}

//! The `redos-smoke` CI gate: every pattern in the shared ReDoS corpus
//! must be *decided* by the Pike-VM fast path within its linear step
//! bound, while the budgeted backtracker flags each one as
//! `StepLimitExceeded` — the paper's timeout-as-ReDoS-detector signal,
//! now with a fast engine that answers anyway.
//!
//! Exits nonzero if any case violates either side, or if the aggregate
//! VM-vs-backtracker wall-clock speedup falls below 10x.
//!
//! ```text
//! cargo run --release -p bench --bin redos -- [--bt-budget N]
//! ```

use bench::redos::{redos_corpus, run_case};

fn main() {
    let mut bt_budget = 2_000_000u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bt-budget" => {
                bt_budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--bt-budget needs a number")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let corpus = redos_corpus();
    println!(
        "{:<18} {:>10} {:>12} {:>9} {:>10} {:>9}",
        "case", "vm steps", "vm bound", "vm ms", "bt budget", "bt ms"
    );
    let mut vm_ms = 0.0f64;
    let mut bt_ms = 0.0f64;
    let mut failures = 0usize;
    for case in &corpus {
        let outcome = run_case(case, bt_budget);
        println!(
            "{:<18} {:>10} {:>12} {:>9.3} {:>10} {:>9.1}",
            outcome.name,
            outcome.vm_steps,
            outcome.vm_bound,
            outcome.vm_ms,
            if outcome.bt_flagged { "hit" } else { "MISSED" },
            outcome.bt_ms
        );
        vm_ms += outcome.vm_ms;
        bt_ms += outcome.bt_ms;
        if !outcome.bt_flagged {
            eprintln!(
                "redos: FAIL — backtracker finished {} within {bt_budget} steps; \
                 the input is not pathological enough to gate on",
                outcome.name
            );
            failures += 1;
        }
    }
    let speedup = bt_ms / vm_ms.max(1e-9);
    println!(
        "total: vm {vm_ms:.2} ms, backtracker (to budget verdict) {bt_ms:.1} ms, \
         speedup {speedup:.0}x"
    );
    if speedup < 10.0 {
        eprintln!("redos: FAIL — VM-vs-backtracker speedup {speedup:.1}x below the 10x gate");
        failures += 1;
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "redos: OK — {} cases decided on the fast path",
        corpus.len()
    );
}

//! Table 4: regex usage by NPM package.
//!
//! Generates the synthetic corpus (calibrated to the paper's observed
//! frequencies) and runs the §7.1 survey over it, printing the paper's
//! numbers next to the measured ones. Corpus size via `argv[1]`
//! (default 20,000 packages).

use corpus::{generate_corpus, CorpusProfile};
use survey::survey_packages;

/// Paper values: (label, count, percent) over 415,487 packages.
const PAPER: &[(&str, usize, f64)] = &[
    ("Packages", 415_487, 100.0),
    ("... with source files", 381_730, 91.9),
    ("... with regular expressions", 145_100, 34.9),
    ("... with capture groups", 84_972, 20.5),
    ("... with backreferences", 15_968, 3.8),
    ("... with quantified backreferences", 503, 0.1),
];

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    println!("Table 4: Regex usage by NPM package (synthetic corpus, n={n})");
    bench::rule(78);
    println!(
        "{:<38} {:>10} {:>7}   {:>10} {:>7}",
        "Feature", "paper #", "paper%", "measured", "meas.%"
    );
    bench::rule(78);
    let packages = generate_corpus(n, &CorpusProfile::default(), 0xC0FFEE);
    let survey = survey_packages(&packages);
    for ((label, measured, measured_pct), (plabel, pcount, ppct)) in
        survey.packages.rows().into_iter().zip(PAPER)
    {
        assert_eq!(&label, plabel, "row order must match the paper");
        println!("{label:<38} {pcount:>10} {ppct:>6.1}%   {measured:>10} {measured_pct:>6.1}%");
    }
    bench::rule(78);
    println!("Shape check: percentages should track the paper column within a few points.");
}

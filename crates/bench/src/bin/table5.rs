//! Table 5: feature usage by unique regex.
//!
//! Runs the survey over the synthetic corpus and prints per-feature
//! total and unique counts with the paper's percentages for comparison.
//! Corpus size via `argv[1]` (default 20,000 packages).

use std::collections::HashMap;

use corpus::{generate_corpus, CorpusProfile};
use survey::survey_packages;

/// Paper values: feature → (total %, unique %).
fn paper_percentages() -> HashMap<&'static str, (f64, f64)> {
    HashMap::from([
        ("Capture Groups", (24.71, 38.94)),
        ("Global Flag", (27.44, 29.56)),
        ("Character Class", (27.97, 23.24)),
        ("Kleene+", (16.14, 22.08)),
        ("Kleene*", (17.94, 21.76)),
        ("Ignore Case Flag", (14.28, 19.25)),
        ("Ranges", (13.33, 17.06)),
        ("Non-capturing", (12.94, 8.49)),
        ("Repetition", (3.7, 5.58)),
        ("Kleene* (Lazy)", (2.41, 4.33)),
        ("Multiline Flag", (1.44, 3.47)),
        ("Word Boundary", (3.53, 3.17)),
        ("Kleene+ (Lazy)", (1.56, 1.99)),
        ("Lookaheads", (1.85, 1.02)),
        ("Backreferences", (0.67, 0.80)),
        ("Repetition (Lazy)", (0.03, 0.07)),
        ("Quantified BRefs", (0.01, 0.04)),
        ("Sticky Flag", (0.001, 0.02)),
        ("Unicode Flag", (0.001, 0.02)),
    ])
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    println!("Table 5: Feature usage by unique regex (synthetic corpus, n={n})");
    bench::rule(86);
    println!(
        "{:<20} {:>9} {:>8} {:>8}   {:>9} {:>8} {:>8}",
        "Feature", "total", "meas.%", "paper%", "unique", "meas.%", "paper%"
    );
    bench::rule(86);
    let packages = generate_corpus(n, &CorpusProfile::default(), 0xC0FFEE);
    let survey = survey_packages(&packages);
    let paper = paper_percentages();
    println!(
        "{:<20} {:>9} {:>8} {:>8}   {:>9} {:>8} {:>8}",
        "Total Regex",
        survey.features.total,
        "100%",
        "100%",
        survey.features.unique,
        "100%",
        "100%"
    );
    for (name, total, tp, unique, up) in survey.features.rows() {
        let (paper_tp, paper_up) = paper.get(name).copied().unwrap_or((0.0, 0.0));
        println!(
            "{name:<20} {total:>9} {tp:>7.2}% {paper_tp:>7.2}%   {unique:>9} {up:>7.2}% {paper_up:>7.2}%"
        );
    }
    bench::rule(86);
    println!("The ordering (captures > classes > quantifiers > … > quantified brefs) is the");
    println!("shape claim; absolute rates depend on the synthetic pool composition.");
}

//! The CI performance trajectory: quick-budget DSE, serial/uncached vs
//! parallel/cached, emitted as machine-readable `BENCH_dse.json`.
//!
//! Two configurations run the same workload set (the Table 6 library
//! programs plus a slice of the generated Table 7 population):
//!
//! * **baseline** — `flip_workers = 1`, both caches disabled,
//!   incremental solving off: the engine exactly as the paper's serial
//!   reproduction ran it;
//! * **optimized** — `flip_workers ≥ 4`, model + query + verdict caches
//!   shared across all workloads, assumption-stack flip sessions on
//!   (the per-config blocks record `prefix_reuse_hits` and
//!   `verdict_replays`).
//!
//! Both must produce byte-identical query verdicts (`verdict_diffs`
//! must be 0 — the caches, the fan-out, the minimized automata and the
//! length abstraction are proven behavior-preserving, not just fast).
//! Each configuration runs three times with fresh caches and the
//! min-wall repetition is reported (the noise-robust estimator on
//! shared runners); the repetitions must also agree verdict-for-verdict,
//! which doubles as a run-to-run determinism gate. The emitted artifact
//! is uploaded by the `perf-smoke` CI job; with `--check
//! <baseline.json>` the binary gates on a >2× wall-clock regression
//! *and* a >2× `solver_nodes` regression against the checked-in
//! baseline (nodes are deterministic, so that gate is
//! machine-independent).
//!
//! Every run also pushes a small fixed seed range through the
//! differential fuzzer (`expose-fuzz`) and records `fuzz_cases`,
//! `fuzz_disagreements` and `fuzz_unknown_rate` in the artifact and the
//! summary — one artifact summarizes the perf *and* soundness
//! trajectory. Any fuzz disagreement fails the run.
//!
//! With `--throughput`, the binary additionally pushes the same
//! workload corpus through the NDJSON job service (scheduler fan-out,
//! shared session caches) and records `throughput_jobs_per_sec`; it
//! then serves the corpus over a real loopback TCP listener and soaks
//! it with 8 concurrent closed-loop clients, recording the exact
//! end-to-end `latency_p50_ms`/`latency_p99_ms` and `soak_jobs` (any
//! dropped response is exit 10). The `--check` gate then also fails on
//! a >2× throughput drop or a >2× p50/p99 latency regression against
//! the baseline artifact (each latency gate is skipped while the
//! baseline lacks its key).
//!
//! With `--explore`, the binary runs the pure-concolic exploration
//! orchestrator over the same corpus (shared session caches, 8
//! iterations per workload) and records `explore_unique_paths`,
//! `unique_paths_per_sec` and the per-iteration `coverage_over_time`
//! checkpoints. The loop must witness strictly more unique paths than
//! the sum of single-trace flip runs (`explore_single_paths`, the
//! same workloads stopped after one iteration) — exit 9 otherwise —
//! and the `--check` gate fails on a >2× `unique_paths_per_sec` drop
//! when the baseline artifact carries the key.
//!
//! `--summary-md <path>` writes the job-summary markdown from the
//! in-memory numbers (CI `cat`s it into `$GITHUB_STEP_SUMMARY` instead
//! of scraping the JSON). `--budget full` switches from the PR-CI
//! quick budget to the nightly table budget.
//!
//! ```text
//! cargo run --release -p bench --bin perf -- \
//!     [--out BENCH_dse.json] [--check crates/bench/baseline/BENCH_dse.json] \
//!     [--flip-workers 4] [--programs 10] [--budget quick|full] \
//!     [--throughput] [--explore] [--summary-md PERF_SUMMARY.md]
//! ```

use std::time::Instant;

use bench::{engine_config, Budget};
use corpus::{generate_dse_programs, library_workloads};
use expose_core::cache::CacheStats;
use expose_core::SupportLevel;
use expose_dse::parser::parse_program;
use expose_dse::{
    explore_with_caches, run_dse_with_caches, DseCaches, EngineConfig, ExploreConfig, Harness,
    Report,
};

/// One named, parsed workload.
struct Workload {
    name: String,
    program: expose_dse::ast::Program,
    harness: Harness,
}

fn workload_set(generated: usize) -> Vec<Workload> {
    let mut set = Vec::new();
    for w in library_workloads() {
        set.push(Workload {
            name: w.name.to_string(),
            program: parse_program(w.source)
                .unwrap_or_else(|e| panic!("workload {} must parse: {e}", w.name)),
            harness: Harness::strings(w.entry, w.arity),
        });
    }
    for p in generate_dse_programs(generated, 0xbe7c) {
        set.push(Workload {
            name: p.name.clone(),
            program: parse_program(&p.source)
                .unwrap_or_else(|e| panic!("program {} must parse: {e}", p.name)),
            harness: Harness::strings(&p.entry, p.arity),
        });
    }
    set
}

/// Aggregate numbers for one configuration over the whole set.
#[derive(Default)]
struct Aggregate {
    wall_ms: f64,
    solver_ms: f64,
    flip_queries: u64,
    solver_nodes: u64,
    tests_generated: u64,
    coverage_sum: f64,
    model_cache_hits: u64,
    model_cache_misses: u64,
    query_cache_hits: u64,
    query_cache_misses: u64,
    dfa_states_built: u64,
    states_after_minimize: u64,
    length_prunes: u64,
    prefix_reuse_hits: u64,
    verdict_replays: u64,
    matcher_fast_path: u64,
    matcher_fallback: u64,
}

impl Aggregate {
    fn absorb(&mut self, report: &Report) {
        self.solver_ms += report.solver_time().as_secs_f64() * 1e3;
        self.flip_queries += report.queries.len() as u64;
        self.solver_nodes += report.solver_nodes();
        self.tests_generated += report.tests_generated as u64;
        self.coverage_sum += report.coverage_fraction();
        self.model_cache_hits += report.model_cache_hits;
        self.model_cache_misses += report.model_cache_misses;
        self.query_cache_hits += report.query_cache_hits;
        self.query_cache_misses += report.query_cache_misses;
        self.dfa_states_built += report.dfa_states_built();
        self.states_after_minimize += report.states_after_minimize();
        self.length_prunes += report.length_prunes();
        self.prefix_reuse_hits += report.prefix_reuse_hits();
        self.verdict_replays += report.verdict_replays();
        self.matcher_fast_path += report.matcher_fast_path;
        self.matcher_fallback += report.matcher_fallback;
    }

    fn hit_rate(hits: u64, misses: u64) -> f64 {
        CacheStats { hits, misses }.hit_rate()
    }

    fn json(&self, workloads: usize) -> String {
        format!(
            concat!(
                "{{\n",
                "    \"wall_ms\": {:.1},\n",
                "    \"solver_ms\": {:.1},\n",
                "    \"flip_queries\": {},\n",
                "    \"solver_nodes\": {},\n",
                "    \"tests_generated\": {},\n",
                "    \"mean_coverage\": {:.4},\n",
                "    \"model_cache_hits\": {},\n",
                "    \"model_cache_misses\": {},\n",
                "    \"model_cache_hit_rate\": {:.4},\n",
                "    \"query_cache_hits\": {},\n",
                "    \"query_cache_misses\": {},\n",
                "    \"query_cache_hit_rate\": {:.4},\n",
                "    \"dfa_states_built\": {},\n",
                "    \"states_after_minimize\": {},\n",
                "    \"length_prunes\": {},\n",
                "    \"prefix_reuse_hits\": {},\n",
                "    \"verdict_replays\": {}\n",
                "  }}"
            ),
            self.wall_ms,
            self.solver_ms,
            self.flip_queries,
            self.solver_nodes,
            self.tests_generated,
            self.coverage_sum / workloads.max(1) as f64,
            self.model_cache_hits,
            self.model_cache_misses,
            Self::hit_rate(self.model_cache_hits, self.model_cache_misses),
            self.query_cache_hits,
            self.query_cache_misses,
            Self::hit_rate(self.query_cache_hits, self.query_cache_misses),
            self.dfa_states_built,
            self.states_after_minimize,
            self.length_prunes,
            self.prefix_reuse_hits,
            self.verdict_replays,
        )
    }
}

/// The per-query verdict trail of one workload, for the
/// zero-difference check.
type VerdictTrail = Vec<(bool, usize, bool)>;

fn verdicts(report: &Report) -> VerdictTrail {
    report
        .queries
        .iter()
        .map(|q| (q.sat, q.refinements, q.limit_hit))
        .collect()
}

fn run_config(
    set: &[Workload],
    config_for: impl Fn() -> EngineConfig,
    caches: &DseCaches,
) -> (Aggregate, Vec<VerdictTrail>) {
    let mut aggregate = Aggregate::default();
    let mut trails = Vec::with_capacity(set.len());
    let started = Instant::now();
    for w in set {
        let report = run_dse_with_caches(&w.program, &w.harness, &config_for(), caches);
        if std::env::var("PERF_VERBOSE").is_ok() {
            eprintln!(
                "  {:24} solver {:7.1} ms, {:3} queries, {:6} nodes",
                w.name,
                report.solver_time().as_secs_f64() * 1e3,
                report.queries.len(),
                report.solver_nodes(),
            );
        }
        aggregate.absorb(&report);
        trails.push(verdicts(&report));
    }
    aggregate.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    (aggregate, trails)
}

/// Pulls `"key": <number>` out of a flat JSON document — enough to read
/// our own artifact back without a JSON dependency.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pattern = format!("\"{key}\":");
    let at = json.find(&pattern)? + pattern.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pushes the workload corpus through the NDJSON job service (the
/// scheduler behind `expose-serve`) and returns `(jobs, workers,
/// wall_ms, jobs_per_sec)`.
fn measure_throughput(programs: usize, budget: Budget, workers: usize) -> (u64, usize, f64, f64) {
    let corpus_budget = if budget.executions >= Budget::full().executions {
        expose_service::CorpusBudget::Full
    } else {
        expose_service::CorpusBudget::Quick
    };
    let mut input = expose_service::corpus_submit_lines(programs, corpus_budget).join("\n");
    input.push('\n');
    let config = expose_service::ServiceConfig {
        workers,
        ..expose_service::ServiceConfig::default()
    };
    let mut output: Vec<u8> = Vec::new();
    let started = Instant::now();
    let summary = expose_service::ServeOptions::new()
        .config(config)
        .serve(input.as_bytes(), &mut output)
        .expect("throughput session failed");
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let jobs_per_sec = summary.jobs as f64 / (wall_ms / 1e3).max(1e-9);
    (summary.jobs, workers, wall_ms, jobs_per_sec)
}

/// The numbers of one concurrent-client latency soak.
struct LatencyNumbers {
    /// Concurrent closed-loop clients.
    clients: usize,
    /// Jobs submitted across all clients (one corpus pass each).
    jobs: u64,
    /// Jobs that got no response at all — must be zero.
    dropped: u64,
    /// Median end-to-end job latency, milliseconds (exact quantile).
    p50_ms: f64,
    /// 99th-percentile end-to-end job latency, milliseconds (exact).
    p99_ms: f64,
}

/// Serves the corpus over a real loopback TCP listener (through the
/// same admission front-end as `expose-serve --listen tcp:`) and soaks
/// it with concurrent closed-loop clients, returning exact end-to-end
/// latency quantiles — the client-observed counterpart of the
/// scheduler's bucketed histogram.
fn measure_latency(
    programs: usize,
    budget: Budget,
    workers: usize,
    clients: usize,
) -> LatencyNumbers {
    let corpus_budget = if budget.executions >= Budget::full().executions {
        expose_service::CorpusBudget::Full
    } else {
        expose_service::CorpusBudget::Quick
    };
    let listen = expose_service::Listen::parse("tcp:127.0.0.1:0").expect("loopback spec");
    let mut listener = listen.bind().expect("loopback bind");
    let addr = listener.local_addr();
    let state = expose_service::ServerState::new();
    let options = expose_service::ServeOptions::new()
        .config(expose_service::ServiceConfig::default().workers(workers));
    std::thread::scope(|scope| {
        let server_state = std::sync::Arc::clone(&state);
        let server = scope.spawn(move || {
            expose_service::serve_listener(listener.as_mut(), &options, &server_state)
                .expect("latency server failed");
        });
        let report = expose_service::run_soak(&expose_service::SoakOptions {
            addr,
            clients,
            seconds: 0,
            generated: programs,
            budget: corpus_budget,
        })
        .expect("latency soak failed");
        state.begin_drain();
        server.join().expect("latency server thread");
        LatencyNumbers {
            clients,
            jobs: report.jobs,
            dropped: report.dropped,
            p50_ms: report.latency_p50_ms,
            p99_ms: report.latency_p99_ms,
        }
    })
}

/// The numbers of one `--explore` measurement over the corpus.
struct ExploreNumbers {
    /// Per-workload iteration budget.
    iterations: usize,
    /// Total distinct executed paths across the corpus (looped runs).
    unique_paths: u64,
    /// The same total with every loop stopped after one iteration —
    /// what plain single-trace flip jobs witness.
    single_paths: u64,
    /// Wall-clock of the looped sweep (min over repetitions).
    wall_ms: f64,
    /// `unique_paths` per second of looped wall-clock.
    paths_per_sec: f64,
    /// FNV fold of every workload's trajectory digest, in corpus
    /// order — the run-to-run/worker-count determinism witness.
    trajectory: u64,
    /// Cumulative `(covered_stmts, unique_paths)` across the corpus at
    /// each iteration index (workloads that stopped early contribute
    /// their final value).
    coverage_over_time: Vec<(u64, u64)>,
}

/// Runs the exploration orchestrator over the corpus: `REPS`
/// repetitions with fresh shared session caches, min-wall kept, equal
/// trajectories required, plus the one-iteration reference sweep.
fn measure_explore(
    set: &[Workload],
    budget: Budget,
    flip_workers: usize,
    reps: usize,
) -> ExploreNumbers {
    let iterations = 8usize;
    let engine = EngineConfig {
        flip_workers,
        ..engine_config(SupportLevel::Refinement, budget)
    };
    let sweep = |max_iterations: usize| {
        let caches = DseCaches::session_from_config(&engine);
        let config = ExploreConfig {
            engine: engine.clone(),
            max_iterations,
            ..ExploreConfig::default()
        };
        let started = Instant::now();
        let reports: Vec<expose_dse::ExploreReport> = set
            .iter()
            .map(|w| explore_with_caches(&w.program, &w.harness, &config, &caches))
            .collect();
        (reports, started.elapsed().as_secs_f64() * 1e3)
    };

    let mut best: Option<(Vec<expose_dse::ExploreReport>, f64)> = None;
    let mut reference_trajectory: Option<u64> = None;
    for rep in 0..reps {
        let (reports, wall_ms) = sweep(iterations);
        let mut fold = expose_dse::store::Fnv::new();
        for report in &reports {
            fold.eat_u64(report.trajectory_digest());
        }
        let trajectory = fold.finish();
        match reference_trajectory {
            None => reference_trajectory = Some(trajectory),
            Some(reference) => assert_eq!(
                reference, trajectory,
                "explore rep {rep}: corpus trajectory changed between repetitions"
            ),
        }
        if best.as_ref().is_none_or(|(_, b)| wall_ms < *b) {
            best = Some((reports, wall_ms));
        }
    }
    let (reports, wall_ms) = best.expect("at least one repetition");
    let unique_paths: u64 = reports.iter().map(|r| r.unique_paths as u64).sum();

    let mut coverage_over_time = Vec::with_capacity(iterations);
    for k in 0..iterations {
        let mut stmts = 0u64;
        let mut paths = 0u64;
        for report in &reports {
            // A workload whose frontier dried up before iteration k
            // holds its final checkpoint.
            if let Some(p) = report.progress.get(k).or(report.progress.last()) {
                stmts += p.covered_stmts as u64;
                paths += p.unique_paths as u64;
            }
        }
        coverage_over_time.push((stmts, paths));
    }

    let (single_reports, _) = sweep(1);
    let single_paths: u64 = single_reports.iter().map(|r| r.unique_paths as u64).sum();

    ExploreNumbers {
        iterations,
        unique_paths,
        single_paths,
        wall_ms,
        paths_per_sec: unique_paths as f64 / (wall_ms / 1e3).max(1e-9),
        trajectory: reference_trajectory.expect("at least one repetition"),
        coverage_over_time,
    }
}

fn main() {
    let mut out = String::from("BENCH_dse.json");
    let mut check: Option<String> = None;
    let mut flip_workers = 4usize;
    let mut programs = 10usize;
    let mut budget_name = String::from("quick");
    let mut throughput = false;
    let mut explore = false;
    let mut summary_md: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--check" => check = Some(value("--check")),
            "--flip-workers" => {
                flip_workers = value("--flip-workers").parse().expect("worker count")
            }
            "--programs" => programs = value("--programs").parse().expect("program count"),
            "--budget" => {
                budget_name = value("--budget");
                assert!(
                    matches!(budget_name.as_str(), "quick" | "full"),
                    "unknown budget {budget_name:?} (expected quick|full)"
                );
            }
            "--throughput" => throughput = true,
            "--explore" => explore = true,
            "--summary-md" => summary_md = Some(value("--summary-md")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(
        flip_workers >= 4,
        "the tracked configuration uses flip_workers >= 4"
    );
    let budget = if budget_name == "full" {
        Budget::full()
    } else {
        Budget::quick()
    };

    let set = workload_set(programs);
    eprintln!(
        "perf: {} workloads, {budget_name} budget, flip_workers={flip_workers}",
        set.len()
    );

    let base_config = || {
        let mut config = EngineConfig {
            flip_workers: 1,
            model_cache_capacity: 0,
            query_cache_capacity: 0,
            ..engine_config(SupportLevel::Refinement, budget)
        };
        // The baseline is the engine exactly as the serial reproduction
        // ran it: caches off, eager unminimized automata, no length
        // abstraction, every flip solved from scratch.
        config.solver.dfa_cache_capacity = 0;
        config.solver.minimize_threshold = 0;
        config.solver.length_abstraction = false;
        config.solver.incremental = false;
        config
    };
    // Each configuration runs `REPS` times with fresh caches and the
    // min-wall repetition is kept: wall-clock on shared CI runners is
    // noisy, and the minimum is the standard noise-robust estimator.
    // The verdict trails double as a run-to-run determinism gate.
    const REPS: usize = 3;
    let run_best = |label: &str,
                    config_for: &dyn Fn() -> EngineConfig,
                    caches_for: &dyn Fn() -> DseCaches|
     -> (Aggregate, Vec<VerdictTrail>) {
        let mut best: Option<(Aggregate, Vec<VerdictTrail>)> = None;
        for rep in 0..REPS {
            let caches = caches_for();
            let (aggregate, trails) = run_config(&set, config_for, &caches);
            if let Some((best_aggregate, best_trails)) = &best {
                assert_eq!(
                    best_trails, &trails,
                    "{label} rep {rep}: verdict trails changed between repetitions"
                );
                if aggregate.wall_ms >= best_aggregate.wall_ms {
                    continue;
                }
            }
            best = Some((aggregate, trails));
        }
        best.expect("at least one repetition")
    };

    // Fuzz smoke: a small fixed seed range through the differential
    // fuzzer, so the one perf artifact also tracks the soundness
    // trajectory (cases run, Unknown rate, disagreements). The range is
    // deliberately tiny — the dedicated fuzz-smoke CI job covers the
    // wide one.
    let fuzz_seeds = 0u64..250;
    let (fuzz_stats, fuzz_failures) = expose_fuzz::run_range(
        fuzz_seeds.clone(),
        &expose_fuzz::GenConfig::default(),
        &expose_fuzz::FuzzBudget::quick(),
    );
    eprintln!(
        "perf: fuzz smoke seeds {}..{}: {} cases, {} disagreements, unknown rate {:.1}%",
        fuzz_seeds.start,
        fuzz_seeds.end,
        fuzz_stats.cases,
        fuzz_stats.disagreements,
        100.0 * fuzz_stats.unknown_rate()
    );
    for failure in &fuzz_failures {
        eprintln!(
            "perf: fuzz DISAGREEMENT [{}] {}: {}",
            failure.disagreement.layer.name(),
            failure.case.to_line(),
            failure.disagreement.detail
        );
    }

    // ReDoS suite: the shared pathological corpus through both match
    // engines. The Pike VM must decide every pattern within its linear
    // step bound (run_case panics otherwise); the budgeted backtracker
    // is expected to flag each as a blowup. Folded into the artifact so
    // one file also tracks the fast path's ReDoS-robustness trajectory.
    let redos_corpus = bench::redos::redos_corpus();
    let redos_bt_budget = 250_000u64;
    let mut redos_bt_flagged = 0u64;
    let mut redos_vm_ms = 0.0f64;
    let mut redos_bt_ms = 0.0f64;
    for case in &redos_corpus {
        let outcome = bench::redos::run_case(case, redos_bt_budget);
        redos_bt_flagged += outcome.bt_flagged as u64;
        redos_vm_ms += outcome.vm_ms;
        redos_bt_ms += outcome.bt_ms;
    }
    let redos_speedup = redos_bt_ms / redos_vm_ms.max(1e-9);
    eprintln!(
        "perf: redos {} patterns, {} flagged by backtracker, vm {:.2} ms vs bt {:.1} ms ({:.0}x)",
        redos_corpus.len(),
        redos_bt_flagged,
        redos_vm_ms,
        redos_bt_ms,
        redos_speedup
    );

    let (baseline, baseline_trails) = run_best("baseline", &base_config, &DseCaches::disabled);
    eprintln!(
        "perf: baseline (serial, uncached) {:.0} ms",
        baseline.wall_ms
    );

    let opt_config = || EngineConfig {
        flip_workers,
        ..engine_config(SupportLevel::Refinement, budget)
    };
    let (optimized, optimized_trails) = run_best("optimized", &opt_config, &|| {
        DseCaches::from_config(&opt_config())
    });
    eprintln!(
        "perf: optimized (parallel, cached) {:.0} ms",
        optimized.wall_ms
    );

    let mut verdict_diffs = 0usize;
    for ((w, a), b) in set.iter().zip(&baseline_trails).zip(&optimized_trails) {
        if a != b {
            verdict_diffs += 1;
            eprintln!("perf: verdict trail mismatch in workload {}", w.name);
        }
    }
    let speedup = baseline.wall_ms / optimized.wall_ms.max(1e-9);

    // Throughput: the corpus through the NDJSON job service, best of
    // the same REPS repetitions.
    let throughput_numbers = throughput.then(|| {
        let mut best: Option<(u64, usize, f64, f64)> = None;
        for _ in 0..REPS {
            let measured = measure_throughput(programs, budget, flip_workers);
            if best.is_none_or(|b| measured.3 > b.3) {
                best = Some(measured);
            }
        }
        let best = best.expect("at least one repetition");
        eprintln!(
            "perf: throughput {:.1} jobs/sec ({} jobs, {} workers, {:.0} ms)",
            best.3, best.0, best.1, best.2
        );
        best
    });
    // Latency trajectory: the same corpus over a real loopback TCP
    // socket under 8-way client concurrency (one soak pass — the
    // quantiles are per-job, so a single pass already has hundreds of
    // samples at full budget).
    let latency_numbers = throughput.then(|| {
        let measured = measure_latency(programs, budget, flip_workers, 8);
        eprintln!(
            "perf: latency p50 {:.1} ms, p99 {:.1} ms ({} jobs, {} clients, {} dropped)",
            measured.p50_ms, measured.p99_ms, measured.jobs, measured.clients, measured.dropped
        );
        measured
    });
    // Exploration: the orchestrator over the corpus, strictly-more
    // unique paths than single-trace flip runs (the whole point of
    // closing the solve→seed loop).
    let explore_numbers = explore.then(|| {
        let measured = measure_explore(&set, budget, flip_workers, REPS);
        eprintln!(
            "perf: explore {} unique paths over {} iterations ({:.0} ms, {:.1} paths/sec) \
             vs {} single-trace paths",
            measured.unique_paths,
            measured.iterations,
            measured.wall_ms,
            measured.paths_per_sec,
            measured.single_paths,
        );
        measured
    });
    let explore_json = match &explore_numbers {
        Some(e) => {
            use std::fmt::Write as _;
            let mut json = format!(
                concat!(
                    "  \"explore_iterations\": {},\n",
                    "  \"explore_unique_paths\": {},\n",
                    "  \"explore_single_paths\": {},\n",
                    "  \"explore_wall_ms\": {:.1},\n",
                    "  \"unique_paths_per_sec\": {:.1},\n",
                    "  \"explore_trajectory\": \"{:016x}\",\n",
                ),
                e.iterations,
                e.unique_paths,
                e.single_paths,
                e.wall_ms,
                e.paths_per_sec,
                e.trajectory,
            );
            json.push_str("  \"coverage_over_time\": [");
            for (k, (stmts, paths)) in e.coverage_over_time.iter().enumerate() {
                if k > 0 {
                    json.push_str(", ");
                }
                let _ = write!(
                    json,
                    "{{\"iteration\": {}, \"covered_stmts\": {stmts}, \"unique_paths\": {paths}}}",
                    k + 1
                );
            }
            json.push_str("],\n");
            json
        }
        None => String::new(),
    };
    let throughput_json = match &throughput_numbers {
        Some((jobs, workers, wall_ms, jobs_per_sec)) => format!(
            concat!(
                "  \"throughput_jobs\": {},\n",
                "  \"throughput_workers\": {},\n",
                "  \"throughput_wall_ms\": {:.1},\n",
                "  \"throughput_jobs_per_sec\": {:.1},\n",
            ),
            jobs, workers, wall_ms, jobs_per_sec
        ),
        None => String::new(),
    };
    let latency_json = match &latency_numbers {
        Some(l) => format!(
            concat!(
                "  \"latency_clients\": {},\n",
                "  \"soak_jobs\": {},\n",
                "  \"soak_dropped\": {},\n",
                "  \"latency_p50_ms\": {:.3},\n",
                "  \"latency_p99_ms\": {:.3},\n",
            ),
            l.clients, l.jobs, l.dropped, l.p50_ms, l.p99_ms
        ),
        None => String::new(),
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"expose-bench-dse/v1\",\n",
            "  \"budget\": \"{}\",\n",
            "  \"workloads\": {},\n",
            "  \"flip_workers\": {},\n",
            "  \"baseline_wall_ms\": {:.1},\n",
            "  \"optimized_wall_ms\": {:.1},\n",
            "  \"speedup\": {:.3},\n",
            "  \"verdict_diffs\": {},\n",
            "  \"optimized_solver_nodes\": {},\n",
            "  \"fuzz_cases\": {},\n",
            "  \"fuzz_disagreements\": {},\n",
            "  \"fuzz_unknown_rate\": {:.4},\n",
            "  \"redos_patterns\": {},\n",
            "  \"redos_vm_decided\": {},\n",
            "  \"redos_bt_flagged\": {},\n",
            "  \"redos_vm_wall_ms\": {:.3},\n",
            "  \"redos_bt_wall_ms\": {:.1},\n",
            "  \"redos_speedup\": {:.1},\n",
            "  \"matcher_fast_path\": {},\n",
            "  \"matcher_fallback\": {},\n",
            "{}",
            "{}",
            "{}",
            "  \"baseline\": {},\n",
            "  \"optimized\": {}\n",
            "}}\n"
        ),
        budget_name,
        set.len(),
        flip_workers,
        baseline.wall_ms,
        optimized.wall_ms,
        speedup,
        verdict_diffs,
        optimized.solver_nodes,
        fuzz_stats.cases,
        fuzz_stats.disagreements,
        fuzz_stats.unknown_rate(),
        redos_corpus.len(),
        redos_corpus.len(),
        redos_bt_flagged,
        redos_vm_ms,
        redos_bt_ms,
        redos_speedup,
        optimized.matcher_fast_path,
        optimized.matcher_fallback,
        explore_json,
        throughput_json,
        latency_json,
        baseline.json(set.len()),
        optimized.json(set.len()),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("perf: speedup {speedup:.2}x, verdict_diffs {verdict_diffs}, wrote {out}");

    // The job-summary markdown, rendered from the numbers themselves —
    // CI used to scrape the JSON with grep, which silently dropped
    // keys whenever the formatting shifted.
    if let Some(path) = &summary_md {
        use std::fmt::Write as _;
        let mut md = String::new();
        let _ = writeln!(md, "### Perf ({budget_name} budget, BENCH_dse.json)");
        let _ = writeln!(
            md,
            "- **speedup**: {speedup:.2}x (baseline {:.1} ms \u{2192} optimized {:.1} ms)",
            baseline.wall_ms, optimized.wall_ms
        );
        let _ = writeln!(md, "- **verdict_diffs**: {verdict_diffs}");
        let _ = writeln!(
            md,
            "- **solver nodes** (baseline \u{2192} optimized): {} \u{2192} {}",
            baseline.solver_nodes, optimized.solver_nodes
        );
        let _ = writeln!(
            md,
            "- **automata counters** (baseline \u{2192} optimized): states built {} \u{2192} {}, \
             after minimize {} \u{2192} {}, length prunes {} \u{2192} {}",
            baseline.dfa_states_built,
            optimized.dfa_states_built,
            baseline.states_after_minimize,
            optimized.states_after_minimize,
            baseline.length_prunes,
            optimized.length_prunes,
        );
        let _ = writeln!(
            md,
            "- **cache hit rates** (optimized): model {:.1}%, query {:.1}%",
            100.0 * Aggregate::hit_rate(optimized.model_cache_hits, optimized.model_cache_misses),
            100.0 * Aggregate::hit_rate(optimized.query_cache_hits, optimized.query_cache_misses),
        );
        let _ = writeln!(
            md,
            "- **incremental solving** (optimized): {} prefix frames reused, \
             {} CEGAR runs replayed",
            optimized.prefix_reuse_hits, optimized.verdict_replays,
        );
        if let Some((jobs, workers, wall_ms, jobs_per_sec)) = &throughput_numbers {
            let _ = writeln!(
                md,
                "- **service throughput**: {jobs_per_sec:.1} jobs/sec \
                 ({jobs} jobs, {workers} workers, {wall_ms:.0} ms)"
            );
        }
        if let Some(l) = &latency_numbers {
            let _ = writeln!(
                md,
                "- **service latency**: p50 {:.1} ms, p99 {:.1} ms \
                 ({} jobs over TCP, {} concurrent clients, {} dropped)",
                l.p50_ms, l.p99_ms, l.jobs, l.clients, l.dropped,
            );
        }
        if let Some(e) = &explore_numbers {
            let _ = writeln!(
                md,
                "- **exploration**: {} unique paths in {} iterations/workload \
                 ({:.1} paths/sec) vs {} single-trace paths",
                e.unique_paths, e.iterations, e.paths_per_sec, e.single_paths,
            );
        }
        let _ = writeln!(
            md,
            "- **fuzz smoke**: {} cases, {} disagreement{}, Unknown rate {:.1}%",
            fuzz_stats.cases,
            fuzz_stats.disagreements,
            if fuzz_stats.disagreements == 1 {
                ""
            } else {
                "s"
            },
            100.0 * fuzz_stats.unknown_rate(),
        );
        let _ = writeln!(
            md,
            "- **matcher engines** (optimized run): {} fast-path / {} fallback executions",
            optimized.matcher_fast_path, optimized.matcher_fallback,
        );
        let _ = writeln!(
            md,
            "- **ReDoS suite**: {}/{} decided by the Pike VM within its linear bound, \
             {}/{} flagged by the budgeted backtracker, {redos_speedup:.0}x wall-clock",
            redos_corpus.len(),
            redos_corpus.len(),
            redos_bt_flagged,
            redos_corpus.len(),
        );
        let _ = writeln!(md);
        let _ = writeln!(md, "<details><summary>Full artifact</summary>\n");
        let _ = writeln!(md, "```json\n{}```\n", json);
        let _ = writeln!(md, "</details>");
        std::fs::write(path, md).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("perf: wrote summary markdown to {path}");
    }

    if verdict_diffs > 0 {
        eprintln!("perf: FAIL — parallel/cached run changed {verdict_diffs} verdict trail(s)");
        std::process::exit(2);
    }
    if fuzz_stats.disagreements > 0 {
        eprintln!(
            "perf: FAIL — fuzz smoke found {} cross-layer disagreement(s)",
            fuzz_stats.disagreements
        );
        std::process::exit(7);
    }
    if redos_bt_flagged < redos_corpus.len() as u64 {
        eprintln!(
            "perf: FAIL — only {redos_bt_flagged}/{} ReDoS patterns tripped the \
             backtracker budget; the corpus stopped being pathological",
            redos_corpus.len()
        );
        std::process::exit(8);
    }
    if speedup < 1.5 {
        // Advisory on arbitrary machines; the CI gate is the checked-in
        // baseline comparison below.
        eprintln!("perf: WARN — speedup {speedup:.2}x below the 1.5x target");
    }
    if let Some(l) = &latency_numbers {
        // A dropped job means a client's submit never got a response —
        // the one thing a front-end must never do, on any machine.
        if l.dropped > 0 {
            eprintln!(
                "perf: FAIL — the latency soak dropped {} of {} job(s)",
                l.dropped, l.jobs
            );
            std::process::exit(10);
        }
    }
    if let Some(e) = &explore_numbers {
        // The loop exists to witness paths one trace's flips cannot; if
        // it stops strictly exceeding the single-trace sweep, the
        // frontier scheduling or the corpus feedback broke.
        if e.unique_paths <= e.single_paths {
            eprintln!(
                "perf: FAIL — exploration witnessed {} unique paths, not strictly more \
                 than the {} of single-trace flip runs",
                e.unique_paths, e.single_paths
            );
            std::process::exit(9);
        }
    }
    if let Some(path) = check {
        let reference = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let reference_ms = extract_number(&reference, "optimized_wall_ms")
            .unwrap_or_else(|| panic!("no optimized_wall_ms in {path}"));
        let limit = reference_ms * 2.0;
        eprintln!(
            "perf: check {:.0} ms against baseline {:.0} ms (limit {:.0} ms)",
            optimized.wall_ms, reference_ms, limit
        );
        if optimized.wall_ms > limit {
            eprintln!("perf: FAIL — optimized wall-clock regressed more than 2x the baseline");
            std::process::exit(3);
        }
        // Machine-independent gate: the absolute-ms comparison above
        // also measures runner speed, so additionally require the
        // same-run baseline→optimized ratio to stay above a floor well
        // under the tracked ~2.5x (a drop below it means the caches or
        // the fan-out genuinely stopped paying for themselves).
        if speedup < 1.2 {
            eprintln!("perf: FAIL — same-run speedup {speedup:.2}x fell below the 1.2x floor");
            std::process::exit(4);
        }
        // Search-effort gate, fully machine-independent: solver nodes
        // are deterministic per engine version, so a >2x jump against
        // the checked-in baseline means the automata/length pruning
        // genuinely regressed, not that the runner was slow.
        let reference_nodes = extract_number(&reference, "optimized_solver_nodes")
            .unwrap_or_else(|| panic!("no optimized_solver_nodes in {path}"));
        let node_limit = reference_nodes * 2.0;
        eprintln!(
            "perf: check {} solver nodes against baseline {:.0} (limit {:.0})",
            optimized.solver_nodes, reference_nodes, node_limit
        );
        if optimized.solver_nodes as f64 > node_limit {
            eprintln!("perf: FAIL — optimized solver_nodes regressed more than 2x the baseline");
            std::process::exit(5);
        }
        // Service-throughput gate: only when this run measured it and
        // the reference artifact has a number to compare against (PR
        // CI runs without --throughput and older baselines lack the
        // key — both skip the gate rather than failing spuriously).
        if let Some((_, _, _, jobs_per_sec)) = &throughput_numbers {
            if let Some(reference_tps) = extract_number(&reference, "throughput_jobs_per_sec") {
                let floor = reference_tps / 2.0;
                eprintln!(
                    "perf: check {jobs_per_sec:.1} jobs/sec against baseline {reference_tps:.1} \
                     (floor {floor:.1})"
                );
                if *jobs_per_sec < floor {
                    eprintln!(
                        "perf: FAIL — service throughput regressed more than 2x the baseline"
                    );
                    std::process::exit(6);
                }
            } else {
                eprintln!("perf: baseline has no throughput_jobs_per_sec; gate skipped");
            }
        }
        // Latency gates, same skip-if-missing shape: p50 and p99 may
        // each regress at most 2x against the checked-in baseline.
        if let Some(l) = &latency_numbers {
            for (key, measured) in [("latency_p50_ms", l.p50_ms), ("latency_p99_ms", l.p99_ms)] {
                if let Some(reference_ms) = extract_number(&reference, key) {
                    let limit = reference_ms * 2.0;
                    eprintln!(
                        "perf: check {key} {measured:.1} ms against baseline {reference_ms:.1} \
                         (limit {limit:.1})"
                    );
                    if measured > limit {
                        eprintln!("perf: FAIL — {key} regressed more than 2x the baseline");
                        std::process::exit(10);
                    }
                } else {
                    eprintln!("perf: baseline has no {key}; gate skipped");
                }
            }
        }
        // Exploration-rate gate, mirroring the throughput one: only
        // when this run measured it and the baseline carries the key.
        if let Some(e) = &explore_numbers {
            if let Some(reference_pps) = extract_number(&reference, "unique_paths_per_sec") {
                let floor = reference_pps / 2.0;
                eprintln!(
                    "perf: check {:.1} paths/sec against baseline {reference_pps:.1} \
                     (floor {floor:.1})",
                    e.paths_per_sec
                );
                if e.paths_per_sec < floor {
                    eprintln!(
                        "perf: FAIL — exploration path rate regressed more than 2x the baseline"
                    );
                    std::process::exit(9);
                }
            } else {
                eprintln!("perf: baseline has no unique_paths_per_sec; gate skipped");
            }
        }
    }
}

//! Table 7: contribution breakdown across generated packages.
//!
//! Runs the generated Table 7 population under the four support levels
//! (concrete / +modeling / +captures / +refinement) and reports, per
//! level: packages improved vs. concrete, the geometric-mean coverage
//! increase, and the test execution rate. Population size via `argv[1]`
//! (default 60; the paper uses 1,131 real packages).

use std::time::Instant;

use bench::{geometric_mean, run_generated, Budget};
use corpus::generate_dse_programs;
use expose_core::SupportLevel;

/// Paper rows: (label, improved #, improved %, +cov %, tests/min).
const PAPER: &[(&str, &str, &str, &str, &str)] = &[
    ("Concrete Regular Expressions", "-", "-", "-", "11.46"),
    ("+ Modeling RegEx", "528", "46.68%", "+6.16%", "10.14"),
    (
        "+ Captures & Backreferences",
        "194",
        "17.15%",
        "+4.18%",
        "9.42",
    ),
    ("+ Refinement", "63", "5.57%", "+4.17%", "8.70"),
];

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let budget = Budget::quick();
    let programs = generate_dse_programs(n, 0xE5E);
    println!("Table 7: Support-level breakdown over {n} generated packages");
    bench::rule(100);
    println!(
        "{:<30} {:>5} {:>8} {:>8} {:>10} | {:>5} {:>8} {:>7} {:>9}",
        "Support level", "#imp", "%imp", "+cov", "tests/min", "ppr#", "ppr%", "ppr+", "ppr t/min"
    );
    bench::rule(100);

    // Coverage per program per level, cumulative levels.
    let mut prev: Vec<f64> = Vec::new();
    for (li, level) in SupportLevel::ALL.iter().enumerate() {
        let start = Instant::now();
        let mut covs = Vec::with_capacity(n);
        let mut execs = 0usize;
        for program in &programs {
            let report = run_generated(program, *level, budget);
            covs.push(report.coverage_fraction());
            execs += report.executions;
        }
        let elapsed = start.elapsed().as_secs_f64().max(1e-6);
        let rate = execs as f64 * 60.0 / elapsed;
        let (improved, ratios): (usize, Vec<f64>) = if li == 0 {
            (0, Vec::new())
        } else {
            let improved = covs
                .iter()
                .zip(&prev)
                .filter(|(new, old)| *new > *old)
                .count();
            let ratios = covs
                .iter()
                .zip(&prev)
                .filter(|(new, old)| *new > *old)
                .map(|(new, old)| if *old > 0.0 { new / old } else { 2.0 })
                .collect();
            (improved, ratios)
        };
        let gain = if ratios.is_empty() {
            "-".to_string()
        } else {
            format!("{:+.2}%", 100.0 * (geometric_mean(&ratios) - 1.0))
        };
        let imp_pct = if li == 0 {
            "-".to_string()
        } else {
            format!("{:.2}%", 100.0 * improved as f64 / n as f64)
        };
        let paper = PAPER[li];
        println!(
            "{:<30} {:>5} {:>8} {:>8} {:>10.2} | {:>5} {:>8} {:>7} {:>9}",
            level.label(),
            if li == 0 {
                "-".to_string()
            } else {
                improved.to_string()
            },
            imp_pct,
            gain,
            rate,
            paper.1,
            paper.2,
            paper.3,
            paper.4,
        );
        prev = covs;
    }
    bench::rule(100);
    println!("Shape claims: each added level improves some packages; execution rate");
    println!("decreases as support deepens (modeling and refinement cost solver time).");
}

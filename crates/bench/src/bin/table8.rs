//! Table 8: solver times per package and per query.
//!
//! Re-runs the Table 7 population at full support, collecting per-query
//! statistics from the CEGAR solver, and prints min/max/mean solver time
//! per package and per query for the four categories of the paper
//! (all / with captures / with refinement / refinement limit hit).
//! Population size via `argv[1]` (default 60).

use std::time::Duration;

use bench::{run_generated, Budget};
use corpus::generate_dse_programs;
use expose_core::SupportLevel;
use expose_dse::QueryRecord;

fn fmt(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    }
}

fn summarize(label: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{label:<38} {:>10} {:>10} {:>10}", "-", "-", "-");
        return;
    }
    let min = durations.iter().min().expect("nonempty");
    let max = durations.iter().max().expect("nonempty");
    let mean = durations.iter().sum::<Duration>() / durations.len() as u32;
    println!(
        "{label:<38} {:>10} {:>10} {:>10}",
        fmt(*min),
        fmt(*max),
        fmt(mean)
    );
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let budget = Budget::quick();
    let programs = generate_dse_programs(n, 0xE5E);

    let mut per_package: Vec<Vec<QueryRecord>> = Vec::new();
    for program in &programs {
        let report = run_generated(program, SupportLevel::Refinement, budget);
        per_package.push(report.queries);
    }

    let package_time = |f: &dyn Fn(&QueryRecord) -> bool| -> Vec<Duration> {
        per_package
            .iter()
            .filter(|qs| qs.iter().any(f))
            .map(|qs| qs.iter().map(|q| q.duration).sum())
            .collect()
    };
    let query_time = |f: &dyn Fn(&QueryRecord) -> bool| -> Vec<Duration> {
        per_package
            .iter()
            .flatten()
            .filter(|q| f(q))
            .map(|q| q.duration)
            .collect()
    };

    println!("Table 8: Solver times per package and per query ({n} packages)");
    bench::rule(72);
    println!(
        "{:<38} {:>10} {:>10} {:>10}",
        "Packages/Queries", "min", "max", "mean"
    );
    bench::rule(72);
    summarize("All packages", &package_time(&|_| true));
    summarize("With capture groups", &package_time(&|q| q.had_captures));
    summarize("With refinement", &package_time(&|q| q.refinements > 0));
    summarize(
        "Where refinement limit is hit",
        &package_time(&|q| q.limit_hit),
    );
    bench::rule(72);
    summarize("All queries", &query_time(&|_| true));
    summarize("With capture groups", &query_time(&|q| q.had_captures));
    summarize("With refinement", &query_time(&|q| q.refinements > 0));
    summarize(
        "Where refinement limit is hit",
        &query_time(&|q| q.limit_hit),
    );
    bench::rule(72);

    let total: usize = per_package.iter().map(Vec::len).sum();
    let with_regex = per_package
        .iter()
        .flatten()
        .filter(|q| q.modeled_regex)
        .count();
    let with_caps = per_package
        .iter()
        .flatten()
        .filter(|q| q.had_captures)
        .count();
    let refined = per_package
        .iter()
        .flatten()
        .filter(|q| q.refinements > 0)
        .count();
    let limit = per_package.iter().flatten().filter(|q| q.limit_hit).count();
    println!("Query population: {total} total; {with_regex} modeled a regex; {with_caps} modeled");
    println!("captures/backrefs; {refined} required refinement; {limit} hit the limit.");
    println!("(Paper: 58.4M total; 7.6% regex; 1.1% captures; 0.1% refined; 0.003% limit.)");
    println!("Shape claims: capture queries cost more than average; refined queries more");
    println!("still; limit-hit queries dominate the tail — matching §7.4.");
}

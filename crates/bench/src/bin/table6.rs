//! Table 6: statement coverage, new model vs. concretizing baseline.
//!
//! Runs the eleven library workloads under the `Concrete` support level
//! (standing in for the original ExpoSE without ES6 regex modeling —
//! "Old") and under full `Refinement` support ("New"), printing coverage
//! and the relative increase next to the paper's numbers.

use bench::{pct, run_workload, Budget};
use corpus::library_workloads;
use expose_core::SupportLevel;

/// Paper coverage percentages: (library, old %, new %).
const PAPER: &[(&str, f64, f64)] = &[
    ("babel-eslint", 21.0, 26.8),
    ("fast-xml-parser", 3.1, 44.6),
    ("js-yaml", 4.4, 23.7),
    ("minimist", 65.9, 66.4),
    ("moment", 0.0, 52.6),
    ("query-string", 0.0, 42.6),
    ("semver", 51.7, 46.2),
    ("url-parse", 60.9, 71.8),
    ("validator", 67.5, 72.2),
    ("xml", 60.2, 77.5),
    ("yn", 0.0, 54.0),
];

fn main() {
    let budget = Budget::full();
    println!("Table 6: Statement coverage, Old (concretize) vs New (full model + CEGAR)");
    bench::rule(92);
    println!(
        "{:<18} {:>9} {:>9} {:>8} | {:>9} {:>9} {:>9}",
        "Library", "old(ours)", "new(ours)", "+(ours)", "old(ppr)", "new(ppr)", "+(ppr)"
    );
    bench::rule(92);
    let mut ours_improved = 0;
    for workload in library_workloads() {
        let old = run_workload(&workload, SupportLevel::Concrete, budget);
        let new = run_workload(&workload, SupportLevel::Refinement, budget);
        let (old_cov, new_cov) = (old.coverage_fraction(), new.coverage_fraction());
        if new_cov > old_cov {
            ours_improved += 1;
        }
        let gain = if old_cov > 0.0 {
            format!("{:+.1}%", 100.0 * (new_cov - old_cov) / old_cov)
        } else if new_cov > 0.0 {
            "inf".to_string()
        } else {
            "0".to_string()
        };
        let paper = PAPER
            .iter()
            .find(|(name, _, _)| *name == workload.name)
            .expect("paper row");
        let paper_gain = if paper.1 > 0.0 {
            format!("{:+.1}%", 100.0 * (paper.2 - paper.1) / paper.1)
        } else {
            "inf".to_string()
        };
        println!(
            "{:<18} {:>9} {:>9} {:>8} | {:>8.1}% {:>8.1}% {:>9}",
            workload.name,
            pct(old_cov),
            pct(new_cov),
            gain,
            paper.1,
            paper.2,
            paper_gain,
        );
    }
    bench::rule(92);
    println!(
        "Shape claim: New ≥ Old for most libraries (ours: {ours_improved}/11 improved; \
         paper: 10/11 improved, semver regressed under the 1h budget)."
    );
}

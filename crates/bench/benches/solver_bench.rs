//! Micro-benchmarks for the string constraint solver (the Z3 substitute).

use automata::{CRegex, CharSet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use strsolve::{Formula, Solver, Term, VarPool};

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);

    group.bench_function("membership_witness", |b| {
        b.iter(|| {
            let mut pool = VarPool::new();
            let v = pool.fresh_str("v");
            let re = CRegex::concat(vec![
                CRegex::lit("go"),
                CRegex::plus(CRegex::set(CharSet::single('o'))),
                CRegex::lit("d"),
            ]);
            black_box(Solver::default().solve(&Formula::in_re(v, re)))
        });
    });

    group.bench_function("concat_equation", |b| {
        b.iter(|| {
            let mut pool = VarPool::new();
            let w = pool.fresh_str("w");
            let a = pool.fresh_str("a");
            let bb = pool.fresh_str("b");
            let f = Formula::and(vec![
                Formula::eq_concat(w, vec![Term::Var(a), Term::Var(bb)]),
                Formula::in_re(a, CRegex::plus(CRegex::set(CharSet::range('a', 'c')))),
                Formula::in_re(bb, CRegex::plus(CRegex::set(CharSet::range('x', 'z')))),
                Formula::eq_lit(w, "abcxyz"),
            ]);
            black_box(Solver::default().solve(&f))
        });
    });

    group.bench_function("unsat_intersection", |b| {
        b.iter(|| {
            let mut pool = VarPool::new();
            let v = pool.fresh_str("v");
            let f = Formula::and(vec![
                Formula::in_re(v, CRegex::plus(CRegex::set(CharSet::single('a')))),
                Formula::in_re(v, CRegex::plus(CRegex::set(CharSet::single('b')))),
            ]);
            black_box(Solver::default().solve(&f))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);

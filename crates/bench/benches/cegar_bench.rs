//! Micro-benchmarks for the CEGAR loop (Algorithm 1), including the
//! refinement-limit ablation of §7.4.

use criterion::{criterion_group, criterion_main, Criterion};
use expose_core::{api::build_match_model, cegar::CegarSolver, model::BuildConfig};
use regex_syntax_es6::Regex;
use std::hint::black_box;
use strsolve::{Formula, Solver, VarPool};

fn solve_with_limit(literal: &str, pin: Option<&str>, limit: usize) -> bool {
    let regex = Regex::parse_literal(literal).expect("literal");
    let mut pool = VarPool::new();
    let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
    let problem = match pin {
        Some(value) => Formula::eq_lit(c.input, value),
        None => Formula::top(),
    };
    let cegar = CegarSolver::new(Solver::default(), limit);
    cegar.solve(&problem, &[c]).outcome.is_sat()
}

fn bench_cegar(c: &mut Criterion) {
    let mut group = c.benchmark_group("cegar");
    group.sample_size(15);

    group.bench_function("no_refinement_needed", |b| {
        b.iter(|| black_box(solve_with_limit("/^[0-9]+$/", None, 20)));
    });

    group.bench_function("precedence_refinement", |b| {
        // The §3.4 example: requires refinement to settle C1 = ⊥.
        b.iter(|| black_box(solve_with_limit("/^a*(a)?$/", Some("aa"), 20)));
    });

    group.bench_function("backref_membership", |b| {
        b.iter(|| black_box(solve_with_limit(r"/^(ab|c)\1$/", None, 20)));
    });

    // Refinement-limit ablation (§7.4: limits of five or fewer feasible).
    for limit in [1usize, 5, 20] {
        group.bench_function(format!("limit_{limit}"), |b| {
            b.iter(|| black_box(solve_with_limit("/^(a*)(a*)$/", Some("aaa"), limit)));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_cegar);
criterion_main!(benches);

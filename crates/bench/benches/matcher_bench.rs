//! Micro-benchmarks for the concrete ES6 matcher (the CEGAR oracle).

use criterion::{criterion_group, criterion_main, Criterion};
use es6_matcher::RegExp;
use std::hint::black_box;

fn bench_matcher(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher");
    group.sample_size(30);

    group.bench_function("literal_scan", |b| {
        let mut re = RegExp::new("goo+d", "").expect("regex");
        b.iter(|| black_box(re.test("it was a goood day today")));
    });

    group.bench_function("captures_xml", |b| {
        let mut re = RegExp::new(r"<(\w+)>([0-9]*)<\/\1>", "").expect("regex");
        b.iter(|| black_box(re.exec("pre <timeout>500</timeout> post")));
    });

    group.bench_function("backtracking_alternation", |b| {
        let mut re = RegExp::new("^(a|aa)*b$", "").expect("regex");
        b.iter(|| black_box(re.test("aaaaaaaaaaab")));
    });

    group.bench_function("lookahead", |b| {
        let mut re = RegExp::new(r"(?=\d{4})\d+-ok", "").expect("regex");
        b.iter(|| black_box(re.test("1234-ok")));
    });

    group.bench_function("ignore_case_class", |b| {
        let mut re = RegExp::new("[a-z]+[0-9]{2,4}", "i").expect("regex");
        b.iter(|| black_box(re.test("HELLO1234")));
    });

    group.finish();
}

/// Head-to-head engine comparison on the shared ReDoS corpus: the same
/// pattern and input through the Pike VM (decides) and through the
/// budgeted backtracker (burns its budget and reports the blowup).
fn bench_engines(c: &mut Criterion) {
    use bench::redos::{compile_case, redos_corpus};
    use es6_matcher::{Engine, PikeVm};

    let mut group = c.benchmark_group("engines");
    group.sample_size(20);

    for case in redos_corpus()
        .into_iter()
        .filter(|case| matches!(case.name, "nested_plus" | "xml_tag"))
    {
        let (regex, prog) = compile_case(&case);
        let chars: Vec<char> = case.input.chars().collect();
        group.bench_function(format!("pikevm_{}", case.name), |b| {
            let vm = PikeVm::new(&prog);
            b.iter(|| black_box(vm.search(&chars, 0)));
        });
        group.bench_function(format!("backtrack_budget_{}", case.name), |b| {
            let engine = Engine::new(&regex.ast, regex.flags);
            b.iter(|| black_box(engine.search_within(&chars, 0, 50_000).is_err()));
        });
    }

    // Average-case sanity: on a benign pattern the two engines should
    // be the same order of magnitude (the VM must not cost its ReDoS
    // immunity back on every ordinary match).
    let benign =
        regex_syntax_es6::Regex::new(r"(\w+)@(\w+)\.com", regex_syntax_es6::Flags::default())
            .expect("benign pattern");
    let prog = es6_matcher::compile(&benign.ast, benign.flags).expect("fast path");
    let chars: Vec<char> = "reach me at someone@example.com thanks".chars().collect();
    group.bench_function("pikevm_benign_email", |b| {
        let vm = PikeVm::new(&prog);
        b.iter(|| black_box(vm.search(&chars, 0)));
    });
    group.bench_function("backtrack_benign_email", |b| {
        let engine = Engine::new(&benign.ast, benign.flags);
        b.iter(|| black_box(engine.search_within(&chars, 0, u64::MAX)));
    });

    group.finish();
}

criterion_group!(benches, bench_matcher, bench_engines);
criterion_main!(benches);

//! Micro-benchmarks for the concrete ES6 matcher (the CEGAR oracle).

use criterion::{criterion_group, criterion_main, Criterion};
use es6_matcher::RegExp;
use std::hint::black_box;

fn bench_matcher(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher");
    group.sample_size(30);

    group.bench_function("literal_scan", |b| {
        let mut re = RegExp::new("goo+d", "").expect("regex");
        b.iter(|| black_box(re.test("it was a goood day today")));
    });

    group.bench_function("captures_xml", |b| {
        let mut re = RegExp::new(r"<(\w+)>([0-9]*)<\/\1>", "").expect("regex");
        b.iter(|| black_box(re.exec("pre <timeout>500</timeout> post")));
    });

    group.bench_function("backtracking_alternation", |b| {
        let mut re = RegExp::new("^(a|aa)*b$", "").expect("regex");
        b.iter(|| black_box(re.test("aaaaaaaaaaab")));
    });

    group.bench_function("lookahead", |b| {
        let mut re = RegExp::new(r"(?=\d{4})\d+-ok", "").expect("regex");
        b.iter(|| black_box(re.test("1234-ok")));
    });

    group.bench_function("ignore_case_class", |b| {
        let mut re = RegExp::new("[a-z]+[0-9]{2,4}", "i").expect("regex");
        b.iter(|| black_box(re.test("HELLO1234")));
    });

    group.finish();
}

criterion_group!(benches, bench_matcher);
criterion_main!(benches);

//! End-to-end DSE benchmarks: one library workload per support level,
//! plus the mutable-backreference soundness ablation (§4.3).

use bench::{run_workload, Budget};
use corpus::library_workloads;
use criterion::{criterion_group, criterion_main, Criterion};
use expose_core::model::BuildConfig;
use expose_core::SupportLevel;
use expose_dse::parser::parse_program;
use expose_dse::{run_dse, EngineConfig, Harness};
use std::hint::black_box;

fn bench_dse(c: &mut Criterion) {
    let mut group = c.benchmark_group("dse");
    group.sample_size(10);

    let workloads = library_workloads();
    let yn = workloads.iter().find(|w| w.name == "yn").expect("yn");
    for level in SupportLevel::ALL {
        group.bench_function(format!("yn_{:?}", level), |b| {
            b.iter(|| {
                black_box(run_workload(
                    yn,
                    level,
                    Budget {
                        executions: 6,
                        steps: 20_000,
                    },
                ))
            });
        });
    }

    // Ablation: sound vs approximate mutable-backreference models.
    let src = r#"function f(s) {
        if (/^((a|b)\2)+$/.test(s)) { return "rep"; }
        return "no";
    }"#;
    for (name, sound) in [("backref_approx", false), ("backref_sound", true)] {
        group.bench_function(name, |b| {
            let program = parse_program(src).expect("parse");
            let config = EngineConfig {
                max_executions: 4,
                build: BuildConfig {
                    sound_mutable_backrefs: sound,
                    ..BuildConfig::default()
                },
                ..EngineConfig::default()
            };
            b.iter(|| black_box(run_dse(&program, &Harness::strings("f", 1), &config)));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);

//! Micro-benchmarks for capturing-language model construction (Table 2/3).

use criterion::{criterion_group, criterion_main, Criterion};
use expose_core::model::BuildConfig;
use regex_syntax_es6::Regex;
use std::hint::black_box;
use strsolve::VarPool;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model");
    group.sample_size(30);

    for (name, literal) in [
        ("plain", "/goo+d/"),
        ("captures", r"/<(\w+)>([0-9]*)<\/\1>/"),
        ("anchored", "/^[0-9]{1,8}$/"),
        ("lookahead", r"/(?=[a-z])\w+/"),
        ("alternation", "/alpha|beta|gamma|delta/"),
    ] {
        let regex = Regex::parse_literal(literal).expect("literal");
        group.bench_function(format!("build_positive_{name}"), |b| {
            b.iter(|| {
                let mut pool = VarPool::new();
                black_box(expose_core::build_match_model(
                    &regex,
                    true,
                    &mut pool,
                    &BuildConfig::default(),
                ))
            });
        });
        group.bench_function(format!("build_negative_{name}"), |b| {
            b.iter(|| {
                let mut pool = VarPool::new();
                black_box(expose_core::build_match_model(
                    &regex,
                    false,
                    &mut pool,
                    &BuildConfig::default(),
                ))
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);

//! Offline stand-in for `parking_lot`: the subset the workspace uses,
//! implemented over `std::sync`. `lock()` returns the guard directly
//! (poisoning is absorbed, matching parking_lot semantics).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutex whose `lock` does not return a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, absorbing poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards are infallible.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, absorbing poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, absorbing poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}

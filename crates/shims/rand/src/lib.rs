//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace ships
//! this minimal, deterministic implementation of the small `rand`
//! surface it uses: [`rngs::StdRng`] seeded via [`SeedableRng`], the
//! [`RngExt`] sampling extension, and [`seq::IndexedRandom::choose`].
//! The generator is SplitMix64 — not cryptographic, but fast, seedable
//! and statistically fine for corpus generation and scheduling.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut rng = StdRng { state: seed };
            // Discard one word so nearby seeds decorrelate immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Types samplable uniformly from an RNG.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly from an RNG.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// Sampling conveniences, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Draws a uniform value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-related sampling.
pub mod seq {
    use super::RngCore;

    /// Uniform choice from an indexable collection.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(2usize..7);
            assert!((2..7).contains(&x));
        }
    }

    #[test]
    fn choose_covers_all() {
        let mut rng = StdRng::seed_from_u64(11);
        let pool = ["a", "b", "c"];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let pick = pool.choose(&mut rng).unwrap();
            seen[pool.iter().position(|p| p == pick).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

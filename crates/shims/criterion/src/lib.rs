//! Offline stand-in for `criterion`: the macro/builder surface the
//! workspace benches use (`Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!`), backed by a simple wall-clock measurement loop.
//! No statistics beyond min/mean/max — the point is that `cargo bench`
//! runs offline and prints comparable numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), 10, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
    };
    // One untimed warm-up sample, then the timed samples.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..samples {
        f(&mut bencher);
    }
    let (min, mean, max) = bencher.summary();
    println!("  {id:<40} min {min:>12?}  mean {mean:>12?}  max {max:>12?}  ({samples} samples)");
}

/// Passed to benchmark closures; times one routine per sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` and records it as a sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    fn summary(&self) -> (Duration, Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        }
        let min = *self.samples.iter().min().expect("nonempty");
        let max = *self.samples.iter().max().expect("nonempty");
        let total: Duration = self.samples.iter().sum();
        (min, total / self.samples.len() as u32, max)
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` to run the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // One warm-up + three timed samples.
        assert_eq!(runs, 4);
    }
}

//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace tests use:
//! the [`Strategy`] trait with `prop_map`, strategies for integer
//! ranges, [`Just`], tuples, [`collection::vec`], `&str` regex-pattern
//! string strategies (a `[class]{m,n}`-style subset), the
//! [`prop_oneof!`] union, and the [`proptest!`] / `prop_assert*`
//! macros. Generation is purely random (no shrinking) and
//! deterministic: the RNG seed is derived from the test function name,
//! so failures reproduce across runs.

use std::ops::Range;
use std::rc::Rc;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> TestRng {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Configuration block for a [`proptest!`] group.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property-test assertion.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Object-safe strategy facade used by [`Union`].
pub trait DynStrategy<T> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among alternative strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Rc<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    /// Builds a union from its arms.
    pub fn from_arms(arms: Vec<Rc<dyn DynStrategy<T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate_dyn(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// `&str` strategies interpret the string as a regex over a small,
/// commonly used subset: literal characters, `[...]` classes with
/// ranges and leading `^` negation (over printable ASCII), and the
/// quantifiers `*`, `+`, `?`, `{m}`, `{m,}`, `{m,n}`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    enum Atom {
        Lit(char),
        Class(Vec<char>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Parses the supported regex subset; panics on anything else so a
    /// too-clever pattern fails loudly instead of silently degrading.
    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"))
                        + i;
                    let inner: &[char] = &chars[i + 1..close];
                    i = close + 1;
                    Atom::Class(expand_class(inner, pattern))
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                    i += 1;
                    Atom::Class(escape_class(c, pattern))
                }
                '.' => {
                    i += 1;
                    Atom::Class((' '..='~').collect())
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern);
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated counted repeat in {pattern:?}"))
                    + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                let parse_num = |s: &str| {
                    s.parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad repeat count {s:?} in {pattern:?}"))
                };
                match body.split_once(',') {
                    None => {
                        let n = parse_num(&body);
                        (n, n)
                    }
                    Some((lo, "")) => {
                        let lo = parse_num(lo);
                        (lo, lo + 8)
                    }
                    Some((lo, hi)) => (parse_num(lo), parse_num(hi)),
                }
            }
            _ => (1, 1),
        }
    }

    fn expand_class(inner: &[char], pattern: &str) -> Vec<char> {
        let (negated, body) = match inner.first() {
            Some('^') => (true, &inner[1..]),
            _ => (false, inner),
        };
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if body[i] == '\\' {
                i += 1;
                let c = *body
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling class escape in {pattern:?}"));
                set.extend(escape_class(c, pattern));
                i += 1;
            } else if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i], body[i + 2]);
                assert!(lo <= hi, "inverted range in {pattern:?}");
                set.extend(lo..=hi);
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        if negated {
            set = (' '..='~').filter(|c| !set.contains(c)).collect();
        }
        assert!(!set.is_empty(), "empty class in {pattern:?}");
        set
    }

    fn escape_class(c: char, pattern: &str) -> Vec<char> {
        match c {
            'd' => ('0'..='9').collect(),
            'w' => ('a'..='z')
                .chain('A'..='Z')
                .chain('0'..='9')
                .chain(std::iter::once('_'))
                .collect(),
            's' => vec![' ', '\t', '\n'],
            'n' => vec!['\n'],
            't' => vec!['\t'],
            '\\' | '.' | '[' | ']' | '{' | '}' | '(' | ')' | '*' | '+' | '?' | '-' | '^' | '$'
            | '|' | '/' => vec![c],
            other => panic!("unsupported escape \\{other} in {pattern:?}"),
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.below(set.len())]),
                }
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The [`vec()`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::from_arms(vec![
            $( ::std::rc::Rc::new($arm) as ::std::rc::Rc<dyn $crate::DynStrategy<_>> ),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), left
            )));
        }
    }};
}

/// Declares property tests. Each `name(binding in strategy, ...)` item
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident $($rest:tt)*
    ) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default())
            $(#[$meta])* fn $name $($rest)*);
    };
    (@expand ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($binding:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(
                        let $binding = $crate::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let values = format!(
                        concat!($(stringify!($binding), " = {:?}, "),+),
                        $(&$binding),+
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} with {}\n{}",
                            stringify!($name), case + 1, config.cases, values, error
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategies_respect_shape() {
        let mut rng = super::TestRng::deterministic("shape");
        for _ in 0..200 {
            let s = Strategy::generate(&"[ab]{0,3}", &mut rng);
            assert!(
                s.len() <= 3 && s.chars().all(|c| c == 'a' || c == 'b'),
                "{s:?}"
            );
            let t = Strategy::generate(&r"x\d+", &mut rng);
            assert!(t.starts_with('x') && t[1..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::deterministic("same");
        let mut b = super::TestRng::deterministic("same");
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&"[a-z]{0,8}", &mut a),
                Strategy::generate(&"[a-z]{0,8}", &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(n in 0usize..10, s in "[xy]{1,2}") {
            prop_assert!(n < 10);
            prop_assert!(!s.is_empty() && s.len() <= 2, "bad length: {s:?}");
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(s.as_str(), "zz");
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just("a".to_string()),
            Just("b".to_string()),
        ].prop_map(|s| format!("{s}{s}"))) {
            prop_assert!(v == "aa" || v == "bb");
        }
    }
}

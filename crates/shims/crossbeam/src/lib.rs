//! Offline stand-in for `crossbeam`: scoped threads with the crossbeam
//! calling convention (`scope` returns a `Result`, spawned closures
//! receive the scope), implemented over `std::thread::scope`, plus the
//! work-stealing [`deque`] primitives (`Injector`/`Worker`/`Stealer`)
//! used by the sharded DSE scheduler.

/// Work-stealing deques with the `crossbeam-deque` calling convention.
///
/// The real crate uses lock-free Chase-Lev deques; this stand-in uses
/// mutex-guarded `VecDeque`s, which preserves the API and the
/// scheduling semantics (local FIFO pop, batch hand-off from the
/// injector, stealing from siblings) at contention levels where a
/// mutex is indistinguishable — the unit of work here is an entire DSE
/// job, milliseconds at minimum.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and may be retried. The mutex-based
        /// stand-in never loses races, but callers written against the
        /// real API still match on it.
        Retry,
    }

    impl<T> Steal<T> {
        /// True when the steal succeeded.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// True when the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }

        /// Chains steal attempts: a success or retry short-circuits,
        /// an empty result falls through to `f`.
        pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
            match self {
                Steal::Empty => f(),
                other => other,
            }
        }
    }

    impl<T> FromIterator<Steal<T>> for Steal<T> {
        /// Collects steal attempts: the first success or retry wins,
        /// otherwise the result is `Empty` (mirrors `crossbeam-deque`).
        fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
            let mut retry = false;
            for attempt in iter {
                match attempt {
                    Steal::Success(task) => return Steal::Success(task),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if retry {
                Steal::Retry
            } else {
                Steal::Empty
            }
        }
    }

    /// A FIFO injector queue: the global entry point tasks are pushed
    /// into before workers claim them.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Injector<T> {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals the front task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Moves up to half of the queue into `dest`'s local deque and
        /// pops one task for the caller.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = self.queue.lock().expect("injector poisoned");
            let Some(first) = queue.pop_front() else {
                return Steal::Empty;
            };
            // Hand off up to half of what remains (the crossbeam batch
            // heuristic), keeping the rest for other shards.
            let batch = queue.len().div_ceil(2).min(Worker::<T>::MAX_BATCH);
            if batch > 0 {
                let mut local = dest.queue.lock().expect("worker poisoned");
                for _ in 0..batch {
                    match queue.pop_front() {
                        Some(task) => local.push_back(task),
                        None => break,
                    }
                }
            }
            Steal::Success(first)
        }

        /// True when no task is queued.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }

    /// A worker-local deque. The owning shard pushes and pops the
    /// front; [`Stealer`]s claim from the back.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Default for Worker<T> {
        fn default() -> Worker<T> {
            Worker::new_fifo()
        }
    }

    impl<T> Worker<T> {
        /// Cap on one injector batch hand-off (crossbeam's constant).
        const MAX_BATCH: usize = 32;

        /// Creates an empty FIFO worker deque.
        pub fn new_fifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the local deque.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("worker poisoned").push_back(task);
        }

        /// Pops the next local task (FIFO order).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("worker poisoned").pop_front()
        }

        /// A handle other shards use to steal from this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// True when the local deque is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker poisoned").is_empty()
        }

        /// Number of locally queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("worker poisoned").len()
        }
    }

    /// A stealing handle onto another shard's [`Worker`] deque.
    #[derive(Debug, Clone)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals one task from the back of the owner's deque (the
        /// opposite end from the owner's pops).
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("worker poisoned").pop_back() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// True when the owner's deque is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker poisoned").is_empty()
        }
    }
}

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A thread-spawning scope; structurally borrows from the enclosing
    /// environment like `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it
        /// can spawn further threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before
    /// returning. A panicking child propagates as a panic from the std
    /// scope, so `Err` is never actually constructed — the `Result`
    /// only preserves crossbeam's signature for callers that `expect`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::{deque, thread};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_stack_data() {
        let counter = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn injector_is_fifo() {
        let injector: deque::Injector<u32> = deque::Injector::new();
        injector.push(1);
        injector.push(2);
        assert_eq!(injector.len(), 2);
        assert_eq!(injector.steal().success(), Some(1));
        assert_eq!(injector.steal().success(), Some(2));
        assert!(injector.steal().success().is_none());
        assert!(injector.is_empty());
    }

    #[test]
    fn batch_hand_off_fills_local_deque() {
        let injector: deque::Injector<u32> = deque::Injector::new();
        for i in 0..9 {
            injector.push(i);
        }
        let local: deque::Worker<u32> = deque::Worker::new_fifo();
        // Pops 0 for the caller, hands off ceil(8/2) = 4 to the deque.
        assert_eq!(injector.steal_batch_and_pop(&local).success(), Some(0));
        assert_eq!(local.len(), 4);
        assert_eq!(injector.len(), 4);
        // Local order is preserved (FIFO).
        assert_eq!(local.pop(), Some(1));
        assert_eq!(local.pop(), Some(2));
    }

    #[test]
    fn stealers_take_the_opposite_end() {
        let local: deque::Worker<u32> = deque::Worker::new_fifo();
        local.push(1);
        local.push(2);
        local.push(3);
        let stealer = local.stealer();
        assert_eq!(stealer.steal().success(), Some(3));
        assert_eq!(local.pop(), Some(1));
        assert_eq!(stealer.steal().success(), Some(2));
        assert!(stealer.is_empty());
    }

    #[test]
    fn steal_collects_first_success() {
        let a: deque::Worker<u32> = deque::Worker::new_fifo();
        let b: deque::Worker<u32> = deque::Worker::new_fifo();
        b.push(7);
        let stealers = [a.stealer(), b.stealer()];
        let stolen: deque::Steal<u32> = stealers.iter().map(|s| s.steal()).collect();
        assert_eq!(stolen.success(), Some(7));
        let empty: deque::Steal<u32> = stealers.iter().map(|s| s.steal()).collect();
        assert!(!empty.is_success());
        assert!(!empty.is_retry());
    }

    #[test]
    fn concurrent_stealing_loses_no_task() {
        let injector: deque::Injector<usize> = deque::Injector::new();
        const TASKS: usize = 1000;
        for i in 0..TASKS {
            injector.push(i);
        }
        let sum = AtomicUsize::new(0);
        let claimed = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    let local: deque::Worker<usize> = deque::Worker::new_fifo();
                    loop {
                        let task = local
                            .pop()
                            .or_else(|| injector.steal_batch_and_pop(&local).success());
                        match task {
                            Some(task) => {
                                sum.fetch_add(task, Ordering::Relaxed);
                                claimed.fetch_add(1, Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(claimed.load(Ordering::Relaxed), TASKS);
        assert_eq!(sum.load(Ordering::Relaxed), TASKS * (TASKS - 1) / 2);
    }

    #[test]
    fn nested_spawn_from_child() {
        let counter = AtomicUsize::new(0);
        thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}

//! Offline stand-in for `crossbeam`: scoped threads with the crossbeam
//! calling convention (`scope` returns a `Result`, spawned closures
//! receive the scope), implemented over `std::thread::scope`.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A thread-spawning scope; structurally borrows from the enclosing
    /// environment like `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it
        /// can spawn further threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before
    /// returning. A panicking child propagates as a panic from the std
    /// scope, so `Err` is never actually constructed — the `Result`
    /// only preserves crossbeam's signature for callers that `expect`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_stack_data() {
        let counter = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_from_child() {
        let counter = AtomicUsize::new(0);
        thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}

//! Pure-concolic exploration: the orchestrator that closes the
//! solve→seed loop.
//!
//! A single DSE job ([`crate::run_dse`]) flips the clauses of the
//! traces *it* executes and stops at its execution budget. This module
//! runs the loop one level up, the way SymCC-style pure-concolic
//! testing does: every solver model becomes a corpus entry, the corpus
//! is scheduled by a coverage frontier, and the loop keeps feeding
//! solved diverging inputs back in as concrete seeds until a budget or
//! the frontier runs out. Each iteration:
//!
//! 1. the [`crate::frontier::FrontierScheduler`] picks the pending
//!    corpus entry whose (predicted) branch trail promises the most
//!    directions the global [`crate::frontier::CoverageMap`] has not
//!    witnessed yet — seeds whose remaining flips are all covered are
//!    demoted behind any seed still reaching unflipped branches;
//! 2. the entry's inputs run concretely+symbolically ([`execute`]);
//!    the observed trail replaces the prediction, coverage and the
//!    unique-path set grow, and assertion failures are deduplicated by
//!    trail digest into the bug list;
//! 3. every clause flip of the new trace is solved (the same
//!    [`TraceFlipSession`]-backed fan-out the per-job engine uses, so
//!    flip results arrive in clause order at any worker count), and
//!    each SAT model is inserted into the corpus — deduplicated by
//!    content hash — annotated with its predicted trail.
//!
//! Everything the loop reads is worker-count-invariant, so the corpus
//! trajectory, coverage bitmap, bug set and per-iteration progress are
//! byte-identical across runs and flip worker counts
//! ([`ExploreReport::trajectory_digest`] is the value the exploration
//! differentials compare). The optional wall-clock budget is the one
//! deliberately machine-dependent stop condition; runs that must be
//! reproducible bound iterations instead.
//!
//! [`TraceFlipSession`]: crate::solve::TraceFlipSession

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::ast::{Program, StmtId};
use crate::caching::DseCaches;
use crate::engine::{build_solver, resolve_workers, solve_trace_flips, EngineConfig};
use crate::frontier::{CoverageMap, FrontierScheduler};
use crate::interp::{execute, Harness, InterpConfig};
use crate::solve::QueryRecord;
use crate::store::{trail_digest, CorpusStore, Fnv};

/// Exploration budgets and per-iteration engine settings.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Per-iteration engine settings: support level, solver and model
    /// limits, flips per trace, step budget, flip workers, cache
    /// capacities. (`max_executions` and `seed` are ignored — the
    /// orchestrator schedules executions itself, deterministically.)
    pub engine: EngineConfig,
    /// Maximum loop iterations (= concrete executions). `0` means the
    /// loop only stops on another budget or frontier exhaustion.
    pub max_iterations: usize,
    /// Maximum corpus entries; solved inputs beyond it are dropped
    /// (and counted in [`CorpusStore::dropped`]).
    pub max_corpus: usize,
    /// Optional wall-clock budget, checked at iteration boundaries.
    /// Machine-dependent by nature: a wall-bounded run keeps the
    /// per-iteration determinism contract but not the run-length one,
    /// so the differential suites leave this `None`.
    pub max_wall: Option<Duration>,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            engine: EngineConfig::default(),
            max_iterations: 16,
            max_corpus: 256,
            max_wall: None,
        }
    }
}

/// Why an exploration loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The iteration budget was spent.
    Iterations,
    /// No pending seed remained — every stored input has been executed.
    Frontier,
    /// The wall-clock budget elapsed.
    Wall,
}

impl StopReason {
    /// The stable wire/JSON spelling of the reason.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Iterations => "iterations",
            StopReason::Frontier => "frontier",
            StopReason::Wall => "wall",
        }
    }
}

/// Deterministic progress snapshot after one iteration — the record
/// behind a service `explore_progress` line and a bench
/// `coverage_over_time` checkpoint. Every field is scheduling- and
/// worker-count-invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationProgress {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Corpus id of the seed this iteration executed.
    pub seed: u64,
    /// Content hash of that seed's inputs.
    pub seed_hash: u64,
    /// Corpus entries added by this iteration's flips.
    pub new_inputs: usize,
    /// Corpus size after the iteration.
    pub corpus_size: usize,
    /// Pending (unexecuted) seeds after the iteration.
    pub frontier: usize,
    /// Distinct executed branch trails so far.
    pub unique_paths: usize,
    /// Covered statements so far.
    pub covered_stmts: usize,
    /// Covered `(branch, direction)` pairs so far.
    pub covered_directions: usize,
    /// Deduplicated bugs so far.
    pub bugs: usize,
    /// Flip queries solved so far.
    pub queries: usize,
    /// Satisfiable flip queries so far.
    pub sat_queries: usize,
}

/// A deduplicated exploration bug: an assertion failure keyed by the
/// digest of the trail that reached it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreBug {
    /// Statement id of the failed assertion.
    pub stmt: StmtId,
    /// The inputs that triggered it.
    pub inputs: Vec<String>,
    /// Digest of the failing trace's branch trail plus the assertion
    /// site — the dedup key (two distinct paths into the same
    /// assertion are two bugs; re-finding the same path is not).
    pub trail_digest: u64,
}

/// The result of an exploration run.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Iterations executed (= concrete executions).
    pub iterations: usize,
    /// Total statements in the program.
    pub stmt_count: u32,
    /// Covered statement ids.
    pub coverage: HashSet<StmtId>,
    /// Covered `(branch, direction)` pairs.
    pub covered_directions: usize,
    /// Distinct executed branch trails (paths actually witnessed, not
    /// merely predicted by a model).
    pub unique_paths: usize,
    /// The final corpus, trails and provenance included.
    pub corpus: CorpusStore,
    /// Deduplicated assertion failures.
    pub bugs: Vec<ExploreBug>,
    /// One snapshot per iteration, in order.
    pub progress: Vec<IterationProgress>,
    /// Why the loop stopped.
    pub stopped: StopReason,
    /// Per-query statistics (observability; durations and cache splits
    /// in here are scheduling-dependent and excluded from the
    /// deterministic digests).
    pub queries: Vec<QueryRecord>,
}

impl ExploreReport {
    /// Statement coverage as a fraction in `[0, 1]`.
    pub fn coverage_fraction(&self) -> f64 {
        if self.stmt_count == 0 {
            return 0.0;
        }
        self.coverage.len() as f64 / f64::from(self.stmt_count)
    }

    /// Satisfiable flip queries.
    pub fn sat_queries(&self) -> usize {
        self.queries.iter().filter(|q| q.sat).count()
    }

    /// Total wall-clock spent in solver queries.
    pub fn solver_time(&self) -> Duration {
        self.queries.iter().map(|q| q.duration).sum()
    }

    /// FNV-1a digest of the whole deterministic trajectory: every
    /// iteration snapshot, the bug set, and the final corpus digest.
    /// Two runs explored identically — same corpus, same schedule,
    /// same coverage growth, same bugs — if and only if their
    /// trajectory digests agree; the exploration differentials compare
    /// this across runs and worker counts.
    pub fn trajectory_digest(&self) -> u64 {
        let mut hash = Fnv::new();
        for p in &self.progress {
            hash.eat_u64(p.iteration as u64);
            hash.eat_u64(p.seed);
            hash.eat_u64(p.seed_hash);
            hash.eat_u64(p.new_inputs as u64);
            hash.eat_u64(p.corpus_size as u64);
            hash.eat_u64(p.frontier as u64);
            hash.eat_u64(p.unique_paths as u64);
            hash.eat_u64(p.covered_stmts as u64);
            hash.eat_u64(p.covered_directions as u64);
            hash.eat_u64(p.bugs as u64);
            hash.eat_u64(p.queries as u64);
            hash.eat_u64(p.sat_queries as u64);
        }
        for bug in &self.bugs {
            hash.eat_u64(u64::from(bug.stmt));
            hash.eat_u64(bug.trail_digest);
        }
        hash.eat_u64(self.corpus.digest());
        hash.finish()
    }
}

/// Runs the exploration loop with fresh caches sized from the engine
/// configuration.
///
/// # Examples
///
/// ```
/// use expose_dse::{explore, ExploreConfig, Harness, parser::parse_program};
///
/// let program = parse_program(r#"
///     function f(x) {
///         if (/^a+$/.test(x)) { if (x === "aaa") { return 2; } return 1; }
///         return 0;
///     }
/// "#)?;
/// let report = explore(
///     &program,
///     &Harness::strings("f", 1),
///     &ExploreConfig { max_iterations: 8, ..ExploreConfig::default() },
/// );
/// assert!(report.unique_paths >= 3, "the loop witnesses the deep path");
/// assert!(report.coverage_fraction() > 0.99);
/// # Ok::<(), expose_dse::parser::ParseError>(())
/// ```
pub fn explore(program: &Program, harness: &Harness, config: &ExploreConfig) -> ExploreReport {
    explore_with_caches(
        program,
        harness,
        config,
        &DseCaches::from_config(&config.engine),
    )
}

/// [`explore`] with caller-provided caches, so several exploration
/// runs (or exploration and batch jobs) share models and verdicts.
pub fn explore_with_caches(
    program: &Program,
    harness: &Harness,
    config: &ExploreConfig,
    caches: &DseCaches,
) -> ExploreReport {
    explore_observed(program, harness, config, caches, &mut |_| {})
}

/// [`explore_with_caches`] with a progress observer: `observer` fires
/// after every iteration with that iteration's snapshot — the service
/// streams its `explore_progress` lines from this. The observer cannot
/// influence the loop, so the returned report is identical to an
/// unobserved run.
pub fn explore_observed(
    program: &Program,
    harness: &Harness,
    config: &ExploreConfig,
    caches: &DseCaches,
    observer: &mut dyn FnMut(&IterationProgress),
) -> ExploreReport {
    let start = Instant::now();
    let engine = &config.engine;
    let solver = build_solver(engine, caches);
    let flip_workers = resolve_workers(engine.flip_workers);
    let interp_config = InterpConfig {
        support: engine.support,
        max_steps: engine.max_steps,
    };

    let mut corpus = CorpusStore::new();
    let mut frontier = FrontierScheduler::new();
    let mut coverage_map = CoverageMap::new();
    let mut coverage: HashSet<StmtId> = HashSet::new();
    let mut path_digests: HashSet<u64> = HashSet::new();
    let mut bug_digests: HashSet<u64> = HashSet::new();
    let mut bugs: Vec<ExploreBug> = Vec::new();
    let mut progress: Vec<IterationProgress> = Vec::new();
    let mut queries: Vec<QueryRecord> = Vec::new();
    let mut sat_queries = 0usize;

    // The initial seed: empty strings, like a fresh DSE job.
    let seed_id = corpus
        .insert(vec![String::new(); harness.input_count()], Vec::new(), None)
        .expect("empty corpus accepts the seed");
    frontier.push(seed_id);

    let stopped = loop {
        if config.max_iterations > 0 && progress.len() >= config.max_iterations {
            break StopReason::Iterations;
        }
        if let Some(budget) = config.max_wall {
            if start.elapsed() >= budget {
                break StopReason::Wall;
            }
        }
        let Some(seed) = frontier.pick(&corpus, &coverage_map) else {
            break StopReason::Frontier;
        };
        let seed_hash = corpus.get(seed).hash;
        let inputs = corpus.get(seed).inputs.clone();

        // Concrete + symbolic execution of the scheduled seed.
        let trace = execute(program, harness, &inputs, &interp_config);
        let trail: Vec<(StmtId, bool)> =
            trace.path.iter().map(|c| (c.branch_id, c.taken)).collect();
        for &(branch, taken) in &trail {
            coverage_map.insert(branch, taken);
        }
        coverage.extend(trace.coverage.iter().copied());
        path_digests.insert(trail_digest(&trail));
        for &failure in &trace.assertion_failures {
            // Bugs dedup by (trail, assertion site): the same assertion
            // reached along a genuinely different path is a new finding.
            let mut digest = Fnv::new();
            digest.eat_u64(trail_digest(&trail));
            digest.eat_u64(u64::from(failure));
            let digest = digest.finish();
            if bug_digests.insert(digest) {
                bugs.push(ExploreBug {
                    stmt: failure,
                    inputs: inputs.clone(),
                    trail_digest: digest,
                });
            }
        }
        corpus.mark_executed(seed, trail);

        // Solve every clause flip of the new trace; results come back
        // in clause order regardless of worker count.
        let flips = trace.path.len().min(engine.max_flips_per_trace);
        let results = solve_trace_flips(&trace, flips, engine, &solver, caches, flip_workers);
        let mut new_inputs = 0usize;
        for (k, result) in results.into_iter().enumerate() {
            if result.record.sat {
                sat_queries += 1;
            }
            queries.push(result.record);
            let Some(mut model_inputs) = result.inputs else {
                continue;
            };
            while model_inputs.len() < harness.input_count() {
                model_inputs.push(String::new());
            }
            if corpus.len() >= config.max_corpus {
                corpus.note_dropped();
                continue;
            }
            // The trail this model was solved to realize: the parent's
            // prefix with clause k flipped.
            let mut predicted: Vec<(StmtId, bool)> = trace.path[..k]
                .iter()
                .map(|c| (c.branch_id, c.taken))
                .collect();
            predicted.push((trace.path[k].branch_id, !trace.path[k].taken));
            if let Some(id) = corpus.insert(model_inputs, predicted, Some(seed)) {
                frontier.push(id);
                new_inputs += 1;
            }
        }

        let snapshot = IterationProgress {
            iteration: progress.len() + 1,
            seed,
            seed_hash,
            new_inputs,
            corpus_size: corpus.len(),
            frontier: frontier.pending(),
            unique_paths: path_digests.len(),
            covered_stmts: coverage.len(),
            covered_directions: coverage_map.covered_directions(),
            bugs: bugs.len(),
            queries: queries.len(),
            sat_queries,
        };
        observer(&snapshot);
        progress.push(snapshot);
    };

    ExploreReport {
        iterations: progress.len(),
        stmt_count: program.stmt_count,
        coverage,
        covered_directions: coverage_map.covered_directions(),
        unique_paths: path_digests.len(),
        corpus,
        bugs,
        progress,
        stopped,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str, config: ExploreConfig) -> ExploreReport {
        let program = parse_program(src).expect("parse");
        explore(&program, &Harness::strings("f", 1), &config)
    }

    const NESTED: &str = r#"function f(x) {
        if (/^[a-z]+$/.test(x)) {
            if (x === "deep") { return 3; }
            return 2;
        }
        if (x === "zz9") { return 1; }
        return 0;
    }"#;

    #[test]
    fn loop_witnesses_paths_a_single_trace_cannot() {
        // One iteration = execute the seed, solve its flips: only one
        // path is ever witnessed. The loop re-executes the models and
        // reaches the nested branches.
        let single = run(
            NESTED,
            ExploreConfig {
                max_iterations: 1,
                ..ExploreConfig::default()
            },
        );
        assert_eq!(single.iterations, 1);
        assert_eq!(single.unique_paths, 1);
        assert_eq!(single.stopped, StopReason::Iterations);

        let looped = run(
            NESTED,
            ExploreConfig {
                max_iterations: 12,
                ..ExploreConfig::default()
            },
        );
        assert!(looped.unique_paths > single.unique_paths, "{looped:#?}");
        assert!(looped.coverage_fraction() > 0.99, "{looped:#?}");
        assert!(looped.corpus.len() > 1);
        // Every non-seed entry records its parent.
        for entry in looped.corpus.entries().iter().skip(1) {
            assert!(entry.parent.is_some());
        }
    }

    #[test]
    fn frontier_exhaustion_stops_the_loop() {
        let report = run(
            r#"function f(x) { if (x === "k") { return 1; } return 0; }"#,
            ExploreConfig {
                max_iterations: 100,
                ..ExploreConfig::default()
            },
        );
        assert_eq!(report.stopped, StopReason::Frontier);
        assert!(report.iterations < 100);
        assert!(report.coverage_fraction() > 0.99);
        // Exhaustion means every corpus entry ran.
        assert!(report.corpus.entries().iter().all(|e| e.executed));
    }

    #[test]
    fn corpus_budget_drops_and_counts() {
        let report = run(
            NESTED,
            ExploreConfig {
                max_iterations: 4,
                max_corpus: 2,
                ..ExploreConfig::default()
            },
        );
        assert!(report.corpus.len() <= 2);
        assert!(report.corpus.dropped() > 0, "{report:#?}");
    }

    #[test]
    fn dedups_bugs_by_trail() {
        let report = run(
            r#"function f(x) {
                if (/^[0-9]+$/.test(x)) { assert(x === "7"); return 1; }
                return 0;
            }"#,
            ExploreConfig {
                max_iterations: 16,
                ..ExploreConfig::default()
            },
        );
        assert!(!report.bugs.is_empty(), "{report:#?}");
        let digests: HashSet<u64> = report.bugs.iter().map(|b| b.trail_digest).collect();
        assert_eq!(digests.len(), report.bugs.len(), "bug dedup by digest");
    }

    #[test]
    fn trajectory_identical_across_flip_worker_counts() {
        let digest = |workers: usize| {
            run(
                NESTED,
                ExploreConfig {
                    max_iterations: 10,
                    engine: EngineConfig {
                        flip_workers: workers,
                        ..EngineConfig::default()
                    },
                    ..ExploreConfig::default()
                },
            )
            .trajectory_digest()
        };
        let serial = digest(1);
        assert_eq!(serial, digest(2));
        assert_eq!(serial, digest(8));
    }

    #[test]
    fn wall_budget_stops_the_loop() {
        let report = run(
            NESTED,
            ExploreConfig {
                max_iterations: 0,
                max_wall: Some(Duration::ZERO),
                ..ExploreConfig::default()
            },
        );
        assert_eq!(report.stopped, StopReason::Wall);
        assert_eq!(report.iterations, 0);
    }
}

//! The engine's shared cache set.
//!
//! One [`DseCaches`] instance is shared by every flip query of a DSE
//! run — and, via [`crate::batch::run_batch`], across all jobs of a
//! batch: the model cache amortizes regex→SMT model construction and
//! the query cache amortizes whole solver queries (child traces share
//! their path prefix with the parent, so the prefix flip queries repeat
//! verbatim). Both caches are verdict-preserving: a hit returns exactly
//! what a fresh build/solve would (see `tests/cache_differential.rs`),
//! so sharing never perturbs the reproduced tables.

use std::sync::Arc;

use expose_core::cache::ModelCache;
use strsolve::QueryCache;

use crate::engine::EngineConfig;

/// The shared caches of a DSE run (cheap to clone; clones share state).
#[derive(Debug, Clone)]
pub struct DseCaches {
    /// Regex → built Algorithm 2 model, shared across queries/traces.
    pub model: Arc<ModelCache>,
    /// Canonicalized formula → solver verdict.
    pub query: Arc<QueryCache>,
}

impl DseCaches {
    /// Creates a cache set with the given capacities (`0` disables the
    /// respective cache).
    pub fn new(model_capacity: usize, query_capacity: usize) -> DseCaches {
        DseCaches {
            model: Arc::new(ModelCache::new(model_capacity)),
            query: Arc::new(QueryCache::new(query_capacity)),
        }
    }

    /// A cache set sized from an engine configuration.
    pub fn from_config(config: &EngineConfig) -> DseCaches {
        DseCaches::new(config.model_cache_capacity, config.query_cache_capacity)
    }

    /// A fully disabled cache set (every lookup misses and stores
    /// nothing) — the uncached baseline of the perf harness.
    pub fn disabled() -> DseCaches {
        DseCaches::new(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let caches = DseCaches::new(8, 8);
        let clone = caches.clone();
        assert!(Arc::ptr_eq(&caches.model, &clone.model));
        assert!(Arc::ptr_eq(&caches.query, &clone.query));
    }

    #[test]
    fn disabled_set_is_empty_capacity() {
        let caches = DseCaches::disabled();
        assert!(caches.model.is_empty());
        assert!(caches.query.is_empty());
    }
}

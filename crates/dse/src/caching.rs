//! The engine's shared cache set.
//!
//! One [`DseCaches`] instance is shared by every flip query of a DSE
//! run — and, via [`crate::sched::Scheduler`] and
//! [`crate::batch::BatchOptions`], across all jobs of a session: the model
//! cache amortizes regex→SMT model construction, the query cache
//! amortizes whole solver queries (child traces share their path prefix
//! with the parent, so the prefix flip queries repeat verbatim), and a
//! [`DseCaches::session`] set additionally shares the solver's DFA
//! intern tables so a regex determinized for one job is free for every
//! other. All three layers are verdict-preserving: a hit returns
//! exactly what a fresh build/solve would (see
//! `tests/cache_differential.rs`), so sharing never perturbs the
//! reproduced tables.

use std::sync::Arc;

use expose_core::cache::ModelCache;
use expose_core::cegar::CegarCache;
use strsolve::{DfaTables, QueryCache};

use crate::engine::EngineConfig;

/// The shared caches of a DSE run (cheap to clone; clones share state).
#[derive(Debug, Clone)]
pub struct DseCaches {
    /// Regex → built Algorithm 2 model, shared across queries/traces.
    pub model: Arc<ModelCache>,
    /// Canonicalized formula → solver verdict.
    pub query: Arc<QueryCache>,
    /// Canonical CEGAR problem → whole validated refinement run,
    /// consulted by the incremental flip sessions (child traces re-pose
    /// their parent's prefix flips verbatim, so entire refinement
    /// chains replay across traces).
    pub verdicts: Arc<CegarCache>,
    /// Session-scoped DFA intern tables. `None` (the single-run
    /// default) leaves each solver its private tables; a scheduler
    /// session shares one instance across every shard so a regex
    /// determinized for one job is free for all others.
    pub dfa: Option<DfaTables>,
}

/// A session-scoped cache set: the name under which scheduler shards
/// and the job service share one [`DseCaches`] (models, verdicts, and
/// DFA intern tables) across every job of a session. Construct with
/// [`DseCaches::session`].
pub type CacheSet = DseCaches;

impl DseCaches {
    /// Creates a cache set with the given capacities (`0` disables the
    /// respective cache). The DFA tables stay solver-private.
    pub fn new(model_capacity: usize, query_capacity: usize) -> DseCaches {
        DseCaches {
            model: Arc::new(ModelCache::new(model_capacity)),
            query: Arc::new(QueryCache::new(query_capacity)),
            verdicts: Arc::new(CegarCache::new(query_capacity)),
            dfa: None,
        }
    }

    /// Creates a session cache set: models, verdicts, *and* DFA intern
    /// tables shared by every run handed this set. `dfa_capacity` is
    /// the per-index capacity of the shared tables (`0` keeps lookups
    /// always-missing, matching a disabled solver-private cache).
    pub fn session(model_capacity: usize, query_capacity: usize, dfa_capacity: usize) -> DseCaches {
        DseCaches {
            model: Arc::new(ModelCache::new(model_capacity)),
            query: Arc::new(QueryCache::new(query_capacity)),
            verdicts: Arc::new(CegarCache::new(query_capacity)),
            dfa: Some(DfaTables::new(dfa_capacity)),
        }
    }

    /// A session cache set whose model and solver-verdict layers are
    /// additionally bounded by approximate byte budgets (`0` =
    /// unlimited) — used by long-lived `expose-serve` sessions so
    /// resident cached state cannot grow without bound.
    pub fn session_with_byte_budgets(
        model_capacity: usize,
        query_capacity: usize,
        dfa_capacity: usize,
        model_byte_budget: usize,
        query_byte_budget: usize,
    ) -> DseCaches {
        DseCaches {
            model: Arc::new(ModelCache::with_byte_budget(
                model_capacity,
                model_byte_budget,
            )),
            query: Arc::new(QueryCache::with_byte_budget(
                query_capacity,
                query_byte_budget,
            )),
            verdicts: Arc::new(CegarCache::with_byte_budget(
                query_capacity,
                query_byte_budget,
            )),
            dfa: Some(DfaTables::new(dfa_capacity)),
        }
    }

    /// A cache set sized from an engine configuration.
    pub fn from_config(config: &EngineConfig) -> DseCaches {
        DseCaches::new(config.model_cache_capacity, config.query_cache_capacity)
    }

    /// A session cache set sized from an engine configuration (the DFA
    /// tables take the solver's `dfa_cache_capacity`).
    pub fn session_from_config(config: &EngineConfig) -> DseCaches {
        DseCaches::session(
            config.model_cache_capacity,
            config.query_cache_capacity,
            config.solver.dfa_cache_capacity,
        )
    }

    /// A fully disabled cache set (every lookup misses and stores
    /// nothing) — the uncached baseline of the perf harness.
    pub fn disabled() -> DseCaches {
        DseCaches::new(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let caches = DseCaches::new(8, 8);
        let clone = caches.clone();
        assert!(Arc::ptr_eq(&caches.model, &clone.model));
        assert!(Arc::ptr_eq(&caches.query, &clone.query));
        assert!(Arc::ptr_eq(&caches.verdicts, &clone.verdicts));
    }

    #[test]
    fn session_set_carries_shared_dfa_tables() {
        let caches = DseCaches::session(8, 8, 16);
        let tables = caches.dfa.as_ref().expect("session tables");
        assert_eq!(tables.capacity(), 16);
        assert!(tables.is_empty());
        // Plain sets keep solver-private tables.
        assert!(DseCaches::new(8, 8).dfa.is_none());
    }

    #[test]
    fn disabled_set_is_empty_capacity() {
        let caches = DseCaches::disabled();
        assert!(caches.model.is_empty());
        assert!(caches.query.is_empty());
    }
}

//! Recursive-descent parser for the mini-JS language.

use std::fmt;

use regex_syntax_es6::Regex;

use crate::ast::{BinOp, Expr, Function, Program, Stmt, StmtId, Target, UnOp};
use crate::lexer::{lex, LexError, Token};

/// A parsing error.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// Token index at which the error occurred.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at token {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(err: LexError) -> ParseError {
        ParseError {
            position: err.position,
            message: err.message,
        }
    }
}

/// Parses mini-JS source into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors (including regex literal
/// syntax errors, which are checked eagerly).
///
/// # Examples
///
/// ```
/// use expose_dse::parser::parse_program;
///
/// let program = parse_program(r#"
///     function greet(name) {
///         if (/^[a-z]+$/.test(name)) { return "hi " + name; }
///         return "?";
///     }
/// "#)?;
/// assert!(program.stmt_count >= 3);
/// # Ok::<(), expose_dse::parser::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        next_id: 0,
    };
    let mut body = Vec::new();
    while !parser.at_eof() {
        body.push(parser.statement()?);
    }
    Ok(Program {
        body,
        stmt_count: parser.next_id,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: StmtId,
}

impl Parser {
    fn fresh_id(&mut self) -> StmtId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        match self.bump() {
            Token::Punct(q) if q == p => Ok(()),
            other => Err(self.error(format!("expected `{p}`, found `{other}`"))),
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if matches!(self.peek(), Token::Punct(q) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Token::Ident(w) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Token::Ident(name) => Ok(name),
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_ident("let") || self.eat_ident("var") || self.eat_ident("const") {
            let id = self.fresh_id();
            let name = self.ident()?;
            self.expect_punct("=")?;
            let value = self.expression()?;
            self.eat_punct(";");
            return Ok(Stmt::Let { id, name, value });
        }
        if self.eat_ident("if") {
            let id = self.fresh_id();
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            let then_body = self.block_or_single()?;
            let else_body = if self.eat_ident("else") {
                if matches!(self.peek(), Token::Ident(w) if w == "if") {
                    vec![self.statement()?]
                } else {
                    self.block_or_single()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                id,
                cond,
                then_body,
                else_body,
            });
        }
        if self.eat_ident("while") {
            let id = self.fresh_id();
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::While { id, cond, body });
        }
        if self.eat_ident("for") {
            // Desugar `for (init; cond; update) body` to init + while.
            let id = self.fresh_id();
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else {
                let s = self.statement()?; // consumes `;`
                Some(s)
            };
            let cond = if matches!(self.peek(), Token::Punct(";")) {
                Expr::Bool(true)
            } else {
                self.expression()?
            };
            self.eat_punct(";");
            let update = if matches!(self.peek(), Token::Punct(")")) {
                None
            } else {
                let target = self.assign_target()?;
                self.expect_punct("=")?;
                let value = self.expression()?;
                let uid = self.fresh_id();
                Some(Stmt::Assign {
                    id: uid,
                    target,
                    value,
                })
            };
            self.expect_punct(")")?;
            let mut body = self.block_or_single()?;
            if let Some(update) = update {
                body.push(update);
            }
            let while_stmt = Stmt::While { id, cond, body };
            return Ok(match init {
                Some(init) => {
                    // Wrap in a synthetic block via an If(true) so the
                    // statement type stays simple.
                    let wrapper_id = self.fresh_id();
                    Stmt::If {
                        id: wrapper_id,
                        cond: Expr::Bool(true),
                        then_body: vec![init, while_stmt],
                        else_body: Vec::new(),
                    }
                }
                None => while_stmt,
            });
        }
        if self.eat_ident("function") {
            let id = self.fresh_id();
            let name = self.ident()?;
            self.expect_punct("(")?;
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    params.push(self.ident()?);
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            let body = self.block()?;
            return Ok(Stmt::FunctionDecl {
                id,
                func: Function { name, params, body },
            });
        }
        if self.eat_ident("return") {
            let id = self.fresh_id();
            let value = if matches!(self.peek(), Token::Punct(";") | Token::Punct("}")) {
                None
            } else {
                Some(self.expression()?)
            };
            self.eat_punct(";");
            return Ok(Stmt::Return { id, value });
        }
        if matches!(self.peek(), Token::Ident(w) if w == "assert") {
            // `assert(e);`
            self.bump();
            let id = self.fresh_id();
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            self.eat_punct(";");
            return Ok(Stmt::Assert { id, cond });
        }
        // Assignment or expression statement.
        let start = self.pos;
        if let Ok(target) = self.assign_target() {
            if self.eat_punct("=") {
                let id = self.fresh_id();
                let value = self.expression()?;
                self.eat_punct(";");
                return Ok(Stmt::Assign { id, target, value });
            }
        }
        self.pos = start;
        let id = self.fresh_id();
        let expr = self.expression()?;
        self.eat_punct(";");
        Ok(Stmt::ExprStmt { id, expr })
    }

    fn assign_target(&mut self) -> Result<Target, ParseError> {
        let name = match self.peek().clone() {
            Token::Ident(name) => {
                self.bump();
                name
            }
            other => return Err(self.error(format!("expected target, found `{other}`"))),
        };
        if self.eat_punct("[") {
            let index = self.expression()?;
            self.expect_punct("]")?;
            // Only single-level index targets.
            return Ok(Target::Index(Box::new(Expr::Var(name)), Box::new(index)));
        }
        Ok(Target::Var(name))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return Err(self.error("unterminated block"));
            }
            body.push(self.statement()?);
        }
        Ok(body)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if matches!(self.peek(), Token::Punct("{")) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    // --- Expressions (precedence climbing) ------------------------------

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_punct("||") {
            let right = self.and_expr()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.equality()?;
        while self.eat_punct("&&") {
            let right = self.equality()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.comparison()?;
        loop {
            let op = if self.eat_punct("===") || self.eat_punct("==") {
                BinOp::StrictEq
            } else if self.eat_punct("!==") || self.eat_punct("!=") {
                BinOp::StrictNe
            } else {
                break;
            };
            let right = self.comparison()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.additive()?;
        loop {
            let op = if self.eat_punct("<=") {
                BinOp::Le
            } else if self.eat_punct(">=") {
                BinOp::Ge
            } else if self.eat_punct("<") {
                BinOp::Lt
            } else if self.eat_punct(">") {
                BinOp::Gt
            } else {
                break;
            };
            let right = self.additive()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Mod
            } else {
                break;
            };
            let right = self.unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.eat_ident("typeof") {
            return Ok(Expr::Unary(UnOp::TypeOf, Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary()?;
        loop {
            if self.eat_punct("[") {
                let index = self.expression()?;
                self.expect_punct("]")?;
                expr = Expr::Index(Box::new(expr), Box::new(index));
            } else if self.eat_punct(".") {
                let name = self.ident()?;
                if self.eat_punct("(") {
                    let args = self.call_args()?;
                    expr = Expr::MethodCall(Box::new(expr), name, args);
                } else {
                    expr = Expr::Member(Box::new(expr), name);
                }
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.eat_punct(")") {
            return Ok(args);
        }
        loop {
            args.push(self.expression()?);
            if self.eat_punct(")") {
                return Ok(args);
            }
            self.expect_punct(",")?;
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Token::Num(n) => Ok(Expr::Num(n)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::Regex(text) => {
                let regex = Regex::parse_literal(&text)
                    .map_err(|e| self.error(format!("bad regex literal: {e}")))?;
                Ok(Expr::Regex(regex))
            }
            Token::Punct("(") => {
                let e = self.expression()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Token::Punct("[") => {
                let mut items = Vec::new();
                if !self.eat_punct("]") {
                    loop {
                        items.push(self.expression()?);
                        if self.eat_punct("]") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::Array(items))
            }
            Token::Ident(word) => match word.as_str() {
                "undefined" => Ok(Expr::Undefined),
                "null" => Ok(Expr::Null),
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                _ => {
                    if self.eat_punct("(") {
                        let args = self.call_args()?;
                        Ok(Expr::Call(word, args))
                    } else {
                        Ok(Expr::Var(word))
                    }
                }
            },
            other => Err(self.error(format!("unexpected token `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_let_and_if() {
        let p = parse_program("let x = 1; if (x === 1) { x = 2; } else { x = 3; }").expect("parse");
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn parse_function() {
        let p = parse_program("function f(a, b) { return a + b; }").expect("parse");
        match &p.body[0] {
            Stmt::FunctionDecl { func, .. } => {
                assert_eq!(func.name, "f");
                assert_eq!(func.params, vec!["a", "b"]);
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn parse_regex_method_call() {
        let p = parse_program(r"let m = /a(b)/.exec(s);").expect("parse");
        match &p.body[0] {
            Stmt::Let { value, .. } => {
                assert!(matches!(value, Expr::MethodCall(_, name, _) if name == "exec"));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn parse_listing1() {
        // Listing 1 from the paper, adapted to the mini language.
        let src = r#"
            function run(args) {
                let timeout = "500";
                for (let i = 0; i < args.length; i = i + 1) {
                    let arg = args[i];
                    let parts = /<(\w+)>([0-9]*)<\/\1>/.exec(arg);
                    if (parts) {
                        if (parts[1] === "timeout") {
                            timeout = parts[2];
                        }
                    }
                }
                assert(/^[0-9]+$/.test(timeout) === true);
            }
        "#;
        let p = parse_program(src).expect("parse");
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn parse_while_and_assert() {
        let p = parse_program("let i = 0; while (i < 3) { i = i + 1; } assert(i === 3);")
            .expect("parse");
        assert_eq!(p.body.len(), 3);
    }

    #[test]
    fn parse_array_and_index() {
        let p = parse_program(r#"let a = ["x", "y"]; let b = a[1];"#).expect("parse");
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn parse_member_and_chained_calls() {
        let p = parse_program(r#"let n = s.length; let t = s.replace(/a/g, "b");"#).expect("parse");
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(parse_program("let = 1;").is_err());
        assert!(parse_program("if (x { }").is_err());
        assert!(parse_program("let r = /(/;").is_err());
    }
}

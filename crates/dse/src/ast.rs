//! AST of the JavaScript-like mini language executed by the DSE engine.
//!
//! The language covers the fragment the paper's evaluation exercises:
//! string-manipulating library code with regex literals, `RegExp`
//! methods, capture-group access, string comparison, arrays, and
//! assertions (Listing 1 of the paper is expressible verbatim modulo
//! syntax).

use regex_syntax_es6::Regex;

/// Statement identifier used for coverage accounting.
pub type StmtId = u32;

/// A parsed program: top-level statements plus function declarations.
#[derive(Debug, Clone)]
pub struct Program {
    /// Top-level statements in order.
    pub body: Vec<Stmt>,
    /// Total number of statements (for coverage percentages).
    pub stmt_count: u32,
}

/// A function declaration.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let x = e;`
    Let {
        /// Coverage id.
        id: StmtId,
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
    },
    /// `x = e;` or `x[i] = e;`
    Assign {
        /// Coverage id.
        id: StmtId,
        /// Assignment target.
        target: Target,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (c) { … } else { … }`
    If {
        /// Coverage id.
        id: StmtId,
        /// Branch condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (c) { … }`
    While {
        /// Coverage id.
        id: StmtId,
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (let x = e; c; x = u) { … }` desugars to Let+While.
    /// `function f(a, b) { … }`
    FunctionDecl {
        /// Coverage id.
        id: StmtId,
        /// The function.
        func: Function,
    },
    /// `return e;`
    Return {
        /// Coverage id.
        id: StmtId,
        /// Returned expression (`undefined` if omitted).
        value: Option<Expr>,
    },
    /// `assert(e);` — the bug oracle of the evaluation.
    Assert {
        /// Coverage id.
        id: StmtId,
        /// Asserted condition.
        cond: Expr,
    },
    /// A bare expression statement.
    ExprStmt {
        /// Coverage id.
        id: StmtId,
        /// The expression.
        expr: Expr,
    },
}

impl Stmt {
    /// The coverage id of this statement.
    pub fn id(&self) -> StmtId {
        match self {
            Stmt::Let { id, .. }
            | Stmt::Assign { id, .. }
            | Stmt::If { id, .. }
            | Stmt::While { id, .. }
            | Stmt::FunctionDecl { id, .. }
            | Stmt::Return { id, .. }
            | Stmt::Assert { id, .. }
            | Stmt::ExprStmt { id, .. } => *id,
        }
    }
}

/// Assignment targets.
#[derive(Debug, Clone)]
pub enum Target {
    /// A variable.
    Var(String),
    /// An element `base[index]`.
    Index(Box<Expr>, Box<Expr>),
}

/// Expressions.
#[derive(Debug, Clone)]
pub enum Expr {
    /// `undefined`
    Undefined,
    /// `null`
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Number literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Regex literal `/source/flags`.
    Regex(Regex),
    /// Array literal.
    Array(Vec<Expr>),
    /// Variable reference.
    Var(String),
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `base.name` (property read, e.g. `.length`).
    Member(Box<Expr>, String),
    /// Unary operator.
    Unary(UnOp, Box<Expr>),
    /// Binary operator.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call `f(args)`.
    Call(String, Vec<Expr>),
    /// Method call `recv.name(args)`.
    MethodCall(Box<Expr>, String, Vec<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Numeric negation `-`.
    Neg,
    /// `typeof`.
    TypeOf,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition or string concatenation).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `===` (also used for `==` — the mini language is strict).
    StrictEq,
    /// `!==`
    StrictNe,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

//! Lexer for the mini-JS language.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Number literal.
    Num(f64),
    /// String literal (already unescaped).
    Str(String),
    /// Regex literal text, including slashes and flags.
    Regex(String),
    /// Punctuation or operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Num(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Regex(s) => write!(f, "{s}"),
            Token::Punct(p) => write!(f, "{p}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "=", "<", ">", "+", "-", "*", "%", "(", ")",
    "{", "}", "[", "]", ";", ",", ".", "!", ":", "?", "/",
];

/// Tokenizes mini-JS source.
///
/// Regex literals are recognized by position: a `/` that begins an
/// expression (after an operator, `(`, `,`, `=`, `return`, …) starts a
/// regex; otherwise it is division.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings/regexes or stray bytes.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    // Tracks whether `/` starts a regex (expression position).
    let mut expect_value = true;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            i += 2;
            while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                i += 1;
            }
            i = (i + 2).min(chars.len());
            continue;
        }
        // Regex literal in expression position.
        if c == '/' && expect_value {
            let start = i;
            i += 1;
            let mut in_class = false;
            let mut escaped = false;
            loop {
                let Some(&rc) = chars.get(i) else {
                    return Err(LexError {
                        position: start,
                        message: "unterminated regex literal".into(),
                    });
                };
                if escaped {
                    escaped = false;
                } else {
                    match rc {
                        '\\' => escaped = true,
                        '[' => in_class = true,
                        ']' => in_class = false,
                        '/' if !in_class => break,
                        '\n' => {
                            return Err(LexError {
                                position: start,
                                message: "unterminated regex literal".into(),
                            })
                        }
                        _ => {}
                    }
                }
                i += 1;
            }
            i += 1; // closing '/'
            while i < chars.len() && chars[i].is_ascii_alphabetic() {
                i += 1;
            }
            tokens.push(Token::Regex(chars[start..i].iter().collect()));
            expect_value = false;
            continue;
        }
        // String literals.
        if c == '"' || c == '\'' {
            let quote = c;
            let start = i;
            i += 1;
            let mut value = String::new();
            loop {
                let Some(&sc) = chars.get(i) else {
                    return Err(LexError {
                        position: start,
                        message: "unterminated string literal".into(),
                    });
                };
                i += 1;
                match sc {
                    '\\' => {
                        let esc = chars.get(i).copied().unwrap_or('\\');
                        i += 1;
                        value.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            '0' => '\0',
                            other => other,
                        });
                    }
                    q if q == quote => break,
                    other => value.push(other),
                }
            }
            tokens.push(Token::Str(value));
            expect_value = false;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let value = text.parse::<f64>().map_err(|_| LexError {
                position: start,
                message: format!("bad number literal `{text}`"),
            })?;
            tokens.push(Token::Num(value));
            expect_value = false;
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$')
            {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            // Keywords that put us back into expression position.
            expect_value = matches!(
                word.as_str(),
                "return" | "typeof" | "case" | "in" | "of" | "new" | "delete"
            );
            tokens.push(Token::Ident(word));
            continue;
        }
        // Punctuation (longest match first).
        let mut matched = false;
        for p in PUNCTS {
            if chars[i..].starts_with(&p.chars().collect::<Vec<_>>()[..]) {
                tokens.push(Token::Punct(p));
                i += p.len();
                // After `)`, `]` or an identifier-like token a `/` is
                // division; after operators it starts a regex.
                expect_value = !matches!(*p, ")" | "]");
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LexError {
                position: i,
                message: format!("unexpected character `{c}`"),
            });
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let tokens = lex("let x = 42;").expect("lex");
        assert_eq!(
            tokens,
            vec![
                Token::Ident("let".into()),
                Token::Ident("x".into()),
                Token::Punct("="),
                Token::Num(42.0),
                Token::Punct(";"),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn regex_vs_division() {
        let tokens = lex("let r = /ab+/g; let q = x / y;").expect("lex");
        assert!(tokens.contains(&Token::Regex("/ab+/g".into())));
        assert!(tokens.contains(&Token::Punct("/")));
    }

    #[test]
    fn regex_with_class_slash() {
        let tokens = lex(r"let r = /a[/]b/;").expect("lex");
        assert!(tokens.contains(&Token::Regex("/a[/]b/".into())));
    }

    #[test]
    fn string_escapes() {
        let tokens = lex(r#"let s = "a\nb";"#).expect("lex");
        assert!(tokens.contains(&Token::Str("a\nb".into())));
    }

    #[test]
    fn comments_skipped() {
        let tokens = lex("// hi\nlet /* there */ x = 1;").expect("lex");
        assert_eq!(tokens.len(), 6);
    }

    #[test]
    fn listing1_regex() {
        // The regex from Listing 1 of the paper.
        let tokens = lex(r"let parts = /<(\w+)>([0-9]*)<\/\1>/.exec(arg);").expect("lex");
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Regex(r) if r.contains("\\w"))));
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("let r = /unterminated").is_err());
        assert!(lex("let x = #;").is_err());
    }
}

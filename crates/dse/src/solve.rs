//! Translation of path conditions into solver queries.
//!
//! Flipping clause `k` of a trace's path condition produces the query
//! `pc₀ ∧ … ∧ pcₖ₋₁ ∧ ¬pcₖ` (§3.2). Boolean symbolic expressions
//! translate to [`strsolve::Formula`]s; regex events translate to
//! Algorithm 2 models via [`expose_core::build_match_model`], with the
//! polarity demanded by the query, and the whole problem is decided by
//! the CEGAR solver (or the plain solver below the `Refinement` support
//! level — the Table 7 ablation).

use std::collections::HashMap;
use std::sync::Arc;

use expose_core::api::CapturingConstraint;
use expose_core::cegar::CegarSolver;
use expose_core::model::BuildConfig;
use expose_core::negate::nnf_negate;
use expose_core::SupportLevel;
use strsolve::{Formula, Outcome, SolveSession, Solver, StrVar, Term, VarPool};

use crate::caching::DseCaches;
use crate::sym::{RegexEvent, SymExpr, Trace};

/// Statistics for one flip query (rows of Table 8).
#[derive(Debug, Clone, Default)]
pub struct QueryRecord {
    /// Wall-clock duration.
    pub duration: std::time::Duration,
    /// Whether a regex was modeled in this query.
    pub modeled_regex: bool,
    /// Whether a capture group or backreference was modeled.
    pub had_captures: bool,
    /// Refinements performed by CEGAR.
    pub refinements: usize,
    /// Whether the refinement limit was hit.
    pub limit_hit: bool,
    /// The verdict (true = SAT with new inputs).
    pub sat: bool,
    /// Regex models served from the shared model cache.
    pub model_cache_hits: u64,
    /// Regex models built fresh (cache miss or cache disabled).
    pub model_cache_misses: u64,
    /// Solver calls answered from the shared query cache.
    pub query_cache_hits: u64,
    /// Solver calls that ran the full search.
    pub query_cache_misses: u64,
    /// Search-tree nodes visited across all solver calls of the query.
    pub solver_nodes: u64,
    /// DFA states built by the solver before minimization.
    pub dfa_states_built: u64,
    /// DFA states remaining after the thresholded Hopcroft pass.
    pub states_after_minimize: u64,
    /// Conjunctions refuted by length abstraction before word search.
    pub length_prunes: u64,
    /// Solver DFA-cache lookups served from resident entries (shared
    /// session tables or the solver-private cache).
    pub dfa_cache_hits: u64,
    /// Canonical prefix frames reused from an incremental
    /// [`TraceFlipSession`] instead of being re-canonicalized (`0` for
    /// from-scratch solves).
    pub prefix_reuse_hits: u64,
    /// Whole CEGAR refinement runs replayed from the shared verdict
    /// cache ([`expose_core::cegar::CegarCache`]).
    pub verdict_replays: u64,
}

/// The result of solving one flipped path condition.
#[derive(Debug)]
pub struct FlipResult {
    /// New concrete inputs when satisfiable.
    pub inputs: Option<Vec<String>>,
    /// Query statistics.
    pub record: QueryRecord,
}

/// Builds and solves the query for flipping clause `flip_index` of the
/// trace under the given support level.
///
/// Regex models are obtained through `caches.model`; solver queries go
/// through whatever result cache is attached to `solver` (the engine
/// attaches `caches.query`). Pass [`DseCaches::disabled`] to measure
/// the uncached baseline.
pub fn solve_flip(
    trace: &Trace,
    flip_index: usize,
    support: SupportLevel,
    solver: &Solver,
    refinement_limit: usize,
    build: &BuildConfig,
    caches: &DseCaches,
) -> FlipResult {
    let started = std::time::Instant::now();
    let mut builder = QueryBuilder::new(support, build.clone(), caches);

    let mut conjuncts = Vec::new();
    for (i, clause) in trace.path.iter().enumerate() {
        if i > flip_index {
            break;
        }
        let expected = if i == flip_index {
            !clause.taken
        } else {
            clause.taken
        };
        conjuncts.push(builder.bool_formula(&trace.events, &clause.cond, expected));
    }
    let record_base = QueryRecord {
        modeled_regex: !builder.constraints.is_empty(),
        had_captures: builder
            .constraints
            .values()
            .any(|c| c.captures.len() > 1 || c.regex.ast.has_backref()),
        model_cache_hits: builder.model_cache_hits,
        model_cache_misses: builder.model_cache_misses,
        ..QueryRecord::default()
    };

    if builder.infeasible {
        return FlipResult {
            inputs: None,
            record: QueryRecord {
                duration: started.elapsed(),
                ..record_base
            },
        };
    }

    let problem = Formula::and(conjuncts);
    let constraints = builder.sorted_constraints();

    let (outcome, refinements, limit_hit, solver_stats) = if support.refines() {
        let cegar = CegarSolver::new(solver.clone(), refinement_limit);
        let result = cegar.solve(&problem, &constraints);
        (
            result.outcome,
            result.stats.refinements,
            result.stats.limit_hit,
            result.stats.solver,
        )
    } else {
        // Captures-without-refinement ablation: conjoin the models and
        // accept the first assignment (may be spurious — Table 7).
        let mut parts = vec![problem];
        parts.extend(constraints.iter().map(|c| c.formula.clone()));
        let (outcome, stats) = solver.solve(&Formula::and(parts));
        (outcome, 0, false, stats)
    };

    let inputs = extract_inputs(&outcome, &builder.input_vars, trace.inputs_used);

    FlipResult {
        record: QueryRecord {
            duration: started.elapsed(),
            refinements,
            limit_hit,
            sat: inputs.is_some(),
            query_cache_hits: solver_stats.cache_hits,
            query_cache_misses: solver_stats.cache_misses,
            solver_nodes: solver_stats.nodes,
            dfa_states_built: solver_stats.dfa_states_built,
            states_after_minimize: solver_stats.states_after_minimize,
            length_prunes: solver_stats.length_prunes,
            dfa_cache_hits: solver_stats.dfa_cache_hits,
            prefix_reuse_hits: solver_stats.prefix_reuse_hits,
            ..record_base
        },
        inputs,
    }
}

/// Reads the new concrete inputs out of a `Sat` model (`None`
/// otherwise), padded to the number of inputs the trace consumed.
fn extract_inputs(
    outcome: &Outcome,
    input_vars: &HashMap<usize, StrVar>,
    inputs_used: usize,
) -> Option<Vec<String>> {
    match outcome {
        Outcome::Sat(model) => {
            let n_inputs = inputs_used.max(input_vars.keys().copied().max().map_or(0, |k| k + 1));
            let mut inputs = vec![String::new(); n_inputs];
            for (&k, &var) in input_vars {
                inputs[k] = model.get_str(var).unwrap_or_default().to_string();
            }
            Some(inputs)
        }
        _ => None,
    }
}

/// One flip's pre-built query pieces inside a [`TraceFlipSession`]: the
/// flipped tie (the assumption), the constraint models it needs, and
/// the record skeleton — everything except the actual solve.
#[derive(Debug)]
struct FlipPlan {
    /// The flipped clause tie `¬tieₖ` (plus nothing else: the shared
    /// prefix lives in the session frames).
    assumption: Vec<Formula>,
    /// The capturing constraints of the query, in event order.
    constraints: Vec<CapturingConstraint>,
    /// Input variables allocated by the time this flip was planned.
    input_vars: HashMap<usize, StrVar>,
    /// True when the flip demanded contradictory polarities of one
    /// regex event (trivially unsatisfiable; never solved).
    infeasible: bool,
    /// Record fields known at build time (modeled_regex, captures,
    /// model-cache traffic).
    record_base: QueryRecord,
}

/// The incremental counterpart of [`solve_flip`]: one assumption-stack
/// [`SolveSession`] per trace.
///
/// [`TraceFlipSession::build`] walks the trace's clauses **once**. Ahead
/// of each taken clause `k` it *forks* the shared query builder to
/// translate the flipped tie `¬tieₖ` — the fork's state equals a
/// from-scratch flip-`k` builder's after the prefix, so variable
/// allocation (and with it every formula byte) matches [`solve_flip`]
/// exactly. It then pushes the taken tie `tieₖ` as session frame `k`,
/// canonicalizing it once for the whole flip family.
///
/// [`TraceFlipSession::solve`] takes `&self`, so the flips of one trace
/// can fan out over worker threads against the shared prefix. Each
/// flip solves as "frames `0..k` + assumption": iteration 0 routes
/// through the pre-keyed query cache (same keys as scratch solves), and
/// whole CEGAR refinement chains replay from the run's
/// [`expose_core::cegar::CegarCache`] when a structurally identical
/// flip was already solved — the dominant cross-trace case, since child
/// traces re-pose their parent's prefix flips verbatim.
#[derive(Debug)]
pub struct TraceFlipSession<'a> {
    session: SolveSession,
    plans: Vec<FlipPlan>,
    /// The shared prefix builder, advanced one taken tie per pushed
    /// clause. Kept so clauses can keep arriving after construction
    /// (the streaming wire sessions push one clause per request).
    builder: QueryBuilder<'a>,
    /// Builder states from *before* each pushed clause — recorded only
    /// when retraction is enabled, so the engine's forward-only path
    /// pays nothing for them.
    snapshots: Vec<QueryBuilder<'a>>,
    retractable: bool,
    support: SupportLevel,
    refinement_limit: usize,
    caches: &'a DseCaches,
    inputs_used: usize,
}

impl<'a> TraceFlipSession<'a> {
    /// Creates an empty session: no clauses pushed, no flips planned.
    /// Feed it with [`TraceFlipSession::push_clause`].
    pub fn new(
        support: SupportLevel,
        solver: &Solver,
        refinement_limit: usize,
        build: &BuildConfig,
        caches: &'a DseCaches,
    ) -> TraceFlipSession<'a> {
        TraceFlipSession {
            session: SolveSession::new(solver.clone()),
            plans: Vec::new(),
            builder: QueryBuilder::new(support, build.clone(), caches),
            snapshots: Vec::new(),
            retractable: false,
            support,
            refinement_limit,
            caches,
            inputs_used: 0,
        }
    }

    /// Enables [`TraceFlipSession::pop_clause`] by snapshotting the
    /// prefix builder before every push. The engine's trace walk never
    /// retracts and skips this; wire sessions need it for `pop`.
    pub fn retractable(mut self) -> TraceFlipSession<'a> {
        self.retractable = true;
        self
    }

    /// Declares how many concrete inputs the trace consumed, so SAT
    /// models pad their input vectors exactly like
    /// [`solve_flip`] on a trace with the same `inputs_used`.
    pub fn with_inputs_used(mut self, inputs_used: usize) -> TraceFlipSession<'a> {
        self.inputs_used = inputs_used;
        self
    }

    /// Builds the shared prefix and the per-flip plans for the first
    /// `flips` clauses of `trace`.
    pub fn build(
        trace: &Trace,
        flips: usize,
        support: SupportLevel,
        solver: &Solver,
        refinement_limit: usize,
        build: &BuildConfig,
        caches: &'a DseCaches,
    ) -> TraceFlipSession<'a> {
        let mut this = TraceFlipSession::new(support, solver, refinement_limit, build, caches)
            .with_inputs_used(trace.inputs_used);
        for clause in trace.path.iter().take(flips) {
            this.push_clause(&trace.events, &clause.cond, clause.taken);
        }
        this
    }

    /// Pushes one taken clause: plans flip `depth()` (the flipped tie
    /// `¬tie` and the models it needs) and advances the shared prefix
    /// with the taken tie as a new session frame.
    ///
    /// `events` is the trace's regex-event table — append-only across
    /// pushes, and long enough for every event index `cond` references
    /// (the indices of earlier pushes must keep resolving to the same
    /// entries, or the builder's per-event model cache would lie).
    pub fn push_clause(&mut self, events: &[RegexEvent], cond: &SymExpr, taken: bool) {
        if self.retractable {
            self.snapshots.push(self.builder.clone());
        }
        // Fork the shared builder: its state is exactly a scratch
        // flip-k builder's after prefix clauses 0..k, so the flipped
        // tie allocates the same variables a scratch build would.
        let mut fork = self.builder.clone();
        let hits_before = fork.model_cache_hits;
        let misses_before = fork.model_cache_misses;
        let flipped = fork.bool_formula(events, cond, !taken);
        let mut plan = FlipPlan {
            assumption: vec![flipped],
            constraints: fork.sorted_constraints(),
            input_vars: fork.input_vars.clone(),
            infeasible: fork.infeasible,
            record_base: QueryRecord {
                modeled_regex: !fork.constraints.is_empty(),
                had_captures: fork
                    .constraints
                    .values()
                    .any(|c| c.captures.len() > 1 || c.regex.ast.has_backref()),
                model_cache_hits: fork.model_cache_hits - hits_before,
                model_cache_misses: fork.model_cache_misses - misses_before,
                ..QueryRecord::default()
            },
        };
        // Advance the shared prefix with the taken tie; its model
        // lookups are charged to this flip's record so the report's
        // totals still count every lookup of the trace.
        let shared_hits = self.builder.model_cache_hits;
        let shared_misses = self.builder.model_cache_misses;
        let taken_tie = self.builder.bool_formula(events, cond, taken);
        self.session.push(vec![taken_tie]);
        plan.record_base.model_cache_hits += self.builder.model_cache_hits - shared_hits;
        plan.record_base.model_cache_misses += self.builder.model_cache_misses - shared_misses;
        self.plans.push(plan);
    }

    /// Retracts the most recent clause: drops its flip plan, pops its
    /// session frame and rewinds the prefix builder to its pre-push
    /// snapshot. Returns `false` (and changes nothing) when no clause
    /// is pushed or the session was not built
    /// [`TraceFlipSession::retractable`].
    pub fn pop_clause(&mut self) -> bool {
        if !self.retractable || self.plans.is_empty() {
            return false;
        }
        self.plans.pop();
        self.session.pop();
        self.builder = self.snapshots.pop().expect("snapshot per pushed clause");
        true
    }

    /// Number of planned flips.
    pub fn flips(&self) -> usize {
        self.plans.len()
    }

    /// Current clause depth — the same number as
    /// [`TraceFlipSession::flips`], under the name wire sessions use.
    pub fn depth(&self) -> usize {
        self.plans.len()
    }

    /// Cumulative counters of the underlying [`SolveSession`]: queries
    /// assembled and prefix frames reused over the session lifetime.
    pub fn session_stats(&self) -> strsolve::SessionStats {
        self.session.session_stats()
    }

    /// Solves flip `k` against the shared prefix (frames `0..k` plus
    /// the flip's assumption). Verdicts, models and refinement counts
    /// are identical to [`solve_flip`] on the same trace and index.
    pub fn solve(&self, k: usize) -> FlipResult {
        let started = std::time::Instant::now();
        let plan = &self.plans[k];
        if plan.infeasible {
            return FlipResult {
                inputs: None,
                record: QueryRecord {
                    duration: started.elapsed(),
                    ..plan.record_base.clone()
                },
            };
        }

        let (outcome, refinements, limit_hit, solver_stats, replayed) = if self.support.refines() {
            let cegar = CegarSolver::new(self.session.solver().clone(), self.refinement_limit);
            let verdicts =
                (self.caches.verdicts.capacity() > 0).then_some(self.caches.verdicts.as_ref());
            let result = cegar.solve_incremental(
                &self.session,
                k,
                &plan.assumption,
                &plan.constraints,
                verdicts,
            );
            (
                result.outcome,
                result.stats.refinements,
                result.stats.limit_hit,
                result.stats.solver,
                result.stats.replayed,
            )
        } else {
            let mut assumption = plan.assumption.clone();
            assumption.extend(plan.constraints.iter().map(|c| c.formula.clone()));
            let (outcome, stats) = self.session.solve_at(k, &assumption);
            (outcome, 0, false, stats, false)
        };

        let inputs = extract_inputs(&outcome, &plan.input_vars, self.inputs_used);
        FlipResult {
            record: QueryRecord {
                duration: started.elapsed(),
                refinements,
                limit_hit,
                sat: inputs.is_some(),
                query_cache_hits: solver_stats.cache_hits,
                query_cache_misses: solver_stats.cache_misses,
                solver_nodes: solver_stats.nodes,
                dfa_states_built: solver_stats.dfa_states_built,
                states_after_minimize: solver_stats.states_after_minimize,
                length_prunes: solver_stats.length_prunes,
                dfa_cache_hits: solver_stats.dfa_cache_hits,
                prefix_reuse_hits: solver_stats.prefix_reuse_hits,
                verdict_replays: u64::from(replayed),
                ..plan.record_base.clone()
            },
            inputs,
        }
    }
}

/// Clone is cheap by design (constraints sit behind `Arc`): a
/// [`TraceFlipSession`] forks the shared prefix builder once per flip.
#[derive(Clone, Debug)]
struct QueryBuilder<'a> {
    pool: VarPool,
    input_vars: HashMap<usize, StrVar>,
    constraints: HashMap<usize, Arc<CapturingConstraint>>,
    polarity: HashMap<usize, bool>,
    build: BuildConfig,
    support: SupportLevel,
    caches: &'a DseCaches,
    model_cache_hits: u64,
    model_cache_misses: u64,
    infeasible: bool,
}

impl<'a> QueryBuilder<'a> {
    /// An empty builder. The regex-event table is *not* part of the
    /// builder's state — each translation call takes it as a parameter,
    /// so streamed sessions can grow the table between clauses.
    fn new(support: SupportLevel, build: BuildConfig, caches: &'a DseCaches) -> QueryBuilder<'a> {
        QueryBuilder {
            pool: VarPool::new(),
            input_vars: HashMap::new(),
            constraints: HashMap::new(),
            polarity: HashMap::new(),
            build,
            support,
            caches,
            model_cache_hits: 0,
            model_cache_misses: 0,
            infeasible: false,
        }
    }
    /// The built constraints in event order — the conjunct (and with it
    /// the solver search) order of the CEGAR problem; map iteration
    /// order would make verdicts vary run to run.
    fn sorted_constraints(&self) -> Vec<CapturingConstraint> {
        let mut events: Vec<usize> = self.constraints.keys().copied().collect();
        events.sort_unstable();
        events
            .into_iter()
            .map(|e| self.constraints[&e].as_ref().clone())
            .collect()
    }

    fn input_var(&mut self, k: usize) -> StrVar {
        if let Some(&v) = self.input_vars.get(&k) {
            return v;
        }
        let v = self.pool.fresh_str(format!("input{k}"));
        self.input_vars.insert(k, v);
        v
    }

    /// The Algorithm 2 constraint for a regex event, built on demand
    /// with the polarity the query requires.
    fn event_constraint(
        &mut self,
        events: &[RegexEvent],
        event: usize,
        positive: bool,
    ) -> Option<Formula> {
        if let Some(&p) = self.polarity.get(&event) {
            if p != positive {
                // The same event is required to both match and not match:
                // infeasible query.
                self.infeasible = true;
                return None;
            }
            return Some(Formula::top());
        }
        self.polarity.insert(event, positive);
        let info = &events[event];
        let (constraint, cache_hit) = self.caches.model.get_or_build(
            &info.regex,
            positive,
            self.support,
            &mut self.pool,
            &self.build,
        );
        if cache_hit {
            self.model_cache_hits += 1;
        } else {
            self.model_cache_misses += 1;
        }
        // Tie the model's input variable to the subject expression.
        let subject_terms = self.string_terms(events, &info.subject.clone());
        let tie = match subject_terms {
            Some((terms, guards)) => Formula::and(
                guards
                    .into_iter()
                    .chain(std::iter::once(Formula::eq_concat(constraint.input, terms)))
                    .collect(),
            ),
            None => Formula::top(),
        };
        let formula = tie;
        self.constraints.insert(event, Arc::new(constraint));
        Some(formula)
    }

    /// Translates a string-sorted expression into concatenation terms
    /// plus definedness guards for any captures involved.
    fn string_terms(
        &mut self,
        events: &[RegexEvent],
        e: &SymExpr,
    ) -> Option<(Vec<Term>, Vec<Formula>)> {
        match e {
            SymExpr::Input(k) => Some((vec![Term::Var(self.input_var(*k))], vec![])),
            SymExpr::StrLit(s) => Some((vec![Term::Lit(s.clone())], vec![])),
            SymExpr::Concat(items) => {
                let mut terms = Vec::new();
                let mut guards = Vec::new();
                for item in items {
                    let (t, g) = self.string_terms(events, item)?;
                    terms.extend(t);
                    guards.extend(g);
                }
                Some((terms, guards))
            }
            SymExpr::Capture { event, index } => {
                // Referencing a capture requires the event to have
                // matched positively.
                let event_formula = self.event_constraint(events, *event, true)?;
                let constraint = self.constraints.get(event)?;
                let cap = *constraint.captures.get(*index)?;
                Some((
                    vec![Term::Var(cap.value)],
                    vec![event_formula, Formula::bool_is(cap.defined, true)],
                ))
            }
            _ => None,
        }
    }

    /// Translates a boolean-sorted expression, asserted to equal
    /// `expected`.
    fn bool_formula(&mut self, events: &[RegexEvent], e: &SymExpr, expected: bool) -> Formula {
        match e {
            SymExpr::BoolLit(b) => {
                if *b == expected {
                    Formula::top()
                } else {
                    Formula::bottom()
                }
            }
            SymExpr::Not(inner) => self.bool_formula(events, inner, !expected),
            SymExpr::And(a, b) => {
                if expected {
                    Formula::and(vec![
                        self.bool_formula(events, a, true),
                        self.bool_formula(events, b, true),
                    ])
                } else {
                    Formula::or(vec![
                        self.bool_formula(events, a, false),
                        self.bool_formula(events, b, false),
                    ])
                }
            }
            SymExpr::Or(a, b) => {
                if expected {
                    Formula::or(vec![
                        self.bool_formula(events, a, true),
                        self.bool_formula(events, b, true),
                    ])
                } else {
                    Formula::and(vec![
                        self.bool_formula(events, a, false),
                        self.bool_formula(events, b, false),
                    ])
                }
            }
            SymExpr::StrEq(a, b) => {
                let Some((ta, ga)) = self.string_terms(events, a) else {
                    return Formula::top();
                };
                let Some((tb, gb)) = self.string_terms(events, b) else {
                    return Formula::top();
                };
                let v = self.pool.fresh_str("eq");
                let core = Formula::and(vec![
                    Formula::eq_concat(v, ta.clone()),
                    Formula::eq_concat(v, tb.clone()),
                ]);
                if expected {
                    Formula::and(
                        ga.into_iter()
                            .chain(gb)
                            .chain(std::iter::once(core))
                            .collect(),
                    )
                } else {
                    // Inequality: either a guard fails (e.g. an
                    // undefined capture) or the values differ.
                    let va = self.pool.fresh_str("ne.lhs");
                    let vb = self.pool.fresh_str("ne.rhs");
                    let differ = Formula::and(vec![
                        Formula::eq_concat(va, ta),
                        Formula::eq_concat(vb, tb),
                        Formula::ne_var(va, vb),
                    ]);
                    let mut branches: Vec<Formula> =
                        ga.into_iter().chain(gb).map(|g| nnf_negate(&g)).collect();
                    branches.push(differ);
                    Formula::or(branches)
                }
            }
            SymExpr::TestResult { event } => {
                match self.event_constraint(events, *event, expected) {
                    Some(f) => f,
                    None => Formula::bottom(),
                }
            }
            SymExpr::CaptureDefined { event, index } => {
                let Some(f) = self.event_constraint(events, *event, true) else {
                    return Formula::bottom();
                };
                let Some(constraint) = self.constraints.get(event) else {
                    return Formula::bottom();
                };
                match constraint.captures.get(*index) {
                    Some(cap) => Formula::and(vec![f, Formula::bool_is(cap.defined, expected)]),
                    None => Formula::bottom(),
                }
            }
            // String-sorted expressions in boolean position: truthiness
            // = non-emptiness.
            s if s.is_string() => {
                let Some((terms, guards)) = self.string_terms(events, s) else {
                    return Formula::top();
                };
                let v = self.pool.fresh_str("truthy");
                let def = Formula::eq_concat(v, terms);
                if expected {
                    Formula::and(
                        guards
                            .into_iter()
                            .chain([def, Formula::ne_lit(v, "")])
                            .collect(),
                    )
                } else {
                    Formula::and(
                        guards
                            .into_iter()
                            .chain([def, Formula::eq_lit(v, "")])
                            .collect(),
                    )
                }
            }
            _ => Formula::top(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{execute, Harness, InterpConfig};
    use crate::parser::parse_program;

    fn flip_last(src: &str, inputs: &[&str]) -> FlipResult {
        let program = parse_program(src).expect("parse");
        let inputs: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
        let trace = execute(
            &program,
            &Harness::strings("f", 1),
            &inputs,
            &InterpConfig::default(),
        );
        assert!(!trace.path.is_empty(), "expected a symbolic path");
        solve_flip(
            &trace,
            trace.path.len() - 1,
            SupportLevel::Refinement,
            &Solver::default(),
            20,
            &BuildConfig::default(),
            &DseCaches::disabled(),
        )
    }

    #[test]
    fn flip_string_equality() {
        let result = flip_last(
            r#"function f(x) { if (x === "secret") { return 1; } return 0; }"#,
            &["nope"],
        );
        let inputs = result.inputs.expect("sat");
        assert_eq!(inputs[0], "secret");
    }

    #[test]
    fn flip_regex_test_to_match() {
        let result = flip_last(
            r#"function f(x) { let ok = /^go+d$/.test(x); return ok; }"#,
            &["nope"],
        );
        let inputs = result.inputs.expect("sat");
        let mut oracle = es6_matcher::RegExp::new("^go+d$", "").expect("regex");
        assert!(oracle.test(&inputs[0]), "flipped input {:?}", inputs[0]);
        assert!(result.record.modeled_regex);
    }

    #[test]
    fn flip_capture_comparison() {
        // Drive execution into the m[1] === "timeout" comparison, then
        // flip it: the solver must produce "<timeout>".
        let src = r#"function f(x) {
            let m = /^<([a-z]+)>$/.exec(x);
            if (m) { if (m[1] === "timeout") { return 1; } }
            return 0;
        }"#;
        let result = flip_last(src, &["<div>"]);
        let inputs = result.inputs.expect("sat");
        assert_eq!(inputs[0], "<timeout>");
        assert!(result.record.had_captures);
    }

    #[test]
    fn flip_concat_equality() {
        let result = flip_last(
            r#"function f(x) { let s = "a" + x; if (s === "ab") { return 1; } return 0; }"#,
            &["zz"],
        );
        let inputs = result.inputs.expect("sat");
        assert_eq!(inputs[0], "b");
    }

    #[test]
    fn infeasible_flip_is_unsat() {
        // Flip of `x === x-same-literal` prefix conflict: prefix pins x
        // to "a", flip demands x !== "a" — the same clause twice makes
        // the flipped query unsatisfiable.
        let src = r#"function f(x) {
            if (x === "a") { if (x === "a") { return 1; } }
            return 0;
        }"#;
        let program = parse_program(src).expect("parse");
        let trace = execute(
            &program,
            &Harness::strings("f", 1),
            &["a".to_string()],
            &InterpConfig::default(),
        );
        assert_eq!(trace.path.len(), 2);
        let result = solve_flip(
            &trace,
            1,
            SupportLevel::Refinement,
            &Solver::default(),
            20,
            &BuildConfig::default(),
            &DseCaches::disabled(),
        );
        assert!(result.inputs.is_none());
    }

    #[test]
    fn cached_and_uncached_flip_agree() {
        // The same flip solved through warm caches and with caches
        // disabled must produce the same verdict and inputs.
        let src = r#"function f(x) { let ok = /^go+d$/.test(x); return ok; }"#;
        let program = parse_program(src).expect("parse");
        let trace = execute(
            &program,
            &Harness::strings("f", 1),
            &["nope".to_string()],
            &InterpConfig::default(),
        );
        let k = trace.path.len() - 1;
        let uncached = solve_flip(
            &trace,
            k,
            SupportLevel::Refinement,
            &Solver::default(),
            20,
            &BuildConfig::default(),
            &DseCaches::disabled(),
        );
        let caches = DseCaches::new(64, 64);
        let solver = Solver::default().with_cache(caches.query.clone());
        // Twice: the second run exercises the hit paths of both caches.
        let cold = solve_flip(
            &trace,
            k,
            SupportLevel::Refinement,
            &solver,
            20,
            &BuildConfig::default(),
            &caches,
        );
        let warm = solve_flip(
            &trace,
            k,
            SupportLevel::Refinement,
            &solver,
            20,
            &BuildConfig::default(),
            &caches,
        );
        assert_eq!(uncached.inputs, cold.inputs);
        assert_eq!(uncached.inputs, warm.inputs);
        assert_eq!(cold.record.model_cache_hits, 0);
        assert!(warm.record.model_cache_hits >= 1);
        assert!(warm.record.query_cache_hits >= 1);
    }
}

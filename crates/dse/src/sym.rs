//! Symbolic expressions and path conditions.
//!
//! Symbolic strings are expressions over the test inputs; symbolic
//! booleans arise from string comparisons and from regex operations.
//! A regex operation on a symbolic string records a [`RegexEvent`]
//! — the capturing-language membership of §3.2 — and its result and
//! capture accesses are referenced symbolically by event index.

use regex_syntax_es6::Regex;

use crate::ast::StmtId;

/// A symbolic expression (string- or boolean-sorted).
#[derive(Debug, Clone, PartialEq)]
pub enum SymExpr {
    /// The `k`-th symbolic input string.
    Input(usize),
    /// A string literal.
    StrLit(String),
    /// String concatenation.
    Concat(Vec<SymExpr>),
    /// The value of capture group `index` of regex event `event`
    /// (string-sorted; meaningful when the capture is defined).
    Capture {
        /// Index into the trace's event list.
        event: usize,
        /// Capture group number (0 = whole match).
        index: usize,
    },
    /// A boolean literal.
    BoolLit(bool),
    /// Strict string equality.
    StrEq(Box<SymExpr>, Box<SymExpr>),
    /// Logical negation.
    Not(Box<SymExpr>),
    /// Conjunction.
    And(Box<SymExpr>, Box<SymExpr>),
    /// Disjunction.
    Or(Box<SymExpr>, Box<SymExpr>),
    /// Whether regex event `event` matched (boolean-sorted).
    TestResult {
        /// Index into the trace's event list.
        event: usize,
    },
    /// Whether capture `index` of event `event` is defined.
    CaptureDefined {
        /// Index into the trace's event list.
        event: usize,
        /// Capture group number.
        index: usize,
    },
}

impl SymExpr {
    /// True for string-sorted expressions.
    pub fn is_string(&self) -> bool {
        matches!(
            self,
            SymExpr::Input(_) | SymExpr::StrLit(_) | SymExpr::Concat(_) | SymExpr::Capture { .. }
        )
    }

    /// Builds a concatenation, flattening nested ones.
    pub fn concat(parts: Vec<SymExpr>) -> SymExpr {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                SymExpr::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("one item")
        } else {
            SymExpr::Concat(flat)
        }
    }

    /// The regex events referenced by this expression.
    pub fn referenced_events(&self, out: &mut Vec<usize>) {
        match self {
            SymExpr::Capture { event, .. }
            | SymExpr::TestResult { event }
            | SymExpr::CaptureDefined { event, .. } => out.push(*event),
            SymExpr::Concat(items) => {
                for item in items {
                    item.referenced_events(out);
                }
            }
            SymExpr::StrEq(a, b) | SymExpr::And(a, b) | SymExpr::Or(a, b) => {
                a.referenced_events(out);
                b.referenced_events(out);
            }
            SymExpr::Not(inner) => inner.referenced_events(out),
            _ => {}
        }
    }
}

/// A regex operation recorded during concolic execution: the paper's
/// `(w, C₀, …, Cₙ) ⊡ Lc(R)` constraint source (§3.2).
#[derive(Debug, Clone)]
pub struct RegexEvent {
    /// The regex that was applied.
    pub regex: Regex,
    /// The symbolic subject string.
    pub subject: SymExpr,
    /// Concrete outcome of this execution.
    pub matched: bool,
    /// Concrete capture values of this execution (empty if no match).
    pub concrete_captures: Vec<Option<String>>,
}

/// One clause of the path condition.
#[derive(Debug, Clone)]
pub struct Clause {
    /// The branch condition (boolean-sorted symbolic expression).
    pub cond: SymExpr,
    /// The direction taken concretely.
    pub taken: bool,
    /// The statement at which the branch occurred (CUPA bucket key).
    pub branch_id: StmtId,
}

/// The full result of one concolic execution.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Statements covered.
    pub coverage: std::collections::HashSet<StmtId>,
    /// Path condition clauses in execution order.
    pub path: Vec<Clause>,
    /// Regex events (indexed by `SymExpr::{Capture, TestResult, …}`).
    pub events: Vec<RegexEvent>,
    /// Statements whose `assert` failed (bugs found).
    pub assertion_failures: Vec<StmtId>,
    /// Interpreter steps executed.
    pub steps: u64,
    /// Number of symbolic inputs consumed.
    pub inputs_used: usize,
    /// Concrete regex executions routed to the Pike-VM fast path.
    pub matcher_fast_path: u64,
    /// Concrete regex executions that ran on the backtracking engine.
    pub matcher_fallback: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_flattens() {
        let e = SymExpr::concat(vec![
            SymExpr::StrLit("a".into()),
            SymExpr::Concat(vec![SymExpr::Input(0), SymExpr::StrLit("b".into())]),
        ]);
        match e {
            SymExpr::Concat(items) => assert_eq!(items.len(), 3),
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn referenced_events_found() {
        let e = SymExpr::StrEq(
            Box::new(SymExpr::Capture { event: 2, index: 1 }),
            Box::new(SymExpr::StrLit("x".into())),
        );
        let mut events = Vec::new();
        e.referenced_events(&mut events);
        assert_eq!(events, vec![2]);
    }

    #[test]
    fn sorts() {
        assert!(SymExpr::Input(0).is_string());
        assert!(!SymExpr::BoolLit(true).is_string());
    }
}

//! Coverage-frontier scheduling for the exploration orchestrator: a
//! global branch-coverage map plus the seed selector that drives the
//! loop toward unflipped branches.
//!
//! The map tracks which `(branch id, direction)` pairs any executed
//! trace has witnessed. A pending seed's *frontier score* is the number
//! of directions in its (predicted) trail the map has not seen yet;
//! the scheduler always picks the highest-scoring seed, breaking ties
//! toward the oldest id, so seeds whose remaining flips are all covered
//! are demoted behind any seed still promising new coverage. Selection
//! reads only the store and the map — both worker-count-invariant —
//! so the schedule is byte-identical for any flip worker count.

use std::collections::HashSet;

use crate::ast::StmtId;
use crate::store::CorpusStore;

/// Set of covered `(branch id, direction)` pairs — the global branch
/// coverage the frontier scheduler steers by.
///
/// Branch ids are *sparse*: regex membership clauses number down from
/// `u32::MAX` (one id per match event), so a dense bitmap indexed by
/// branch id would allocate gigabytes. A hash set costs a few dozen
/// bytes per covered direction instead and nothing for the gaps.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    directions: HashSet<u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    fn key(branch: StmtId, taken: bool) -> u64 {
        u64::from(branch) * 2 + u64::from(taken)
    }

    /// Whether the direction has been covered.
    pub fn covers(&self, branch: StmtId, taken: bool) -> bool {
        self.directions.contains(&CoverageMap::key(branch, taken))
    }

    /// Marks a direction covered; returns `true` when it was new.
    pub fn insert(&mut self, branch: StmtId, taken: bool) -> bool {
        self.directions.insert(CoverageMap::key(branch, taken))
    }

    /// Number of covered `(branch, direction)` pairs.
    pub fn covered_directions(&self) -> usize {
        self.directions.len()
    }
}

/// The pending-seed queue: corpus entries not yet executed, picked by
/// frontier score (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct FrontierScheduler {
    pending: Vec<u64>,
}

impl FrontierScheduler {
    /// An empty scheduler.
    pub fn new() -> FrontierScheduler {
        FrontierScheduler::default()
    }

    /// Queues a corpus entry for execution.
    pub fn push(&mut self, id: u64) {
        self.pending.push(id);
    }

    /// Number of seeds awaiting execution.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Whether no seed awaits execution (the frontier is exhausted).
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Frontier score of one entry: trail directions not yet covered.
    fn score(store: &CorpusStore, coverage: &CoverageMap, id: u64) -> usize {
        store
            .get(id)
            .trail
            .iter()
            .filter(|&&(branch, taken)| !coverage.covers(branch, taken))
            .count()
    }

    /// Removes and returns the best pending seed: maximum frontier
    /// score, ties broken toward the lowest id (insertion order).
    /// Returns `None` when the frontier is exhausted.
    pub fn pick(&mut self, store: &CorpusStore, coverage: &CoverageMap) -> Option<u64> {
        let (slot, _) = self
            .pending
            .iter()
            .enumerate()
            .map(|(slot, &id)| (slot, (FrontierScheduler::score(store, coverage, id), id)))
            // max_by_key keeps the *last* max; order so the winner is
            // the highest score with the lowest id.
            .max_by_key(|&(_, (score, id))| (score, std::cmp::Reverse(id)))?;
        Some(self.pending.remove(slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_map_counts_directions_once() {
        let mut map = CoverageMap::new();
        assert!(!map.covers(7, true));
        assert!(map.insert(7, true));
        assert!(!map.insert(7, true), "second insert is not new");
        assert!(map.insert(7, false));
        // Regex membership clauses number down from u32::MAX; the map
        // must stay cheap for ids anywhere in the range.
        assert!(map.insert(u32::MAX, true), "sparse ids cost nothing");
        assert_eq!(map.covered_directions(), 3);
        assert!(map.covers(u32::MAX, true));
        assert!(!map.covers(u32::MAX, false));
    }

    #[test]
    fn frontier_prefers_uncovered_trails_then_oldest() {
        let mut store = CorpusStore::new();
        let mut coverage = CoverageMap::new();
        let mut frontier = FrontierScheduler::new();
        // Entry 0: fully covered trail. Entry 1: one new direction.
        // Entry 2: same score as 1 but younger.
        coverage.insert(1, true);
        let a = store
            .insert(vec!["a".into()], vec![(1, true)], None)
            .unwrap();
        let b = store
            .insert(vec!["b".into()], vec![(1, true), (2, false)], None)
            .unwrap();
        let c = store
            .insert(vec!["c".into()], vec![(1, true), (3, true)], None)
            .unwrap();
        frontier.push(a);
        frontier.push(b);
        frontier.push(c);
        assert_eq!(frontier.pick(&store, &coverage), Some(b), "ties → oldest");
        coverage.insert(2, false);
        assert_eq!(frontier.pick(&store, &coverage), Some(c));
        assert_eq!(
            frontier.pick(&store, &coverage),
            Some(a),
            "demoted seeds still run last"
        );
        assert_eq!(frontier.pick(&store, &coverage), None);
    }
}

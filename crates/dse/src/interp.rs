//! The concolic interpreter.
//!
//! Executes a mini-JS program with concrete inputs while building the
//! symbolic trace: branch clauses on symbolic conditions, and
//! [`RegexEvent`]s for `test`/`exec`/`match`/`search`/`split`/`replace`
//! calls on symbolic strings (§3.2 of the paper). The
//! [`SupportLevel`] selects how much of the regex API is modeled —
//! the four configurations of Table 7.

use std::collections::HashMap;
use std::rc::Rc;

use expose_core::SupportLevel;
use regex_syntax_es6::Regex;

use crate::ast::{BinOp, Expr, Function, Program, Stmt, Target, UnOp};
use crate::sym::{Clause, RegexEvent, SymExpr, Trace};
use crate::value::{Concolic, Value};

/// Limits and configuration for one execution.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Regex support level (Table 7 configurations).
    pub support: SupportLevel,
    /// Interpreter step budget (guards against symbolic-input-driven
    /// infinite loops).
    pub max_steps: u64,
}

impl Default for InterpConfig {
    fn default() -> InterpConfig {
        InterpConfig {
            support: SupportLevel::Refinement,
            max_steps: 200_000,
        }
    }
}

/// How the entry function's arguments are constructed.
#[derive(Debug, Clone)]
pub enum ArgSpec {
    /// One symbolic string.
    SymbolicString,
    /// An array of `n` symbolic strings.
    SymbolicStringArray(usize),
    /// A concrete value (string).
    ConcreteString(String),
}

/// The harness: which function to call and with what arguments.
///
/// Mirrors the paper's automated library harness (§7.3), which calls
/// exported methods with symbolic arguments.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Entry function name; `None` runs only the top level.
    pub entry: Option<String>,
    /// Argument specs for the entry function.
    pub args: Vec<ArgSpec>,
}

impl Harness {
    /// Calls `name` with `n` symbolic strings.
    pub fn strings(name: &str, n: usize) -> Harness {
        Harness {
            entry: Some(name.to_string()),
            args: vec![ArgSpec::SymbolicString; n],
        }
    }

    /// Calls `name` with one array of `n` symbolic strings.
    pub fn string_array(name: &str, n: usize) -> Harness {
        Harness {
            entry: Some(name.to_string()),
            args: vec![ArgSpec::SymbolicStringArray(n)],
        }
    }

    /// Number of symbolic inputs this harness consumes.
    pub fn input_count(&self) -> usize {
        self.args
            .iter()
            .map(|a| match a {
                ArgSpec::SymbolicString => 1,
                ArgSpec::SymbolicStringArray(n) => *n,
                ArgSpec::ConcreteString(_) => 0,
            })
            .sum()
    }
}

/// Executes `program` under `harness` with the given concrete values
/// for the symbolic inputs (missing inputs default to `""`).
pub fn execute(
    program: &Program,
    harness: &Harness,
    inputs: &[String],
    config: &InterpConfig,
) -> Trace {
    let mut interp = Interp {
        config: config.clone(),
        globals: HashMap::new(),
        functions: HashMap::new(),
        trace: Trace::default(),
        inputs: inputs.to_vec(),
        next_input: 0,
        steps_left: config.max_steps,
        aborted: false,
    };
    // Top level: define functions, run statements.
    let mut scope = new_scope();
    for stmt in &program.body {
        if interp.exec_stmt(stmt, &mut scope).is_break() {
            break;
        }
    }
    // Harness call.
    if let Some(entry) = &harness.entry {
        if let Some(func) = interp.functions.get(entry).cloned() {
            let mut args = Vec::new();
            for spec in &harness.args {
                args.push(interp.make_arg(spec));
            }
            interp.call_function(&func, args);
        }
    }
    interp.trace.inputs_used = interp.next_input;
    interp.trace.steps = config.max_steps - interp.steps_left;
    interp.trace
}

type Scope = Vec<HashMap<String, Concolic>>;

fn new_scope() -> Scope {
    vec![HashMap::new()]
}

trait ScopeExt {
    fn lookup(&self, name: &str) -> Option<Concolic>;
    fn assign(&mut self, name: &str, value: Concolic) -> bool;
    fn declare(&mut self, name: &str, value: Concolic);
}

impl ScopeExt for Scope {
    fn lookup(&self, name: &str) -> Option<Concolic> {
        self.iter().rev().find_map(|frame| frame.get(name).cloned())
    }

    fn assign(&mut self, name: &str, value: Concolic) -> bool {
        for frame in self.iter_mut().rev() {
            if let Some(slot) = frame.get_mut(name) {
                *slot = value;
                return true;
            }
        }
        false
    }

    fn declare(&mut self, name: &str, value: Concolic) {
        self.last_mut()
            .expect("nonempty scope")
            .insert(name.to_string(), value);
    }
}

enum Control {
    Normal,
    Return(Concolic),
    Abort,
}

impl Control {
    fn is_break(&self) -> bool {
        !matches!(self, Control::Normal)
    }
}

struct Interp {
    config: InterpConfig,
    globals: HashMap<String, Concolic>,
    functions: HashMap<String, Rc<Function>>,
    trace: Trace,
    inputs: Vec<String>,
    next_input: usize,
    steps_left: u64,
    aborted: bool,
}

impl Interp {
    fn make_arg(&mut self, spec: &ArgSpec) -> Concolic {
        match spec {
            ArgSpec::SymbolicString => self.fresh_input(),
            ArgSpec::SymbolicStringArray(n) => {
                let items = (0..*n).map(|_| self.fresh_input()).collect();
                Concolic::concrete(Value::Array(items))
            }
            ArgSpec::ConcreteString(s) => Concolic::concrete(Value::Str(s.clone())),
        }
    }

    fn fresh_input(&mut self) -> Concolic {
        let k = self.next_input;
        self.next_input += 1;
        let concrete = self.inputs.get(k).cloned().unwrap_or_default();
        Concolic::symbolic(Value::Str(concrete), SymExpr::Input(k))
    }

    /// Records which match engine a concrete regex execution used (the
    /// routing is decided per pattern by `es6_matcher::select`).
    fn note_engine(&mut self, re: &es6_matcher::RegExp) {
        match re.engine_kind() {
            es6_matcher::EngineKind::PikeVm => self.trace.matcher_fast_path += 1,
            es6_matcher::EngineKind::Backtrack => self.trace.matcher_fallback += 1,
        }
    }

    fn tick(&mut self) -> bool {
        if self.steps_left == 0 || self.aborted {
            self.aborted = true;
            return false;
        }
        self.steps_left -= 1;
        true
    }

    fn call_function(&mut self, func: &Rc<Function>, args: Vec<Concolic>) -> Concolic {
        let mut scope = new_scope();
        for (i, param) in func.params.iter().enumerate() {
            let value = args
                .get(i)
                .cloned()
                .unwrap_or_else(|| Concolic::concrete(Value::Undefined));
            scope.declare(param, value);
        }
        for stmt in &func.body {
            match self.exec_stmt(stmt, &mut scope) {
                Control::Return(v) => return v,
                Control::Abort => break,
                Control::Normal => {}
            }
        }
        Concolic::concrete(Value::Undefined)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, scope: &mut Scope) -> Control {
        if !self.tick() {
            return Control::Abort;
        }
        self.trace.coverage.insert(stmt.id());
        match stmt {
            Stmt::Let { name, value, .. } => {
                let v = self.eval(value, scope);
                scope.declare(name, v);
                Control::Normal
            }
            Stmt::Assign { target, value, .. } => {
                let v = self.eval(value, scope);
                match target {
                    Target::Var(name) => {
                        if !scope.assign(name, v.clone()) {
                            self.globals.insert(name.clone(), v);
                        }
                    }
                    Target::Index(base, index) => {
                        let idx = self.eval(index, scope);
                        if let (Expr::Var(name), Value::Num(n)) = (base.as_ref(), &idx.value) {
                            let i = *n as usize;
                            if let Some(mut arr) = scope.lookup(name) {
                                if let Value::Array(items) = &mut arr.value {
                                    if i < items.len() {
                                        items[i] = v;
                                    } else {
                                        while items.len() < i {
                                            items.push(Concolic::concrete(Value::Undefined));
                                        }
                                        items.push(v);
                                    }
                                }
                                scope.assign(name, arr);
                            }
                        }
                    }
                }
                Control::Normal
            }
            Stmt::If {
                id,
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, scope);
                let taken = c.value.truthy();
                self.record_branch(*id, &c, taken);
                let body = if taken { then_body } else { else_body };
                scope.push(HashMap::new());
                let mut result = Control::Normal;
                for s in body {
                    let r = self.exec_stmt(s, scope);
                    if r.is_break() {
                        result = r;
                        break;
                    }
                }
                scope.pop();
                result
            }
            Stmt::While { id, cond, body } => {
                loop {
                    if !self.tick() {
                        return Control::Abort;
                    }
                    let c = self.eval(cond, scope);
                    let taken = c.value.truthy();
                    self.record_branch(*id, &c, taken);
                    if !taken {
                        break;
                    }
                    scope.push(HashMap::new());
                    let mut broke = None;
                    for s in body {
                        let r = self.exec_stmt(s, scope);
                        if r.is_break() {
                            broke = Some(r);
                            break;
                        }
                    }
                    scope.pop();
                    if let Some(r) = broke {
                        return r;
                    }
                }
                Control::Normal
            }
            Stmt::FunctionDecl { func, .. } => {
                self.functions
                    .insert(func.name.clone(), Rc::new(func.clone()));
                Control::Normal
            }
            Stmt::Return { value, .. } => {
                let v = value
                    .as_ref()
                    .map(|e| self.eval(e, scope))
                    .unwrap_or_else(|| Concolic::concrete(Value::Undefined));
                Control::Return(v)
            }
            Stmt::Assert { id, cond } => {
                let c = self.eval(cond, scope);
                let ok = c.value.truthy();
                self.record_branch(*id, &c, ok);
                if !ok {
                    self.trace.assertion_failures.push(*id);
                    return Control::Abort;
                }
                Control::Normal
            }
            Stmt::ExprStmt { expr, .. } => {
                self.eval(expr, scope);
                Control::Normal
            }
        }
    }

    /// Records a path-condition clause when the condition is symbolic.
    fn record_branch(&mut self, id: u32, cond: &Concolic, taken: bool) {
        if let Some(sym) = &cond.sym {
            self.trace.path.push(Clause {
                cond: sym.clone(),
                taken,
                branch_id: id,
            });
        }
    }

    fn eval(&mut self, expr: &Expr, scope: &mut Scope) -> Concolic {
        if !self.tick() {
            return Concolic::concrete(Value::Undefined);
        }
        match expr {
            Expr::Undefined => Concolic::concrete(Value::Undefined),
            Expr::Null => Concolic::concrete(Value::Null),
            Expr::Bool(b) => Concolic::concrete(Value::Bool(*b)),
            Expr::Num(n) => Concolic::concrete(Value::Num(*n)),
            Expr::Str(s) => Concolic::concrete(Value::Str(s.clone())),
            Expr::Regex(r) => Concolic::concrete(Value::RegExp(Rc::new(r.clone()))),
            Expr::Array(items) => {
                let values = items.iter().map(|e| self.eval(e, scope)).collect();
                Concolic::concrete(Value::Array(values))
            }
            Expr::Var(name) => scope
                .lookup(name)
                .or_else(|| self.globals.get(name).cloned())
                .unwrap_or_else(|| Concolic::concrete(Value::Undefined)),
            Expr::Index(base, index) => {
                let b = self.eval(base, scope);
                let i = self.eval(index, scope);
                match (&b.value, &i.value) {
                    (Value::Array(items), Value::Num(n)) => items
                        .get(*n as usize)
                        .cloned()
                        .unwrap_or_else(|| Concolic::concrete(Value::Undefined)),
                    (Value::Str(s), Value::Num(n)) => {
                        let c = s.chars().nth(*n as usize);
                        Concolic::concrete(match c {
                            Some(c) => Value::Str(c.to_string()),
                            None => Value::Undefined,
                        })
                    }
                    _ => Concolic::concrete(Value::Undefined),
                }
            }
            Expr::Member(base, name) => {
                let b = self.eval(base, scope);
                match (name.as_str(), &b.value) {
                    ("length", Value::Str(s)) => {
                        Concolic::concrete(Value::Num(s.chars().count() as f64))
                    }
                    ("length", Value::Array(items)) => {
                        Concolic::concrete(Value::Num(items.len() as f64))
                    }
                    _ => Concolic::concrete(Value::Undefined),
                }
            }
            Expr::Unary(op, inner) => {
                let v = self.eval(inner, scope);
                self.eval_unary(*op, v)
            }
            Expr::Binary(op, lhs, rhs) => self.eval_binary(*op, lhs, rhs, scope),
            Expr::Call(name, args) => {
                let argv: Vec<Concolic> = args.iter().map(|a| self.eval(a, scope)).collect();
                match self.functions.get(name).cloned() {
                    Some(func) => self.call_function(&func, argv),
                    None => Concolic::concrete(Value::Undefined),
                }
            }
            Expr::MethodCall(recv, name, args) => {
                let r = self.eval(recv, scope);
                let argv: Vec<Concolic> = args.iter().map(|a| self.eval(a, scope)).collect();
                self.eval_method(r, name, argv)
            }
        }
    }

    fn eval_unary(&mut self, op: UnOp, v: Concolic) -> Concolic {
        match op {
            UnOp::Not => {
                let result = !v.value.truthy();
                let sym = v.sym.map(|s| SymExpr::Not(Box::new(s)));
                Concolic {
                    value: Value::Bool(result),
                    sym,
                }
            }
            UnOp::Neg => match v.value {
                Value::Num(n) => Concolic::concrete(Value::Num(-n)),
                _ => Concolic::concrete(Value::Num(f64::NAN)),
            },
            UnOp::TypeOf => Concolic::concrete(Value::Str(v.value.type_of().into())),
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, scope: &mut Scope) -> Concolic {
        // Short-circuit operators evaluate lazily.
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = self.eval(lhs, scope);
            let lt = l.value.truthy();
            if (op == BinOp::And && !lt) || (op == BinOp::Or && lt) {
                return l;
            }
            let r = self.eval(rhs, scope);
            // Symbolic shadow combines both sides when available.
            let sym = match (&l.sym, &r.sym) {
                (Some(a), Some(b)) => Some(if op == BinOp::And {
                    SymExpr::And(Box::new(a.clone()), Box::new(b.clone()))
                } else {
                    SymExpr::Or(Box::new(a.clone()), Box::new(b.clone()))
                }),
                (None, Some(b)) => Some(b.clone()),
                _ => None,
            };
            return Concolic {
                value: r.value,
                sym,
            };
        }

        let l = self.eval(lhs, scope);
        let r = self.eval(rhs, scope);
        match op {
            BinOp::Add => match (&l.value, &r.value) {
                (Value::Num(a), Value::Num(b)) => Concolic::concrete(Value::Num(a + b)),
                _ => {
                    // String concatenation (JS coerces).
                    let result = format!("{}{}", l.value.to_display(), r.value.to_display());
                    let sym = match (string_sym(&l), string_sym(&r)) {
                        (Some(a), Some(b)) => Some(SymExpr::concat(vec![a, b])),
                        _ => None,
                    };
                    Concolic {
                        value: Value::Str(result),
                        sym,
                    }
                }
            },
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let (a, b) = (to_num(&l.value), to_num(&r.value));
                let n = match op {
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Mod => a % b,
                    _ => unreachable!(),
                };
                Concolic::concrete(Value::Num(n))
            }
            BinOp::StrictEq | BinOp::StrictNe => {
                let eq = l.value.strict_eq(&r.value);
                let result = if op == BinOp::StrictEq { eq } else { !eq };
                let sym = self.equality_sym(&l, &r).map(|s| {
                    if op == BinOp::StrictEq {
                        s
                    } else {
                        SymExpr::Not(Box::new(s))
                    }
                });
                Concolic {
                    value: Value::Bool(result),
                    sym,
                }
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let result = match (&l.value, &r.value) {
                    (Value::Str(a), Value::Str(b)) => match op {
                        BinOp::Lt => a < b,
                        BinOp::Le => a <= b,
                        BinOp::Gt => a > b,
                        _ => a >= b,
                    },
                    _ => {
                        let (a, b) = (to_num(&l.value), to_num(&r.value));
                        match op {
                            BinOp::Lt => a < b,
                            BinOp::Le => a <= b,
                            BinOp::Gt => a > b,
                            _ => a >= b,
                        }
                    }
                };
                // Order comparisons are concretized (documented
                // restriction of the mini engine).
                Concolic::concrete(Value::Bool(result))
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    /// Symbolic equality between two concolic values, when expressible.
    fn equality_sym(&self, l: &Concolic, r: &Concolic) -> Option<SymExpr> {
        // Equality on capture-definedness: `x === undefined`.
        if let (Some(SymExpr::Capture { event, index }), Value::Undefined) = (&l.sym, &r.value) {
            return Some(SymExpr::Not(Box::new(SymExpr::CaptureDefined {
                event: *event,
                index: *index,
            })));
        }
        if let (Value::Undefined, Some(SymExpr::Capture { event, index })) = (&l.value, &r.sym) {
            return Some(SymExpr::Not(Box::new(SymExpr::CaptureDefined {
                event: *event,
                index: *index,
            })));
        }
        let ls = string_sym(l)?;
        let rs = string_sym(r)?;
        // Only string/string comparisons are symbolic; require at least
        // one side to actually be symbolic.
        if l.sym.is_none() && r.sym.is_none() {
            return None;
        }
        if !matches!(l.value, Value::Str(_)) || !matches!(r.value, Value::Str(_)) {
            return None;
        }
        Some(SymExpr::StrEq(Box::new(ls), Box::new(rs)))
    }

    // --- Regex and string methods ----------------------------------------

    fn eval_method(&mut self, recv: Concolic, name: &str, args: Vec<Concolic>) -> Concolic {
        match (&recv.value, name) {
            (Value::RegExp(regex), "test") => {
                let subject = args
                    .first()
                    .cloned()
                    .unwrap_or_else(|| Concolic::concrete(Value::Str(String::new())));
                self.regex_exec(regex.clone(), subject, true)
            }
            (Value::RegExp(regex), "exec") => {
                let subject = args
                    .first()
                    .cloned()
                    .unwrap_or_else(|| Concolic::concrete(Value::Str(String::new())));
                self.regex_exec(regex.clone(), subject, false)
            }
            (Value::Str(_), "match") => {
                // s.match(re) without `g` behaves like re.exec(s).
                if let Some(Value::RegExp(regex)) = args.first().map(|a| a.value.clone()) {
                    if !regex.flags.global {
                        return self.regex_exec(regex, recv, false);
                    }
                    // Global match: concrete only.
                    let s = recv.as_str().unwrap_or_default();
                    let mut re = es6_matcher::RegExp::from_regex((*regex).clone());
                    self.note_engine(&re);
                    return match es6_matcher::string_match(s, &mut re) {
                        Some(all) => Concolic::concrete(Value::Array(
                            all.into_iter()
                                .map(|m| Concolic::concrete(Value::Str(m)))
                                .collect(),
                        )),
                        None => Concolic::concrete(Value::Null),
                    };
                }
                Concolic::concrete(Value::Null)
            }
            (Value::Str(s), "search") => {
                if let Some(Value::RegExp(regex)) = args.first().map(|a| a.value.clone()) {
                    let re = es6_matcher::RegExp::from_regex((*regex).clone());
                    self.note_engine(&re);
                    return Concolic::concrete(Value::Num(
                        es6_matcher::string_search(s, &re) as f64
                    ));
                }
                Concolic::concrete(Value::Num(-1.0))
            }
            (Value::Str(s), "split") => {
                if let Some(first) = args.first() {
                    let pieces: Vec<String> = match &first.value {
                        Value::RegExp(regex) => {
                            let re = es6_matcher::RegExp::from_regex((**regex).clone());
                            self.note_engine(&re);
                            es6_matcher::string_split(s, &re, None)
                        }
                        Value::Str(sep) => s.split(sep.as_str()).map(String::from).collect(),
                        _ => vec![s.clone()],
                    };
                    return Concolic::concrete(Value::Array(
                        pieces
                            .into_iter()
                            .map(|p| Concolic::concrete(Value::Str(p)))
                            .collect(),
                    ));
                }
                Concolic::concrete(Value::Undefined)
            }
            (Value::Str(s), "replace") => {
                let (Some(pat), Some(rep)) = (args.first(), args.get(1)) else {
                    return recv;
                };
                let rep_str = rep.value.to_display();
                let result = match &pat.value {
                    Value::RegExp(regex) => {
                        let mut re = es6_matcher::RegExp::from_regex((**regex).clone());
                        self.note_engine(&re);
                        es6_matcher::string_replace(s, &mut re, &rep_str)
                    }
                    Value::Str(needle) => s.replacen(needle.as_str(), &rep_str, 1),
                    _ => s.clone(),
                };
                Concolic::concrete(Value::Str(result))
            }
            (Value::Str(s), "toLowerCase") => Concolic::concrete(Value::Str(s.to_lowercase())),
            (Value::Str(s), "toUpperCase") => Concolic::concrete(Value::Str(s.to_uppercase())),
            (Value::Str(s), "trim") => Concolic::concrete(Value::Str(s.trim().into())),
            (Value::Str(s), "charAt") => {
                let i = args.first().map(|a| to_num(&a.value) as usize).unwrap_or(0);
                Concolic::concrete(Value::Str(
                    s.chars().nth(i).map(|c| c.to_string()).unwrap_or_default(),
                ))
            }
            (Value::Str(s), "indexOf") => {
                let needle = args
                    .first()
                    .map(|a| a.value.to_display())
                    .unwrap_or_default();
                let idx = s
                    .find(&needle)
                    .map(|byte| s[..byte].chars().count() as f64)
                    .unwrap_or(-1.0);
                Concolic::concrete(Value::Num(idx))
            }
            (Value::Str(s), "slice") | (Value::Str(s), "substring") => {
                let chars: Vec<char> = s.chars().collect();
                let start = args
                    .first()
                    .map(|a| to_num(&a.value) as usize)
                    .unwrap_or(0)
                    .min(chars.len());
                let end = args
                    .get(1)
                    .map(|a| (to_num(&a.value) as usize).min(chars.len()))
                    .unwrap_or(chars.len());
                let out: String = chars[start.min(end)..end].iter().collect();
                Concolic::concrete(Value::Str(out))
            }
            (Value::Str(s), "concat") => {
                let mut out = s.clone();
                let mut syms = vec![string_sym(&recv)];
                for a in &args {
                    out.push_str(&a.value.to_display());
                    syms.push(string_sym(a));
                }
                let sym = if syms.iter().all(Option::is_some) {
                    Some(SymExpr::concat(
                        syms.into_iter().map(|s| s.expect("checked")).collect(),
                    ))
                } else {
                    None
                };
                Concolic {
                    value: Value::Str(out),
                    sym,
                }
            }
            (Value::Array(items), "join") => {
                let sep = args
                    .first()
                    .map(|a| a.value.to_display())
                    .unwrap_or_else(|| ",".into());
                let joined = items
                    .iter()
                    .map(|c| c.value.to_display())
                    .collect::<Vec<_>>()
                    .join(&sep);
                Concolic::concrete(Value::Str(joined))
            }
            (Value::Array(items), "push") => {
                // Arrays are value-semantic in the mini language; push on
                // an rvalue has no effect, so return the new length only.
                Concolic::concrete(Value::Num(items.len() as f64 + 1.0))
            }
            _ => Concolic::concrete(Value::Undefined),
        }
    }

    /// The symbolic regex operation (§3.2): runs the concrete matcher,
    /// records a [`RegexEvent`] when the subject is symbolic, and
    /// returns the (concolic) result.
    fn regex_exec(&mut self, regex: Rc<Regex>, subject: Concolic, as_test: bool) -> Concolic {
        let concrete_subject = subject.value.to_display();
        let mut oracle = es6_matcher::RegExp::from_regex(oracle_regex(&regex));
        self.note_engine(&oracle);
        let result = oracle.exec(&concrete_subject);
        let matched = result.is_some();

        let symbolic = self.config.support.models_regex()
            && subject.sym.is_some()
            && subject.sym.as_ref().is_some_and(SymExpr::is_string);
        let event = if symbolic {
            let event_id = self.trace.events.len();
            self.trace.events.push(RegexEvent {
                regex: (*regex).clone(),
                subject: subject.sym.clone().expect("checked symbolic"),
                matched,
                concrete_captures: result
                    .as_ref()
                    .map(|m| m.captures.clone())
                    .unwrap_or_default(),
            });
            // The membership clause of §3.2 enters the path condition at
            // the call site.
            self.trace.path.push(Clause {
                cond: SymExpr::TestResult { event: event_id },
                taken: matched,
                branch_id: u32::MAX - event_id as u32,
            });
            Some(event_id)
        } else {
            None
        };

        if as_test {
            return Concolic {
                value: Value::Bool(matched),
                sym: event.map(|event| SymExpr::TestResult { event }),
            };
        }
        match result {
            None => Concolic {
                value: Value::Null,
                sym: event.map(|event| SymExpr::TestResult { event }),
            },
            Some(m) => {
                let model_captures = self.config.support.models_captures() && event.is_some();
                let items: Vec<Concolic> = m
                    .captures
                    .iter()
                    .enumerate()
                    .map(|(i, cap)| {
                        let value = match cap {
                            Some(s) => Value::Str(s.clone()),
                            None => Value::Undefined,
                        };
                        let sym = if model_captures {
                            Some(SymExpr::Capture {
                                event: event.expect("checked"),
                                index: i,
                            })
                        } else {
                            None
                        };
                        Concolic { value, sym }
                    })
                    .collect();
                Concolic {
                    value: Value::Array(items),
                    sym: event.map(|event| SymExpr::TestResult { event }),
                }
            }
        }
    }
}

/// The oracle regex for in-trace matching: stateful flags cleared.
fn oracle_regex(regex: &Regex) -> Regex {
    let mut r = regex.clone();
    r.flags.global = false;
    r.flags.sticky = false;
    r
}

fn to_num(v: &Value) -> f64 {
    match v {
        Value::Num(n) => *n,
        Value::Bool(true) => 1.0,
        Value::Bool(false) => 0.0,
        Value::Str(s) => s.trim().parse().unwrap_or(f64::NAN),
        Value::Null => 0.0,
        _ => f64::NAN,
    }
}

/// The string-sorted symbolic shadow of a value: its symbolic expression
/// when present, or its concrete content as a literal.
fn string_sym(c: &Concolic) -> Option<SymExpr> {
    match (&c.sym, &c.value) {
        (Some(sym), _) if sym.is_string() => Some(sym.clone()),
        (None, Value::Str(s)) => Some(SymExpr::StrLit(s.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str, harness: Harness, inputs: &[&str]) -> Trace {
        let program = parse_program(src).expect("parse");
        let inputs: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
        execute(&program, &harness, &inputs, &InterpConfig::default())
    }

    #[test]
    fn concrete_arithmetic() {
        let trace = run(
            "function f(x) { let a = 1 + 2; assert(a === 3); }",
            Harness::strings("f", 1),
            &[""],
        );
        assert!(trace.assertion_failures.is_empty());
    }

    #[test]
    fn symbolic_branch_recorded() {
        let trace = run(
            r#"function f(x) { if (x === "secret") { return 1; } return 0; }"#,
            Harness::strings("f", 1),
            &["nope"],
        );
        assert_eq!(trace.path.len(), 1);
        assert!(!trace.path[0].taken);
    }

    #[test]
    fn regex_event_recorded() {
        let trace = run(
            r#"function f(x) { if (/^a+$/.test(x)) { return 1; } return 0; }"#,
            Harness::strings("f", 1),
            &["bbb"],
        );
        assert_eq!(trace.events.len(), 1);
        assert!(!trace.events[0].matched);
        // One clause from the regex call, one from the branch.
        assert_eq!(trace.path.len(), 2);
    }

    #[test]
    fn exec_captures_are_symbolic() {
        let trace = run(
            r#"function f(x) {
                let m = /^<([a-z]+)>$/.exec(x);
                if (m) { if (m[1] === "div") { return 1; } }
                return 0;
            }"#,
            Harness::strings("f", 1),
            &["<div>"],
        );
        assert_eq!(trace.events.len(), 1);
        assert!(trace.events[0].matched);
        // Regex clause + truthiness + capture comparison.
        assert_eq!(trace.path.len(), 3);
        assert!(matches!(
            &trace.path[2].cond,
            SymExpr::StrEq(lhs, _) if matches!(**lhs, SymExpr::Capture { index: 1, .. })
        ));
    }

    #[test]
    fn concrete_support_level_records_nothing() {
        let program =
            parse_program(r#"function f(x) { if (/a/.test(x)) { return 1; } return 0; }"#)
                .expect("parse");
        let config = InterpConfig {
            support: SupportLevel::Concrete,
            ..InterpConfig::default()
        };
        let trace = execute(
            &program,
            &Harness::strings("f", 1),
            &["a".to_string()],
            &config,
        );
        assert!(trace.events.is_empty());
        assert!(trace.path.is_empty());
    }

    #[test]
    fn assertion_failure_detected() {
        let trace = run(
            r#"function f(x) { assert(x === "ok"); }"#,
            Harness::strings("f", 1),
            &["bad"],
        );
        assert_eq!(trace.assertion_failures.len(), 1);
    }

    #[test]
    fn loops_terminate_via_budget() {
        let program =
            parse_program("function f(x) { while (true) { let a = 1; } }").expect("parse");
        let config = InterpConfig {
            max_steps: 1000,
            ..InterpConfig::default()
        };
        let trace = execute(
            &program,
            &Harness::strings("f", 1),
            &[String::new()],
            &config,
        );
        assert!(trace.steps <= 1000 + 1);
    }

    #[test]
    fn array_harness() {
        let trace = run(
            r#"function f(args) {
                let total = "";
                for (let i = 0; i < args.length; i = i + 1) {
                    total = total + args[i];
                }
                if (total === "ab") { return 1; }
                return 0;
            }"#,
            Harness::string_array("f", 2),
            &["a", "b"],
        );
        assert_eq!(trace.inputs_used, 2);
        assert!(trace.path.iter().any(|c| c.taken));
    }

    #[test]
    fn string_methods_concretize() {
        let trace = run(
            r#"function f(x) {
                let lower = x.toLowerCase();
                if (lower === "abc") { return 1; }
                return 0;
            }"#,
            Harness::strings("f", 1),
            &["ABC"],
        );
        // toLowerCase concretizes: comparison is not symbolic.
        assert!(trace.path.is_empty());
    }

    #[test]
    fn concat_stays_symbolic() {
        let trace = run(
            r#"function f(x) {
                let s = "pre-" + x;
                if (s === "pre-fix") { return 1; }
                return 0;
            }"#,
            Harness::strings("f", 1),
            &["fix"],
        );
        assert_eq!(trace.path.len(), 1);
        assert!(trace.path[0].taken);
    }
}

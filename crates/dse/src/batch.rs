//! Parallel batch execution of DSE jobs.
//!
//! ExpoSE executes test cases as separate processes pinned to dedicated
//! cores, aggregating coverage as each terminates (§6.2: "the analysis
//! is highly scalable"). The unit of parallelism here is one *program*
//! (the per-program engine stays deterministic, so the reproduced tables
//! are stable). [`BatchOptions::run`] is the one-shot front door: it
//! delegates to the work-stealing [`crate::sched::Scheduler`] — jobs
//! migrate between shards instead of being statically partitioned — and
//! collects the re-sequenced reports in input order.

use crate::ast::Program;
use crate::caching::CacheSet;
use crate::engine::{EngineConfig, Report};
use crate::interp::Harness;
use crate::sched::{Scheduler, SchedulerConfig};

/// One DSE job: a parsed program plus its harness and configuration.
#[derive(Debug, Clone)]
pub struct Job {
    /// Job label (package name in the evaluation).
    pub name: String,
    /// The program to execute.
    pub program: Program,
    /// Entry-point harness.
    pub harness: Harness,
    /// Engine configuration.
    pub config: EngineConfig,
}

/// Options for one batch run — the single batch entry point (the old
/// `run_batch`/`run_batch_with_caches` free functions are gone).
///
/// # Examples
///
/// ```
/// use expose_dse::{BatchOptions, EngineConfig, Harness, Job};
/// use expose_dse::parser::parse_program;
///
/// let jobs: Vec<Job> = (0..4)
///     .map(|i| Job {
///         name: format!("job{i}"),
///         program: parse_program(
///             r#"function f(x) { if (x === "k") { return 1; } return 0; }"#,
///         ).expect("parse"),
///         harness: Harness::strings("f", 1),
///         config: EngineConfig { max_executions: 4, ..EngineConfig::default() },
///     })
///     .collect();
/// let reports = BatchOptions::new().workers(2).run(jobs);
/// assert_eq!(reports.len(), 4);
/// assert!(reports.iter().all(|r| r.coverage_fraction() > 0.9));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Worker threads; `0` means "auto" and clamps to
    /// `max(1, available_parallelism)`.
    pub workers: usize,
    /// Session cache set shared by the jobs. `None` builds one sized to
    /// the largest capacity any job requests.
    pub caches: Option<CacheSet>,
}

impl BatchOptions {
    /// Default options: auto worker count, a fresh cache set sized from
    /// the jobs.
    pub fn new() -> BatchOptions {
        BatchOptions::default()
    }

    /// Sets the worker thread count (`0` = auto).
    pub fn workers(mut self, workers: usize) -> BatchOptions {
        self.workers = workers;
        self
    }

    /// Shares a caller-provided session cache set, so several batches
    /// (or a batch and a service session) share models, verdicts and
    /// DFA tables.
    pub fn caches(mut self, caches: CacheSet) -> BatchOptions {
        self.caches = Some(caches);
        self
    }

    /// Runs the jobs, returning reports in input order.
    ///
    /// All jobs share one session cache set — regex models, solver
    /// verdicts, and the DFA intern tables — so a regex or query solved
    /// for one package is free for every other.
    ///
    /// # Panics
    ///
    /// Panics if a job panics (propagating the job's panic message).
    pub fn run(&self, jobs: Vec<Job>) -> Vec<Report> {
        let caches = self.caches.clone().unwrap_or_else(|| {
            CacheSet::session(
                jobs.iter()
                    .map(|j| j.config.model_cache_capacity)
                    .max()
                    .unwrap_or(0),
                jobs.iter()
                    .map(|j| j.config.query_cache_capacity)
                    .max()
                    .unwrap_or(0),
                jobs.iter()
                    .map(|j| j.config.solver.dfa_cache_capacity)
                    .max()
                    .unwrap_or(0),
            )
        });
        let n = jobs.len();
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: self.workers,
                max_inflight: 0,
            },
            caches,
        );
        for job in jobs {
            scheduler.submit(job);
        }
        scheduler.close();
        let mut reports = Vec::with_capacity(n);
        while let Some(completion) = scheduler.next_ordered() {
            match completion.outcome {
                Ok(report) => reports.push(report),
                Err(message) => panic!("batch job {} failed: {message}", completion.name),
            }
        }
        scheduler.join();
        assert_eq!(reports.len(), n, "all jobs completed");
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_dse;
    use crate::parser::parse_program;

    fn job(name: &str, src: &str) -> Job {
        Job {
            name: name.into(),
            program: parse_program(src).expect("parse"),
            harness: Harness::strings("f", 1),
            config: EngineConfig {
                max_executions: 4,
                ..EngineConfig::default()
            },
        }
    }

    #[test]
    fn batch_preserves_order_and_results() {
        let jobs = vec![
            job(
                "a",
                r#"function f(x) { if (x === "1") { return 1; } return 0; }"#,
            ),
            job("b", r#"function f(x) { return 0; }"#),
            job(
                "c",
                r#"function f(x) { if (/^z+$/.test(x)) { return 1; } return 0; }"#,
            ),
        ];
        let sequential: Vec<_> = jobs
            .iter()
            .map(|j| run_dse(&j.program, &j.harness, &j.config))
            .collect();
        let parallel = BatchOptions::new().workers(3).run(jobs);
        assert_eq!(parallel.len(), 3);
        for (s, p) in sequential.iter().zip(&parallel) {
            // Engines are deterministic, so parallel == sequential.
            assert_eq!(s.coverage, p.coverage);
            assert_eq!(s.tests_generated, p.tests_generated);
        }
    }

    #[test]
    fn single_worker_works() {
        let reports = BatchOptions::new()
            .workers(1)
            .run(vec![job("only", r#"function f(x) { return x; }"#)]);
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn empty_batch() {
        let reports = BatchOptions::new().workers(4).run(Vec::new());
        assert!(reports.is_empty());
    }

    #[test]
    fn zero_workers_clamps_to_auto() {
        // Previously a panic; now "auto" (max(1, available_parallelism)).
        let reports = BatchOptions::new().workers(0).run(vec![job(
            "auto",
            r#"function f(x) { if (x === "q") { return 1; } return 0; }"#,
        )]);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].coverage_fraction() > 0.9);
    }

    #[test]
    fn jobs_share_the_cache_set() {
        // Two identical jobs: the second should hit models/queries the
        // first one populated.
        let jobs = vec![
            job(
                "one",
                r#"function f(x) { if (/^k+$/.test(x)) { return 1; } return 0; }"#,
            ),
            job(
                "two",
                r#"function f(x) { if (/^k+$/.test(x)) { return 1; } return 0; }"#,
            ),
        ];
        let reports = BatchOptions::new().workers(1).run(jobs);
        assert_eq!(reports[0].coverage, reports[1].coverage);
        let second = &reports[1];
        assert!(
            second.model_cache_hits > 0 || second.query_cache_hits > 0,
            "second job saw no cross-job cache hits: {second:?}"
        );
    }
}

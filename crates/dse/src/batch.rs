//! Parallel batch execution of DSE jobs.
//!
//! ExpoSE executes test cases as separate processes pinned to dedicated
//! cores, aggregating coverage as each terminates (§6.2: "the analysis
//! is highly scalable"). The unit of parallelism here is one *program*
//! (the per-program engine stays deterministic, so the reproduced tables
//! are stable): [`run_batch`] fans a set of jobs out over worker threads
//! with crossbeam's scoped threads and collects the reports in input
//! order.

use crossbeam::thread;
use parking_lot::Mutex;

use crate::ast::Program;
use crate::caching::DseCaches;
use crate::engine::{resolve_workers, run_dse_with_caches, EngineConfig, Report};
use crate::interp::Harness;

/// One DSE job: a parsed program plus its harness and configuration.
#[derive(Debug, Clone)]
pub struct Job {
    /// Job label (package name in the evaluation).
    pub name: String,
    /// The program to execute.
    pub program: Program,
    /// Entry-point harness.
    pub harness: Harness,
    /// Engine configuration.
    pub config: EngineConfig,
}

/// Runs a batch of jobs on `workers` threads, returning reports in the
/// order of the input jobs. `workers == 0` means "auto" and clamps to
/// `max(1, available_parallelism)` — the default for CLI-style callers
/// that pass an unvalidated knob through.
///
/// All jobs share one model/query cache set (sized to the largest
/// capacities requested by any job), so a regex or query solved for
/// one package is free for every other.
///
/// # Panics
///
/// Panics if a worker thread panics (propagating the inner panic).
///
/// # Examples
///
/// ```
/// use expose_dse::{batch::{run_batch, Job}, EngineConfig, Harness};
/// use expose_dse::parser::parse_program;
///
/// let jobs: Vec<Job> = (0..4)
///     .map(|i| Job {
///         name: format!("job{i}"),
///         program: parse_program(
///             r#"function f(x) { if (x === "k") { return 1; } return 0; }"#,
///         ).expect("parse"),
///         harness: Harness::strings("f", 1),
///         config: EngineConfig { max_executions: 4, ..EngineConfig::default() },
///     })
///     .collect();
/// let reports = run_batch(jobs, 2);
/// assert_eq!(reports.len(), 4);
/// assert!(reports.iter().all(|r| r.coverage_fraction() > 0.9));
/// ```
pub fn run_batch(jobs: Vec<Job>, workers: usize) -> Vec<Report> {
    let workers = resolve_workers(workers);
    let n = jobs.len();
    let caches = DseCaches::new(
        jobs.iter()
            .map(|j| j.config.model_cache_capacity)
            .max()
            .unwrap_or(0),
        jobs.iter()
            .map(|j| j.config.query_cache_capacity)
            .max()
            .unwrap_or(0),
    );
    let queue: Mutex<std::collections::VecDeque<(usize, Job)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<Report>>> = Mutex::new((0..n).map(|_| None).collect());

    thread::scope(|scope| {
        for _ in 0..workers.min(n.max(1)) {
            scope.spawn(|_| loop {
                let next = queue.lock().pop_front();
                let Some((index, job)) = next else { break };
                let report = run_dse_with_caches(&job.program, &job.harness, &job.config, &caches);
                results.lock()[index] = Some(report);
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_dse;
    use crate::parser::parse_program;

    fn job(name: &str, src: &str) -> Job {
        Job {
            name: name.into(),
            program: parse_program(src).expect("parse"),
            harness: Harness::strings("f", 1),
            config: EngineConfig {
                max_executions: 4,
                ..EngineConfig::default()
            },
        }
    }

    #[test]
    fn batch_preserves_order_and_results() {
        let jobs = vec![
            job(
                "a",
                r#"function f(x) { if (x === "1") { return 1; } return 0; }"#,
            ),
            job("b", r#"function f(x) { return 0; }"#),
            job(
                "c",
                r#"function f(x) { if (/^z+$/.test(x)) { return 1; } return 0; }"#,
            ),
        ];
        let sequential: Vec<_> = jobs
            .iter()
            .map(|j| run_dse(&j.program, &j.harness, &j.config))
            .collect();
        let parallel = run_batch(jobs, 3);
        assert_eq!(parallel.len(), 3);
        for (s, p) in sequential.iter().zip(&parallel) {
            // Engines are deterministic, so parallel == sequential.
            assert_eq!(s.coverage, p.coverage);
            assert_eq!(s.tests_generated, p.tests_generated);
        }
    }

    #[test]
    fn single_worker_works() {
        let reports = run_batch(vec![job("only", r#"function f(x) { return x; }"#)], 1);
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn empty_batch() {
        let reports = run_batch(Vec::new(), 4);
        assert!(reports.is_empty());
    }

    #[test]
    fn zero_workers_clamps_to_auto() {
        // Previously a panic; now "auto" (max(1, available_parallelism)).
        let reports = run_batch(
            vec![job(
                "auto",
                r#"function f(x) { if (x === "q") { return 1; } return 0; }"#,
            )],
            0,
        );
        assert_eq!(reports.len(), 1);
        assert!(reports[0].coverage_fraction() > 0.9);
    }

    #[test]
    fn jobs_share_the_cache_set() {
        // Two identical jobs: the second should hit models/queries the
        // first one populated.
        let jobs = vec![
            job(
                "one",
                r#"function f(x) { if (/^k+$/.test(x)) { return 1; } return 0; }"#,
            ),
            job(
                "two",
                r#"function f(x) { if (/^k+$/.test(x)) { return 1; } return 0; }"#,
            ),
        ];
        let reports = run_batch(jobs, 1);
        assert_eq!(reports[0].coverage, reports[1].coverage);
        let second = &reports[1];
        assert!(
            second.model_cache_hits > 0 || second.query_cache_hits > 0,
            "second job saw no cross-job cache hits: {second:?}"
        );
    }
}

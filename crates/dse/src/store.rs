//! Deterministic corpus store for the exploration orchestrator.
//!
//! Every input the orchestrator schedules is kept here, keyed by an
//! FNV-1a content hash and annotated with the branch trail that
//! produced it: the seed entry starts with an empty trail, a diverging
//! input carries the *predicted* trail of its solver model (the parent
//! trace's prefix plus the flipped clause), and execution replaces the
//! prediction with the trail actually observed. Entry ids are assigned
//! in insertion order and insertion order is fixed by the clause order
//! of flip results, so two runs with the same seed — at any flip worker
//! count — build byte-identical stores ([`CorpusStore::digest`] is the
//! equality the exploration differentials compare).

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

use crate::ast::StmtId;

/// FNV-1a 64 offset basis (the same constants the service's verdict
/// digest uses, so every digest in the system folds the same way).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 hasher shared by the corpus digests.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

impl Fnv {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    /// Folds one byte into the hash.
    pub fn eat(&mut self, byte: u8) {
        self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }

    /// Folds a little-endian `u64` into the hash.
    pub fn eat_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.eat(byte);
        }
    }

    /// The hash value so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Content hash of an input vector: each component is folded
/// length-prefixed, so `["ab", ""]` and `["a", "b"]` hash differently.
pub fn content_hash(inputs: &[String]) -> u64 {
    let mut hash = Fnv::new();
    for input in inputs {
        hash.eat_u64(input.len() as u64);
        for &byte in input.as_bytes() {
            hash.eat(byte);
        }
    }
    hash.finish()
}

/// Digest of a branch trail: one `(branch id, direction)` record per
/// clause, in trace order. Crashes and executed paths are deduplicated
/// by this value.
pub fn trail_digest(trail: &[(StmtId, bool)]) -> u64 {
    let mut hash = Fnv::new();
    for &(branch, taken) in trail {
        hash.eat_u64(u64::from(branch));
        hash.eat(u8::from(taken));
    }
    hash.finish()
}

/// One corpus entry: an input vector plus the provenance the scheduler
/// and the differential tests read.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Insertion-ordered id (doubles as the index into the store).
    pub id: u64,
    /// FNV-1a content hash of `inputs` (the dedup key).
    pub hash: u64,
    /// The concrete input vector.
    pub inputs: Vec<String>,
    /// The branch trail that produced this input: predicted from the
    /// parent trace while pending, replaced by the observed trail once
    /// the entry has been executed.
    pub trail: Vec<(StmtId, bool)>,
    /// The corpus id of the trace this input diverged from (`None` for
    /// the initial seed).
    pub parent: Option<u64>,
    /// Whether the orchestrator has executed this entry yet.
    pub executed: bool,
}

impl CorpusEntry {
    /// Digest of the entry's current trail.
    pub fn trail_digest(&self) -> u64 {
        trail_digest(&self.trail)
    }
}

/// Content-hash-keyed corpus of exploration inputs. Insertion order is
/// deterministic (see the module docs), duplicates are rejected at
/// insert, and the whole store folds into one [`CorpusStore::digest`]
/// for cross-run comparison.
#[derive(Debug, Clone, Default)]
pub struct CorpusStore {
    entries: Vec<CorpusEntry>,
    by_hash: HashMap<u64, u64>,
    dropped: u64,
}

impl CorpusStore {
    /// An empty store.
    pub fn new() -> CorpusStore {
        CorpusStore::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in insertion (id) order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// The entry with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never returned by [`CorpusStore::insert`].
    pub fn get(&self, id: u64) -> &CorpusEntry {
        &self.entries[id as usize]
    }

    /// Whether an input vector with this content hash is stored.
    pub fn contains_hash(&self, hash: u64) -> bool {
        self.by_hash.contains_key(&hash)
    }

    /// Inserts an input vector with the trail that produced it.
    /// Returns the new entry's id, or `None` if the content hash is
    /// already stored (the global diverging-input dedup).
    pub fn insert(
        &mut self,
        inputs: Vec<String>,
        trail: Vec<(StmtId, bool)>,
        parent: Option<u64>,
    ) -> Option<u64> {
        let hash = content_hash(&inputs);
        if self.by_hash.contains_key(&hash) {
            return None;
        }
        let id = self.entries.len() as u64;
        self.by_hash.insert(hash, id);
        self.entries.push(CorpusEntry {
            id,
            hash,
            inputs,
            trail,
            parent,
            executed: false,
        });
        Some(id)
    }

    /// Marks an entry executed and replaces its predicted trail with
    /// the observed one.
    pub fn mark_executed(&mut self, id: u64, trail: Vec<(StmtId, bool)>) {
        let entry = &mut self.entries[id as usize];
        entry.executed = true;
        entry.trail = trail;
    }

    /// Records an input dropped because the corpus-size budget was
    /// reached (counted so truncation is never silent).
    pub fn note_dropped(&mut self) {
        self.dropped += 1;
    }

    /// Inputs dropped at the corpus-size budget.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// FNV-1a digest of the whole store: every entry's content hash,
    /// trail digest, parent, and executed flag, in id order. Two
    /// exploration runs built the same corpus if and only if their
    /// digests agree.
    pub fn digest(&self) -> u64 {
        let mut hash = Fnv::new();
        for entry in &self.entries {
            hash.eat_u64(entry.hash);
            hash.eat_u64(entry.trail_digest());
            hash.eat_u64(entry.parent.map_or(u64::MAX, |p| p));
            hash.eat(u8::from(entry.executed));
        }
        hash.finish()
    }

    /// Writes the corpus to `dir` in the on-disk layout the
    /// exploration recipe documents: one escaped input file per entry
    /// under `<dir>/corpus/`, plus a `MANIFEST.txt` naming each file
    /// with its provenance. Returns the number of entries written.
    ///
    /// Input files hold one input component per line with `\`, newline
    /// and carriage return escaped (`\\`, `\n`, `\r`), so any input
    /// round-trips through the file format.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<usize> {
        let corpus_dir = dir.join("corpus");
        std::fs::create_dir_all(&corpus_dir)?;
        let mut manifest = std::fs::File::create(dir.join("MANIFEST.txt"))?;
        for entry in &self.entries {
            let file_name = format!("{:05}-{:016x}.input", entry.id, entry.hash);
            let mut file = std::fs::File::create(corpus_dir.join(&file_name))?;
            for input in &entry.inputs {
                let escaped = input
                    .replace('\\', "\\\\")
                    .replace('\n', "\\n")
                    .replace('\r', "\\r");
                writeln!(file, "{escaped}")?;
            }
            let parent = entry
                .parent
                .map_or_else(|| "-".to_string(), |p| p.to_string());
            writeln!(
                manifest,
                "{:05} hash={:016x} parent={parent} trail={:016x} executed={} file=corpus/{file_name}",
                entry.id,
                entry.hash,
                entry.trail_digest(),
                entry.executed,
            )?;
        }
        Ok(self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn content_hash_is_length_prefixed() {
        assert_ne!(
            content_hash(&inputs(&["ab", ""])),
            content_hash(&inputs(&["a", "b"]))
        );
        assert_ne!(content_hash(&inputs(&["a"])), content_hash(&inputs(&[""])));
        assert_eq!(content_hash(&inputs(&["a"])), content_hash(&inputs(&["a"])));
    }

    #[test]
    fn insert_dedups_by_content() {
        let mut store = CorpusStore::new();
        let first = store.insert(inputs(&["a"]), vec![], None);
        assert_eq!(first, Some(0));
        assert_eq!(store.insert(inputs(&["a"]), vec![(1, true)], Some(0)), None);
        assert_eq!(store.insert(inputs(&["b"]), vec![], Some(0)), Some(1));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn digest_tracks_content_and_provenance() {
        let mut a = CorpusStore::new();
        a.insert(inputs(&["x"]), vec![(3, true)], None);
        let mut b = CorpusStore::new();
        b.insert(inputs(&["x"]), vec![(3, true)], None);
        assert_eq!(a.digest(), b.digest());
        b.mark_executed(0, vec![(3, false)]);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn writes_disk_layout() {
        let mut store = CorpusStore::new();
        store.insert(inputs(&["plain", "with\nnewline\\"]), vec![(2, true)], None);
        store.insert(inputs(&["child"]), vec![(2, false)], Some(0));
        let dir = std::env::temp_dir().join(format!("expose-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = store.write_to_dir(&dir).expect("write corpus");
        assert_eq!(written, 2);
        let manifest = std::fs::read_to_string(dir.join("MANIFEST.txt")).expect("manifest");
        assert_eq!(manifest.lines().count(), 2);
        assert!(manifest.contains("parent=0"), "{manifest}");
        let entry = std::fs::read_to_string(dir.join("corpus").join(format!(
            "{:05}-{:016x}.input",
            0,
            store.get(0).hash
        )))
        .expect("entry file");
        assert_eq!(entry, "plain\nwith\\nnewline\\\\\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

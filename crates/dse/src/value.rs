//! Runtime values and concolic pairs.

use std::rc::Rc;

use regex_syntax_es6::Regex;

use crate::sym::SymExpr;

/// A runtime value of the mini-JS interpreter.
#[derive(Debug, Clone)]
pub enum Value {
    /// `undefined`.
    Undefined,
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array of concolic values.
    Array(Vec<Concolic>),
    /// A regex object (stateless; `lastIndex` is not modeled in the
    /// mini language — `g`/`y` matching is handled per call).
    RegExp(Rc<Regex>),
}

impl Value {
    /// JavaScript truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Array(_) | Value::RegExp(_) => true,
        }
    }

    /// `typeof` string.
    pub fn type_of(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Null | Value::Array(_) | Value::RegExp(_) => "object",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
        }
    }

    /// String coercion (for `+` and display).
    pub fn to_display(&self) -> String {
        match self {
            Value::Undefined => "undefined".into(),
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    n.to_string()
                }
            }
            Value::Str(s) => s.clone(),
            Value::Array(items) => items
                .iter()
                .map(|c| c.value.to_display())
                .collect::<Vec<_>>()
                .join(","),
            Value::RegExp(r) => format!("{r}"),
        }
    }

    /// Strict equality (`===`).
    pub fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undefined, Value::Undefined) | (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

/// A concolic value: a concrete [`Value`] paired with an optional
/// symbolic expression describing it in terms of the inputs.
#[derive(Debug, Clone)]
pub struct Concolic {
    /// The concrete value driving execution.
    pub value: Value,
    /// The symbolic shadow, when the value depends on symbolic inputs.
    pub sym: Option<SymExpr>,
}

impl Concolic {
    /// A purely concrete value.
    pub fn concrete(value: Value) -> Concolic {
        Concolic { value, sym: None }
    }

    /// A value with a symbolic shadow.
    pub fn symbolic(value: Value, sym: SymExpr) -> Concolic {
        Concolic {
            value,
            sym: Some(sym),
        }
    }

    /// Concrete string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match &self.value {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Undefined.truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(Value::Array(vec![]).truthy());
    }

    #[test]
    fn strict_eq_cross_type_is_false() {
        assert!(!Value::Num(1.0).strict_eq(&Value::Str("1".into())));
        assert!(!Value::Undefined.strict_eq(&Value::Null));
        assert!(Value::Str("a".into()).strict_eq(&Value::Str("a".into())));
    }

    #[test]
    fn display_coercion() {
        assert_eq!(Value::Num(3.0).to_display(), "3");
        assert_eq!(Value::Num(1.5).to_display(), "1.5");
        assert_eq!(Value::Undefined.to_display(), "undefined");
    }
}

//! A dynamic symbolic execution engine for a JavaScript-like language
//! with sound symbolic ES6 regex support — the ExpoSE reproduction.
//!
//! The crate provides:
//!
//! * a mini-JS language ([`ast`], [`lexer`], [`parser`]) rich enough to
//!   express the paper's workloads (Listing 1 is a test case);
//! * a concolic interpreter ([`interp`]) that records path conditions
//!   and regex events (§3.2);
//! * query construction and solving ([`solve`]) through the
//!   capturing-language models and CEGAR loop of [`expose_core`];
//! * a generational-search driver with CUPA-style scheduling
//!   ([`engine`], §6.2), parameterized by the Table 7 support levels;
//! * a work-stealing sharded scheduler for job streams ([`sched`]),
//!   with the one-shot batch front door ([`batch`]) on top;
//! * a pure-concolic exploration orchestrator ([`mod@explore`]) that
//!   closes the solve→seed loop over a deterministic corpus
//!   ([`store`]) driven by a coverage frontier ([`frontier`]).
//!
//! # Examples
//!
//! ```
//! use expose_dse::{run_dse, EngineConfig, Harness, parser::parse_program};
//!
//! let program = parse_program(r#"
//!     function check(s) {
//!         if (/^-?[0-9]+$/.test(s)) { return "int"; }
//!         return "other";
//!     }
//! "#)?;
//! let report = run_dse(&program, &Harness::strings("check", 1), &EngineConfig::default());
//! assert!(report.coverage_fraction() > 0.9);
//! # Ok::<(), expose_dse::parser::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod batch;
pub mod caching;
pub mod engine;
pub mod explore;
pub mod frontier;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod sched;
pub mod solve;
pub mod store;
pub mod sym;
pub mod value;

pub use batch::{BatchOptions, Job};
pub use caching::{CacheSet, DseCaches};
pub use engine::{run_dse, run_dse_observed, run_dse_with_caches, EngineConfig, Report};
pub use explore::{
    explore, explore_observed, explore_with_caches, ExploreBug, ExploreConfig, ExploreReport,
    IterationProgress, StopReason,
};
pub use frontier::{CoverageMap, FrontierScheduler};
pub use interp::{execute, ArgSpec, Harness, InterpConfig};
pub use sched::{Completion, JobId, Scheduler, SchedulerConfig, ShardStats};
pub use solve::{solve_flip, FlipResult, QueryRecord, TraceFlipSession};
pub use store::{content_hash, trail_digest, CorpusEntry, CorpusStore};
pub use sym::{Clause, RegexEvent, SymExpr, Trace};
pub use value::{Concolic, Value};

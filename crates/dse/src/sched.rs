//! Work-stealing sharded scheduler for DSE job streams.
//!
//! ExpoSE's evaluation (§6.2) runs thousands of *independent* DSE jobs
//! — the embarrassingly job-parallel shape a long-running service
//! should exploit. [`Scheduler`] replaces the static fan-out of the old
//! `run_batch` with a session-scoped pool of worker shards:
//!
//! * jobs enter through a global [`Injector`] queue and migrate into
//!   per-shard deques in batches; an idle shard first drains its own
//!   deque, then claims from the injector, then **steals** from
//!   sibling shards — no shard ever idles while work exists anywhere;
//! * all shards share one [`CacheSet`] (regex models, solver verdicts,
//!   and the DFA intern tables), so a regex determinized for one job
//!   is free for every other job of the session;
//! * completions are re-sequenced by [`JobId`] before they are handed
//!   to the consumer: the per-job engine is deterministic and every
//!   cache layer is verdict-preserving, so the *results* of a session
//!   — and any stream rendered from them — are byte-identical for any
//!   worker count and any steal interleaving;
//! * submission applies backpressure: with a bound configured,
//!   [`Scheduler::submit`] blocks while too many jobs are in flight,
//!   which is what lets a service front-end stop reading its input
//!   instead of buffering without limit.
//!
//! Scheduling-dependent *observables* (wall-clock, which shard ran a
//! job, cache hit/miss splits) live in [`ShardStats`] and the cache
//! counters, deliberately outside the deterministic result stream.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Stealer, Worker};

use crate::batch::Job;
use crate::caching::CacheSet;
use crate::engine::{resolve_workers, run_dse_with_caches, Report};

/// Monotonic job identifier, assigned at submission. Results are
/// re-sequenced by this id, so it doubles as the output position.
pub type JobId = u64;

/// Scheduler configuration. The default is auto-sized workers
/// (`workers == 0` means `max(1, available_parallelism)`) with
/// backpressure disabled.
#[derive(Debug, Clone, Default)]
pub struct SchedulerConfig {
    /// Worker shards. `0` means "auto": `max(1,
    /// available_parallelism)`.
    pub workers: usize,
    /// Maximum jobs in flight (submitted but not yet drained by the
    /// consumer); [`Scheduler::submit`] blocks at the bound. `0`
    /// disables backpressure.
    pub max_inflight: usize,
}

/// Per-shard scheduling counters (observability only — none of these
/// feed the deterministic result stream).
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Jobs this shard executed.
    pub jobs_run: u64,
    /// Claims served from the shard's own deque.
    pub local_pops: u64,
    /// Claims served from the global injector (including the batch
    /// hand-offs that refill the local deque).
    pub injector_claims: u64,
    /// Claims stolen from sibling shards.
    pub steals: u64,
}

/// One finished job, tagged with its submission id and name.
#[derive(Debug)]
pub struct Completion {
    /// Submission id (= position in the re-sequenced output).
    pub id: JobId,
    /// Job label, echoed from [`Job::name`].
    pub name: String,
    /// The report, or an error message (submission-time rejection or a
    /// panicking job).
    pub outcome: Result<Report, String>,
}

/// A snapshot of session-level progress counters.
#[derive(Debug, Clone, Default)]
pub struct Progress {
    /// Jobs submitted (including rejected submissions).
    pub submitted: u64,
    /// Jobs whose completion has been drained by the consumer.
    pub drained: u64,
    /// Jobs submitted but not yet drained.
    pub inflight: u64,
    /// Jobs finished but still waiting for an earlier id to drain.
    pub resequencing: u64,
    /// Jobs submitted but not yet claimed by any shard (the queue
    /// depth a metrics endpoint reports).
    pub queued: u64,
}

/// Number of power-of-two latency buckets: bucket `i` counts samples
/// in `[2^i, 2^(i+1))` microseconds, so 40 buckets span ~1 µs to ~12
/// days — far beyond any DSE job.
const LATENCY_BUCKETS: usize = 40;

/// A lock-free log-scale latency histogram: fixed power-of-two
/// microsecond buckets updated with relaxed atomics, so shards (and a
/// service's reader thread) record wall times without ever contending
/// on a lock. Quantiles are read from a [`LatencySnapshot`]; they are
/// bucket-granular (exact to within 2x), which is plenty for the
/// p50/p99 trend a metrics endpoint reports. Like [`ShardStats`],
/// latencies are observability data — never part of the deterministic
/// result stream.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, elapsed: Duration) {
        self.record_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample given in microseconds.
    pub fn record_us(&self, us: u64) {
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting (concurrent records
    /// may straddle the reads; quantiles are bucket-granular anyway).
    pub fn snapshot(&self) -> LatencySnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, n) in counts.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Upper bound of the bucket: pessimistic by at
                    // most 2x, monotone in the rank.
                    return (1u64 << (i + 1)).saturating_sub(1);
                }
            }
            self.max_us.load(Ordering::Relaxed)
        };
        LatencySnapshot {
            count,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            p50_us: quantile(0.50),
            p99_us: quantile(0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// One point-in-time read of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub sum_us: u64,
    /// Median, in microseconds (bucket upper bound).
    pub p50_us: u64,
    /// 99th percentile, in microseconds (bucket upper bound).
    pub p99_us: u64,
    /// Largest sample, in microseconds (exact).
    pub max_us: u64,
}

impl LatencySnapshot {
    /// Median in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.p50_us as f64 / 1e3
    }

    /// 99th percentile in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.p99_us as f64 / 1e3
    }

    /// Largest sample in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_us as f64 / 1e3
    }
}

struct Task {
    id: JobId,
    job: Job,
}

struct State {
    next_id: JobId,
    next_emit: JobId,
    /// Tasks submitted but not yet claimed by any shard.
    queued: usize,
    /// Completions not yet drained, keyed by id.
    finished: HashMap<JobId, Completion>,
    /// No further submissions; shards exit once the queues drain.
    closed: bool,
    shard_stats: Vec<ShardStats>,
}

struct Shared {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    caches: CacheSet,
    max_inflight: usize,
    state: Mutex<State>,
    /// Waited on by idle shards; signaled on submit and close.
    work_ready: Condvar,
    /// Waited on by the consumer (ordered drain) and by submitters
    /// blocked on backpressure; signaled on completion and drain.
    progress: Condvar,
    /// Wall time of each completed job, recorded lock-free by the
    /// shards for the metrics endpoint.
    latency: LatencyHistogram,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("scheduler state poisoned")
    }
}

/// A session-scoped, work-stealing DSE job scheduler. See the module
/// docs for the architecture.
///
/// # Examples
///
/// ```
/// use expose_dse::sched::{Scheduler, SchedulerConfig};
/// use expose_dse::{batch::Job, parser::parse_program, CacheSet, EngineConfig, Harness};
///
/// let scheduler = Scheduler::start(
///     SchedulerConfig { workers: 2, ..SchedulerConfig::default() },
///     CacheSet::session(64, 64, 64),
/// );
/// for i in 0..4 {
///     scheduler.submit(Job {
///         name: format!("job{i}"),
///         program: parse_program(
///             r#"function f(x) { if (x === "k") { return 1; } return 0; }"#,
///         ).expect("parse"),
///         harness: Harness::strings("f", 1),
///         config: EngineConfig { max_executions: 4, ..EngineConfig::default() },
///     });
/// }
/// scheduler.close();
/// let mut seen = 0;
/// while let Some(completion) = scheduler.next_ordered() {
///     assert_eq!(completion.id, seen); // re-sequenced by job id
///     assert!(completion.outcome.expect("ran").coverage_fraction() > 0.9);
///     seen += 1;
/// }
/// assert_eq!(seen, 4);
/// ```
pub struct Scheduler {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Starts `config.workers` shards sharing `caches`.
    pub fn start(config: SchedulerConfig, caches: CacheSet) -> Scheduler {
        let workers = resolve_workers(config.workers);
        let deques: Vec<Worker<Task>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<Task>> = deques.iter().map(Worker::stealer).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            caches,
            max_inflight: config.max_inflight,
            state: Mutex::new(State {
                next_id: 0,
                next_emit: 0,
                queued: 0,
                finished: HashMap::new(),
                closed: false,
                shard_stats: vec![ShardStats::default(); workers],
            }),
            work_ready: Condvar::new(),
            progress: Condvar::new(),
            latency: LatencyHistogram::new(),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(shard, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dse-shard-{shard}"))
                    .spawn(move || shard_loop(&shared, shard, &local))
                    .expect("spawn shard")
            })
            .collect();
        Scheduler { shared, handles }
    }

    /// The session cache set shared by all shards.
    pub fn caches(&self) -> &CacheSet {
        &self.shared.caches
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Submits a job, returning its id (= output position). Blocks
    /// while the in-flight bound is reached — the backpressure that
    /// lets a front-end stop reading input.
    ///
    /// # Panics
    ///
    /// Panics if the session was already closed.
    pub fn submit(&self, job: Job) -> JobId {
        let mut state = self.shared.lock();
        while self.shared.max_inflight > 0
            && (state.next_id - state.next_emit) as usize >= self.shared.max_inflight
            && !state.closed
        {
            state = self
                .shared
                .progress
                .wait(state)
                .expect("scheduler state poisoned");
        }
        assert!(!state.closed, "submit after close");
        let id = state.next_id;
        state.next_id += 1;
        state.queued += 1;
        drop(state);
        self.shared.injector.push(Task { id, job });
        self.shared.work_ready.notify_all();
        id
    }

    /// Records a submission-time rejection (e.g. a program that failed
    /// to parse) as an ordinary completion, so the error occupies its
    /// position in the re-sequenced output instead of racing it.
    pub fn submit_rejected(&self, name: impl Into<String>, error: impl Into<String>) -> JobId {
        let mut state = self.shared.lock();
        assert!(!state.closed, "submit after close");
        let id = state.next_id;
        state.next_id += 1;
        state.finished.insert(
            id,
            Completion {
                id,
                name: name.into(),
                outcome: Err(error.into()),
            },
        );
        drop(state);
        self.shared.progress.notify_all();
        id
    }

    /// Closes the session: no further submissions; shards exit once
    /// the queues drain; [`Scheduler::next_ordered`] returns `None`
    /// after the last completion.
    pub fn close(&self) {
        let mut state = self.shared.lock();
        state.closed = true;
        drop(state);
        self.shared.work_ready.notify_all();
        self.shared.progress.notify_all();
    }

    /// The next completion in job-id order. Blocks until job
    /// `next_emit` finishes; returns `None` once the session is closed
    /// and fully drained. Completions arriving out of order are held
    /// back here — this is what makes the output stream byte-identical
    /// for any worker count.
    pub fn next_ordered(&self) -> Option<Completion> {
        let mut state = self.shared.lock();
        loop {
            let emit = state.next_emit;
            if let Some(completion) = state.finished.remove(&emit) {
                state.next_emit += 1;
                drop(state);
                // Draining frees an in-flight slot: wake blocked
                // submitters.
                self.shared.progress.notify_all();
                return Some(completion);
            }
            if state.closed && state.next_emit >= state.next_id {
                return None;
            }
            state = self
                .shared
                .progress
                .wait(state)
                .expect("scheduler state poisoned");
        }
    }

    /// A snapshot of session progress.
    pub fn progress(&self) -> Progress {
        let state = self.shared.lock();
        Progress {
            submitted: state.next_id,
            drained: state.next_emit,
            inflight: state.next_id - state.next_emit,
            resequencing: state.finished.len() as u64,
            queued: state.queued as u64,
        }
    }

    /// Whether a [`Scheduler::submit`] would currently block on the
    /// in-flight bound. A load-shedding front-end checks this to turn
    /// backpressure into a structured `overloaded` rejection instead of
    /// stalling its reader. Advisory: the answer can be stale by the
    /// time a submit runs, which only means one extra job briefly
    /// blocks.
    pub fn at_capacity(&self) -> bool {
        let state = self.shared.lock();
        self.shared.max_inflight > 0
            && (state.next_id - state.next_emit) as usize >= self.shared.max_inflight
    }

    /// A snapshot of the per-job wall-time histogram.
    pub fn latency(&self) -> LatencySnapshot {
        self.shared.latency.snapshot()
    }

    /// A snapshot of the per-shard scheduling counters.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shared.lock().shard_stats.clone()
    }

    /// Closes the session and joins all shards.
    ///
    /// # Panics
    ///
    /// Propagates a shard thread panic (shards themselves never panic;
    /// panicking *jobs* are captured as `Err` completions).
    pub fn join(mut self) {
        self.close();
        for handle in self.handles.drain(..) {
            handle.join().expect("shard thread panicked");
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.close();
        for handle in self.handles.drain(..) {
            // Best-effort join; a panic here would abort on double
            // panic during unwinding.
            let _ = handle.join();
        }
    }
}

/// One shard: claim (local → injector → steal), run, complete; park
/// when no work is queued anywhere; exit when the session is closed
/// and drained.
fn shard_loop(shared: &Shared, shard: usize, local: &Worker<Task>) {
    loop {
        let claimed = claim(shared, shard, local);
        match claimed {
            Some(task) => {
                {
                    let mut state = shared.lock();
                    state.queued -= 1;
                }
                let Task { id, job } = task;
                let name = job.name.clone();
                let started = Instant::now();
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    run_dse_with_caches(&job.program, &job.harness, &job.config, &shared.caches)
                }))
                .map_err(|payload| {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "job panicked".to_string());
                    format!("job panicked: {message}")
                });
                shared.latency.record(started.elapsed());
                let mut state = shared.lock();
                state.shard_stats[shard].jobs_run += 1;
                state.finished.insert(id, Completion { id, name, outcome });
                drop(state);
                shared.progress.notify_all();
            }
            None => {
                let state = shared.lock();
                if state.queued > 0 {
                    // A task exists but moved between queues mid-scan;
                    // rescan immediately.
                    drop(state);
                    std::thread::yield_now();
                    continue;
                }
                if state.closed {
                    return;
                }
                // Park until a submit or close wakes us.
                drop(
                    shared
                        .work_ready
                        .wait(state)
                        .expect("scheduler state poisoned"),
                );
            }
        }
    }
}

/// Claims one task: the shard's own deque first, then the injector
/// (with a batch hand-off into the local deque), then siblings.
fn claim(shared: &Shared, shard: usize, local: &Worker<Task>) -> Option<Task> {
    if let Some(task) = local.pop() {
        shared.lock().shard_stats[shard].local_pops += 1;
        return Some(task);
    }
    if let Some(task) = shared.injector.steal_batch_and_pop(local).success() {
        shared.lock().shard_stats[shard].injector_claims += 1;
        return Some(task);
    }
    // Scan siblings starting after this shard so steal pressure
    // spreads instead of always hitting shard 0.
    let n = shared.stealers.len();
    for offset in 1..n {
        let victim = (shard + offset) % n;
        if let Some(task) = shared.stealers[victim].steal().success() {
            shared.lock().shard_stats[shard].steals += 1;
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::interp::Harness;
    use crate::parser::parse_program;

    fn job(name: &str, src: &str) -> Job {
        Job {
            name: name.into(),
            program: parse_program(src).expect("parse"),
            harness: Harness::strings("f", 1),
            config: EngineConfig {
                max_executions: 4,
                ..EngineConfig::default()
            },
        }
    }

    fn simple(name: &str, key: &str) -> Job {
        job(
            name,
            &format!(r#"function f(x) {{ if (x === "{key}") {{ return 1; }} return 0; }}"#),
        )
    }

    #[test]
    fn resequences_completions_by_id() {
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: 4,
                ..SchedulerConfig::default()
            },
            CacheSet::session(64, 64, 64),
        );
        for i in 0..16 {
            scheduler.submit(simple(&format!("job{i}"), &format!("k{i}")));
        }
        scheduler.close();
        let mut expected = 0;
        while let Some(completion) = scheduler.next_ordered() {
            assert_eq!(completion.id, expected);
            assert_eq!(completion.name, format!("job{expected}"));
            assert!(completion.outcome.is_ok());
            expected += 1;
        }
        assert_eq!(expected, 16);
        let stats = scheduler.shard_stats();
        let run: u64 = stats.iter().map(|s| s.jobs_run).sum();
        assert_eq!(run, 16);
    }

    #[test]
    fn rejected_submissions_hold_their_position() {
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: 2,
                ..SchedulerConfig::default()
            },
            CacheSet::session(16, 16, 16),
        );
        scheduler.submit(simple("ok0", "a"));
        scheduler.submit_rejected("broken", "parse error: unexpected token");
        scheduler.submit(simple("ok2", "b"));
        scheduler.close();
        let first = scheduler.next_ordered().expect("job 0");
        let second = scheduler.next_ordered().expect("job 1");
        let third = scheduler.next_ordered().expect("job 2");
        assert!(scheduler.next_ordered().is_none());
        assert!(first.outcome.is_ok());
        assert_eq!(second.name, "broken");
        assert!(second.outcome.unwrap_err().contains("parse error"));
        assert!(third.outcome.is_ok());
    }

    #[test]
    fn backpressure_bounds_inflight() {
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: 2,
                max_inflight: 4,
            },
            CacheSet::session(16, 16, 16),
        );
        // Submit more than the bound from this thread while a drainer
        // runs on another: submission can only finish because draining
        // frees slots.
        std::thread::scope(|scope| {
            let drainer = scope.spawn(|| {
                let mut drained = 0;
                while scheduler.next_ordered().is_some() {
                    drained += 1;
                }
                drained
            });
            for i in 0..12 {
                scheduler.submit(simple(&format!("job{i}"), "x"));
                assert!(scheduler.progress().inflight <= 4);
            }
            scheduler.close();
            assert_eq!(drainer.join().expect("drainer"), 12);
        });
    }

    #[test]
    fn odd_jobs_do_not_stall_the_stream() {
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                ..SchedulerConfig::default()
            },
            CacheSet::session(16, 16, 16),
        );
        // A harness naming a missing entry runs as an (empty) execution
        // rather than an error; the shard must complete it and move on
        // to the next job either way.
        let mut odd = simple("odd", "x");
        odd.harness = Harness::strings("missing_entry", 1);
        scheduler.submit(odd);
        scheduler.submit(simple("good", "y"));
        scheduler.close();
        let first = scheduler.next_ordered().expect("completion 0");
        let second = scheduler.next_ordered().expect("completion 1");
        assert!(scheduler.next_ordered().is_none());
        let report = first.outcome.expect("empty run, not an error");
        assert_eq!(report.tests_generated, 0);
        let report = second.outcome.expect("ran");
        assert!(report.coverage_fraction() > 0.9);
    }

    #[test]
    fn progress_counters_track_the_session() {
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: 2,
                ..SchedulerConfig::default()
            },
            CacheSet::session(16, 16, 16),
        );
        assert_eq!(scheduler.progress().submitted, 0);
        scheduler.submit(simple("a", "1"));
        scheduler.submit(simple("b", "2"));
        scheduler.close();
        let mut drained = 0;
        while scheduler.next_ordered().is_some() {
            drained += 1;
        }
        assert_eq!(drained, 2);
        let progress = scheduler.progress();
        assert_eq!(progress.submitted, 2);
        assert_eq!(progress.drained, 2);
        assert_eq!(progress.inflight, 0);
        assert_eq!(progress.resequencing, 0);
        assert_eq!(progress.queued, 0);
        // Every completed job left a latency sample behind. Quantiles
        // are bucket upper bounds, so p50 may exceed the exact max —
        // but never by more than the max sample's own bucket bound.
        let latency = scheduler.latency();
        assert_eq!(latency.count, 2);
        assert!(latency.p99_us >= latency.p50_us);
        assert!(latency.sum_us >= latency.max_us);
        assert!(u128::from(latency.p50_us) <= 2 * u128::from(latency.max_us.max(1)));
        scheduler.join();
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let histogram = LatencyHistogram::new();
        assert_eq!(histogram.snapshot(), LatencySnapshot::default());
        // 99 samples in [64, 128) µs and one slow outlier.
        for i in 0..99u64 {
            histogram.record_us(64 + (i % 60));
        }
        histogram.record_us(250_000);
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 100);
        assert_eq!(snapshot.p50_us, 127); // upper bound of [64, 128)
        assert_eq!(snapshot.p99_us, 127); // rank 99 still in the bulk
        assert_eq!(snapshot.max_us, 250_000);
        assert!(snapshot.p99_ms() <= snapshot.max_ms());
        // One more outlier pushes rank-p99 into the slow bucket.
        histogram.record_us(250_000);
        let snapshot = histogram.snapshot();
        assert!(snapshot.p99_us >= 131_071, "p99 {}", snapshot.p99_us);
    }

    #[test]
    fn at_capacity_reflects_the_inflight_bound() {
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                max_inflight: 2,
            },
            CacheSet::session(16, 16, 16),
        );
        assert!(!scheduler.at_capacity());
        scheduler.submit(simple("a", "1"));
        scheduler.submit(simple("b", "2"));
        // Two undrained jobs hit the bound even after both complete.
        assert!(scheduler.at_capacity());
        scheduler.close();
        while scheduler.next_ordered().is_some() {}
        assert!(!scheduler.at_capacity());
    }
}

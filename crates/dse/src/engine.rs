//! The DSE driver: generational search with CUPA-style scheduling.
//!
//! Mirrors ExpoSE's architecture (§6.2): each executed test case yields
//! a trace; all feasible clause flips are solved to generate new test
//! cases, which are sorted into buckets keyed by the program fork point
//! that created them; the next test case is drawn from the
//! least-accessed bucket, prioritizing unexplored code.
//!
//! The flip-solving loop — where DSE spends nearly all of its
//! wall-clock (§6.2 of the paper reports solver time dominating) — is
//! the unit of parallelism: the flips of one trace are independent
//! queries, fanned out over [`EngineConfig::flip_workers`] scoped
//! threads and re-ordered deterministically by clause index before any
//! engine state is touched, so a run's report is identical for any
//! worker count. Regex models and solver verdicts are shared across
//! queries (and across batch jobs) through [`DseCaches`].

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::thread;
use expose_core::model::BuildConfig;
use expose_core::SupportLevel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use strsolve::{Solver, SolverConfig};

use crate::ast::{Program, StmtId};
use crate::caching::DseCaches;
use crate::interp::{execute, Harness, InterpConfig};
use crate::solve::{solve_flip, FlipResult, QueryRecord, TraceFlipSession};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Regex support level (the Table 7 axis).
    pub support: SupportLevel,
    /// Maximum number of concrete executions.
    pub max_executions: usize,
    /// Maximum clause flips attempted per trace.
    pub max_flips_per_trace: usize,
    /// Interpreter step budget per execution.
    pub max_steps: u64,
    /// Solver limits.
    pub solver: SolverConfig,
    /// Model-construction limits.
    pub build: BuildConfig,
    /// CEGAR refinement limit (§7.2 uses 20).
    pub refinement_limit: usize,
    /// RNG seed for bucket sampling (deterministic runs).
    pub seed: u64,
    /// Worker threads for per-trace clause-flip solving. `1` (the
    /// default) solves serially on the calling thread; `0` means
    /// "auto": `max(1, available_parallelism)`. Reports are identical
    /// for every worker count.
    pub flip_workers: usize,
    /// Capacity of the shared regex-model cache (`0` disables it).
    pub model_cache_capacity: usize,
    /// Capacity of the shared solver-query cache (`0` disables it).
    pub query_cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            support: SupportLevel::Refinement,
            max_executions: 64,
            max_flips_per_trace: 24,
            max_steps: 100_000,
            solver: SolverConfig::default(),
            build: BuildConfig::default(),
            refinement_limit: 20,
            seed: 0x5eed,
            flip_workers: 1,
            model_cache_capacity: 512,
            query_cache_capacity: 2048,
        }
    }
}

/// Resolves a worker-count knob: `0` means `max(1,
/// available_parallelism)`.
pub(crate) fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .max(1)
    } else {
        requested
    }
}

/// The result of a DSE run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Covered statement ids.
    pub coverage: HashSet<StmtId>,
    /// Total statements in the program.
    pub stmt_count: u32,
    /// Number of concrete executions performed.
    pub executions: usize,
    /// Number of distinct inputs generated (tests).
    pub tests_generated: usize,
    /// Statement ids of failed assertions, with the triggering inputs.
    pub bugs: Vec<(StmtId, Vec<String>)>,
    /// Per-query statistics (Table 8 source data).
    pub queries: Vec<QueryRecord>,
    /// Regex models served from the shared model cache.
    pub model_cache_hits: u64,
    /// Regex models built fresh.
    pub model_cache_misses: u64,
    /// Solver calls answered from the shared query cache.
    pub query_cache_hits: u64,
    /// Solver calls that ran the full search.
    pub query_cache_misses: u64,
    /// Concrete regex executions routed to the Pike-VM fast path
    /// (patterns `es6_matcher::select` found expressible as an NFA).
    pub matcher_fast_path: u64,
    /// Concrete regex executions that ran on the backtracking engine
    /// (backreferences and the other fallback shapes).
    pub matcher_fallback: u64,
}

impl Report {
    /// Statement coverage as a fraction in `[0, 1]`.
    pub fn coverage_fraction(&self) -> f64 {
        if self.stmt_count == 0 {
            return 0.0;
        }
        self.coverage.len() as f64 / f64::from(self.stmt_count)
    }

    /// Model-cache hit rate in `[0, 1]` (`0` with no lookups).
    pub fn model_cache_hit_rate(&self) -> f64 {
        expose_core::cache::CacheStats {
            hits: self.model_cache_hits,
            misses: self.model_cache_misses,
        }
        .hit_rate()
    }

    /// Query-cache hit rate in `[0, 1]` (`0` with no lookups).
    pub fn query_cache_hit_rate(&self) -> f64 {
        expose_core::cache::CacheStats {
            hits: self.query_cache_hits,
            misses: self.query_cache_misses,
        }
        .hit_rate()
    }

    /// Total search-tree nodes visited by the solver.
    pub fn solver_nodes(&self) -> u64 {
        self.queries.iter().map(|q| q.solver_nodes).sum()
    }

    /// Total DFA states the solver built before minimization.
    pub fn dfa_states_built(&self) -> u64 {
        self.queries.iter().map(|q| q.dfa_states_built).sum()
    }

    /// Total DFA states remaining after the thresholded Hopcroft pass.
    pub fn states_after_minimize(&self) -> u64 {
        self.queries.iter().map(|q| q.states_after_minimize).sum()
    }

    /// Total conjunctions refuted by the length-abstraction pass
    /// before any word search.
    pub fn length_prunes(&self) -> u64 {
        self.queries.iter().map(|q| q.length_prunes).sum()
    }

    /// Total solver DFA-cache lookups served from resident entries
    /// (session-table reuse under a [`crate::caching::CacheSet`]).
    pub fn dfa_cache_hits(&self) -> u64 {
        self.queries.iter().map(|q| q.dfa_cache_hits).sum()
    }

    /// Total wall-clock spent in solver queries.
    pub fn solver_time(&self) -> std::time::Duration {
        self.queries.iter().map(|q| q.duration).sum()
    }

    /// Total canonical prefix frames reused by incremental flip
    /// sessions instead of being re-canonicalized.
    pub fn prefix_reuse_hits(&self) -> u64 {
        self.queries.iter().map(|q| q.prefix_reuse_hits).sum()
    }

    /// Total whole CEGAR refinement runs replayed from the shared
    /// verdict cache.
    pub fn verdict_replays(&self) -> u64 {
        self.queries.iter().map(|q| q.verdict_replays).sum()
    }

    /// Absorbs one flip query's record into the report.
    fn record_query(&mut self, record: QueryRecord) {
        self.model_cache_hits += record.model_cache_hits;
        self.model_cache_misses += record.model_cache_misses;
        self.query_cache_hits += record.query_cache_hits;
        self.query_cache_misses += record.query_cache_misses;
        self.queries.push(record);
    }
}

/// A queued test case.
#[derive(Debug, Clone)]
struct TestCase {
    inputs: Vec<String>,
}

/// Runs dynamic symbolic execution on a program.
///
/// # Examples
///
/// Finding the Listing 1 bug (§3.2): the engine discovers the input
/// `"<timeout></timeout>"` that makes the assertion fail.
///
/// ```
/// use expose_dse::{run_dse, EngineConfig, Harness, parser::parse_program};
///
/// let program = parse_program(r#"
///     function f(x) {
///         if (/^a+$/.test(x)) { return 1; }
///         return 0;
///     }
/// "#)?;
/// let report = run_dse(&program, &Harness::strings("f", 1), &EngineConfig::default());
/// assert!(report.coverage_fraction() > 0.9);
/// # Ok::<(), expose_dse::parser::ParseError>(())
/// ```
pub fn run_dse(program: &Program, harness: &Harness, config: &EngineConfig) -> Report {
    run_dse_with_caches(program, harness, config, &DseCaches::from_config(config))
}

/// [`run_dse`] with caller-provided caches, so several runs (e.g. the
/// jobs of a batch) share models and verdicts.
pub fn run_dse_with_caches(
    program: &Program,
    harness: &Harness,
    config: &EngineConfig,
    caches: &DseCaches,
) -> Report {
    run_dse_observed(program, harness, config, caches, &mut |_, _| {})
}

/// [`run_dse_with_caches`] with a trace observer: `observer(trace,
/// flips)` fires for every executed trace, right before its first
/// `flips` clauses are solved. The streaming service's script recorder
/// uses this to re-express a run as wire `push`/`solve` sequences; the
/// observer cannot influence the run, so the returned report is
/// byte-identical to an unobserved one.
pub fn run_dse_observed(
    program: &Program,
    harness: &Harness,
    config: &EngineConfig,
    caches: &DseCaches,
    observer: &mut dyn FnMut(&crate::sym::Trace, usize),
) -> Report {
    let mut report = Report {
        stmt_count: program.stmt_count,
        ..Report::default()
    };
    let solver = build_solver(config, caches);
    let flip_workers = resolve_workers(config.flip_workers);
    let interp_config = InterpConfig {
        support: config.support,
        max_steps: config.max_steps,
    };
    let mut rng = StdRng::seed_from_u64(config.seed);

    // CUPA buckets: fork point → queued cases, with access counts.
    let mut buckets: HashMap<StmtId, Vec<TestCase>> = HashMap::new();
    let mut accesses: HashMap<StmtId, usize> = HashMap::new();
    let mut seen_inputs: HashSet<Vec<String>> = HashSet::new();

    let seed_case = TestCase {
        inputs: vec![String::new(); harness.input_count()],
    };
    seen_inputs.insert(seed_case.inputs.clone());
    buckets.entry(0).or_default().push(seed_case);

    while report.executions < config.max_executions {
        // Pick the least-accessed non-empty bucket; ties break on the
        // bucket key so the choice never depends on map iteration
        // order (run-to-run determinism).
        let Some(&bucket_key) = buckets
            .iter()
            .filter(|(_, cases)| !cases.is_empty())
            .map(|(k, _)| k)
            .min_by_key(|&&k| (accesses.get(&k).copied().unwrap_or(0), k))
        else {
            break;
        };
        *accesses.entry(bucket_key).or_insert(0) += 1;
        let cases = buckets.get_mut(&bucket_key).expect("bucket exists");
        let idx = rng.random_range(0..cases.len());
        let case = cases.swap_remove(idx);

        // Concrete + symbolic execution.
        let trace = execute(program, harness, &case.inputs, &interp_config);
        report.executions += 1;
        report.coverage.extend(trace.coverage.iter().copied());
        report.matcher_fast_path += trace.matcher_fast_path;
        report.matcher_fallback += trace.matcher_fallback;
        for &failure in &trace.assertion_failures {
            if !report.bugs.iter().any(|(id, _)| *id == failure) {
                report.bugs.push((failure, case.inputs.clone()));
            }
        }

        if !config.support.models_regex() && trace.path.is_empty() {
            continue;
        }

        // Generational search: flip every clause of the trace. The
        // queue-growth budget is fixed *before* solving (at most `room`
        // flips can enqueue anything), so the set of solved flips — and
        // with it the report — does not depend on solve results
        // arriving in any particular order.
        let queued: usize = buckets.values().map(Vec::len).sum();
        let room = (config.max_executions * 4).saturating_sub(report.executions + queued);
        let flips = trace.path.len().min(config.max_flips_per_trace).min(room);
        observer(&trace, flips);
        let results = solve_trace_flips(&trace, flips, config, &solver, caches, flip_workers);

        // Deterministic post-processing in clause order.
        for (k, result) in results.into_iter().enumerate() {
            report.record_query(result.record);
            if let Some(mut inputs) = result.inputs {
                // Pad to the harness arity.
                while inputs.len() < harness.input_count() {
                    inputs.push(String::new());
                }
                if seen_inputs.insert(inputs.clone()) {
                    report.tests_generated += 1;
                    buckets
                        .entry(trace.path[k].branch_id)
                        .or_default()
                        .push(TestCase { inputs });
                }
            }
        }
    }
    report
}

/// Builds the solver a run (engine or exploration loop) queries
/// through: the configured limits, the shared query cache when its
/// capacity is non-zero, and the resident DFA tables when the cache
/// set carries them.
pub(crate) fn build_solver(config: &EngineConfig, caches: &DseCaches) -> Solver {
    // A zero-capacity query cache is fully disabled: skip attaching it
    // so the uncached baseline pays no canonicalization overhead.
    let mut solver = if caches.query.capacity() > 0 {
        Solver::new(config.solver.clone()).with_cache(caches.query.clone())
    } else {
        Solver::new(config.solver.clone())
    };
    if let Some(tables) = &caches.dfa {
        solver = solver.with_dfa_tables(tables);
    }
    solver
}

/// Solves the first `flips` clause flips of a trace, returning results
/// indexed by clause. Under [`strsolve::SolverConfig::incremental`]
/// (the default) the flips share one [`TraceFlipSession`]; otherwise
/// each flip rebuilds its query from scratch. Either way the flips fan
/// out over `workers` threads via [`fan_out_flips`].
pub(crate) fn solve_trace_flips(
    trace: &crate::sym::Trace,
    flips: usize,
    config: &EngineConfig,
    solver: &Solver,
    caches: &DseCaches,
    workers: usize,
) -> Vec<FlipResult> {
    if config.solver.incremental {
        // Assumption-stack mode: canonicalize the shared prefix once
        // (serially), then solve each flip against it as a retractable
        // assumption. Verdicts are identical to the from-scratch path
        // (see `tests/incremental_differential.rs`).
        let session = TraceFlipSession::build(
            trace,
            flips,
            config.support,
            solver,
            config.refinement_limit,
            &config.build,
            caches,
        );
        return fan_out_flips(flips, workers, |k| session.solve(k));
    }
    fan_out_flips(flips, workers, |k| {
        solve_flip(
            trace,
            k,
            config.support,
            solver,
            config.refinement_limit,
            &config.build,
            caches,
        )
    })
}

/// Runs `one_flip` for every clause index, returning results in clause
/// order — concurrently over `workers` scoped threads when more than
/// one is requested, serially otherwise. Work is handed out through an
/// atomic cursor; results land in their clause slot, so the returned
/// order (and everything derived from it) is worker-count-independent.
fn fan_out_flips(
    flips: usize,
    workers: usize,
    one_flip: impl Fn(usize) -> FlipResult + Sync,
) -> Vec<FlipResult> {
    if workers <= 1 || flips <= 1 {
        return (0..flips).map(&one_flip).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<FlipResult>>> = Mutex::new((0..flips).map(|_| None).collect());
    thread::scope(|scope| {
        for _ in 0..workers.min(flips) {
            scope.spawn(|_| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= flips {
                    break;
                }
                let result = one_flip(k);
                slots.lock()[k] = Some(result);
            });
        }
    })
    .expect("flip worker panicked");
    slots
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("all flips solved"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str, harness: Harness, config: EngineConfig) -> Report {
        let program = parse_program(src).expect("parse");
        run_dse(&program, &harness, &config)
    }

    #[test]
    fn covers_both_branches_of_string_equality() {
        let report = run(
            r#"function f(x) {
                if (x === "magic") { return 1; } else { return 0; }
            }"#,
            Harness::strings("f", 1),
            EngineConfig {
                max_executions: 8,
                ..EngineConfig::default()
            },
        );
        assert!(report.coverage_fraction() > 0.99, "{report:?}");
        assert!(report.tests_generated >= 1);
    }

    #[test]
    fn covers_regex_guarded_code() {
        let report = run(
            r#"function f(x) {
                if (/^[0-9]+$/.test(x)) { return "digits"; }
                return "other";
            }"#,
            Harness::strings("f", 1),
            EngineConfig {
                max_executions: 8,
                ..EngineConfig::default()
            },
        );
        assert!(report.coverage_fraction() > 0.99, "{report:?}");
    }

    #[test]
    fn concrete_level_cannot_flip_regex() {
        let report = run(
            r#"function f(x) {
                if (/^zz+q$/.test(x)) { return 1; }
                return 0;
            }"#,
            Harness::strings("f", 1),
            EngineConfig {
                support: SupportLevel::Concrete,
                max_executions: 8,
                ..EngineConfig::default()
            },
        );
        // The then-branch is unreachable without regex modeling.
        assert!(report.coverage_fraction() < 1.0);
    }

    #[test]
    fn finds_listing1_bug() {
        // Listing 1 of the paper (§3.2), adapted to the mini language:
        // the assertion fails for "<timeout></timeout>" because the
        // Kleene star admits an empty numeric part.
        let src = r#"function f(args) {
            let timeout = "500";
            for (let i = 0; i < args.length; i = i + 1) {
                let arg = args[i];
                let parts = /^<(\w+)>([0-9]*)<\/\1>$/.exec(arg);
                if (parts) {
                    if (parts[1] === "timeout") {
                        timeout = parts[2];
                    }
                }
            }
            assert(/^[0-9]+$/.test(timeout) === true);
        }"#;
        let report = run(
            src,
            Harness::string_array("f", 1),
            EngineConfig {
                max_executions: 48,
                ..EngineConfig::default()
            },
        );
        assert!(
            !report.bugs.is_empty(),
            "the Listing 1 bug must be found: {report:?}"
        );
        // The triggering input must really break the assertion: a
        // <timeout> tag with an empty number.
        let (_, inputs) = &report.bugs[0];
        let mut oracle = es6_matcher::RegExp::new(r"^<(\w+)>([0-9]*)<\/\1>$", "").expect("regex");
        let m = oracle
            .exec(&inputs[0])
            .expect("bug input matches the regex");
        assert_eq!(m.group(1), Some("timeout"));
        assert_eq!(m.group(2), Some(""));
    }

    /// Everything except timing- and scheduling-dependent fields
    /// (durations, cache hit/miss splits under concurrency).
    fn comparable(r: &Report) -> impl PartialEq + std::fmt::Debug {
        (
            r.coverage.clone(),
            r.stmt_count,
            r.executions,
            r.tests_generated,
            r.bugs.clone(),
            r.queries
                .iter()
                .map(|q| {
                    (
                        q.modeled_regex,
                        q.had_captures,
                        q.refinements,
                        q.limit_hit,
                        q.sat,
                    )
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn report_identical_across_flip_worker_counts() {
        let src = r#"function f(x) {
            let m = /^<([a-z]+)>$/.exec(x);
            if (m) { if (m[1] === "timeout") { return 1; } return 2; }
            if (x === "plain") { return 3; }
            return 0;
        }"#;
        let base = EngineConfig {
            max_executions: 12,
            ..EngineConfig::default()
        };
        let serial = run(
            src,
            Harness::strings("f", 1),
            EngineConfig {
                flip_workers: 1,
                ..base.clone()
            },
        );
        let parallel = run(
            src,
            Harness::strings("f", 1),
            EngineConfig {
                flip_workers: 8,
                ..base.clone()
            },
        );
        let auto = run(
            src,
            Harness::strings("f", 1),
            EngineConfig {
                flip_workers: 0,
                ..base
            },
        );
        assert_eq!(comparable(&serial), comparable(&parallel));
        assert_eq!(comparable(&serial), comparable(&auto));
    }

    #[test]
    fn caches_do_not_change_the_report() {
        let src = r#"function f(x) {
            if (/^[0-9]+$/.test(x)) { return "digits"; }
            if (/^[a-z]+$/.test(x)) { return "alpha"; }
            return "other";
        }"#;
        let cached = run(
            src,
            Harness::strings("f", 1),
            EngineConfig {
                max_executions: 12,
                ..EngineConfig::default()
            },
        );
        let uncached = run(
            src,
            Harness::strings("f", 1),
            EngineConfig {
                max_executions: 12,
                model_cache_capacity: 0,
                query_cache_capacity: 0,
                ..EngineConfig::default()
            },
        );
        assert_eq!(comparable(&cached), comparable(&uncached));
        // The cached run must actually have exercised the caches. A
        // repeated problem is answered by the verdict cache (whole
        // CEGAR-run replay) before the query cache ever sees it, so the
        // two hit counters are taken together.
        assert!(cached.model_cache_hits > 0, "{cached:?}");
        assert!(
            cached.query_cache_hits + cached.verdict_replays() > 0,
            "{cached:?}"
        );
        assert_eq!(uncached.model_cache_hits, 0);
        assert_eq!(uncached.query_cache_hits, 0);
        assert_eq!(uncached.verdict_replays(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let src = r#"function f(x) {
            if (x === "a") { return 1; }
            if (x === "b") { return 2; }
            return 0;
        }"#;
        let config = EngineConfig {
            max_executions: 8,
            ..EngineConfig::default()
        };
        let r1 = run(src, Harness::strings("f", 1), config.clone());
        let r2 = run(src, Harness::strings("f", 1), config);
        assert_eq!(r1.coverage, r2.coverage);
        assert_eq!(r1.tests_generated, r2.tests_generated);
    }
}

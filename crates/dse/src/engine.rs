//! The DSE driver: generational search with CUPA-style scheduling.
//!
//! Mirrors ExpoSE's architecture (§6.2): each executed test case yields
//! a trace; all feasible clause flips are solved to generate new test
//! cases, which are sorted into buckets keyed by the program fork point
//! that created them; the next test case is drawn from the
//! least-accessed bucket, prioritizing unexplored code.

use std::collections::{HashMap, HashSet};

use expose_core::model::BuildConfig;
use expose_core::SupportLevel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use strsolve::{Solver, SolverConfig};

use crate::ast::{Program, StmtId};
use crate::interp::{execute, Harness, InterpConfig};
use crate::solve::{solve_flip, QueryRecord};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Regex support level (the Table 7 axis).
    pub support: SupportLevel,
    /// Maximum number of concrete executions.
    pub max_executions: usize,
    /// Maximum clause flips attempted per trace.
    pub max_flips_per_trace: usize,
    /// Interpreter step budget per execution.
    pub max_steps: u64,
    /// Solver limits.
    pub solver: SolverConfig,
    /// Model-construction limits.
    pub build: BuildConfig,
    /// CEGAR refinement limit (§7.2 uses 20).
    pub refinement_limit: usize,
    /// RNG seed for bucket sampling (deterministic runs).
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            support: SupportLevel::Refinement,
            max_executions: 64,
            max_flips_per_trace: 24,
            max_steps: 100_000,
            solver: SolverConfig::default(),
            build: BuildConfig::default(),
            refinement_limit: 20,
            seed: 0x5eed,
        }
    }
}

/// The result of a DSE run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Covered statement ids.
    pub coverage: HashSet<StmtId>,
    /// Total statements in the program.
    pub stmt_count: u32,
    /// Number of concrete executions performed.
    pub executions: usize,
    /// Number of distinct inputs generated (tests).
    pub tests_generated: usize,
    /// Statement ids of failed assertions, with the triggering inputs.
    pub bugs: Vec<(StmtId, Vec<String>)>,
    /// Per-query statistics (Table 8 source data).
    pub queries: Vec<QueryRecord>,
}

impl Report {
    /// Statement coverage as a fraction in `[0, 1]`.
    pub fn coverage_fraction(&self) -> f64 {
        if self.stmt_count == 0 {
            return 0.0;
        }
        self.coverage.len() as f64 / f64::from(self.stmt_count)
    }
}

/// A queued test case.
#[derive(Debug, Clone)]
struct TestCase {
    inputs: Vec<String>,
}

/// Runs dynamic symbolic execution on a program.
///
/// # Examples
///
/// Finding the Listing 1 bug (§3.2): the engine discovers the input
/// `"<timeout></timeout>"` that makes the assertion fail.
///
/// ```
/// use expose_dse::{run_dse, EngineConfig, Harness, parser::parse_program};
///
/// let program = parse_program(r#"
///     function f(x) {
///         if (/^a+$/.test(x)) { return 1; }
///         return 0;
///     }
/// "#)?;
/// let report = run_dse(&program, &Harness::strings("f", 1), &EngineConfig::default());
/// assert!(report.coverage_fraction() > 0.9);
/// # Ok::<(), expose_dse::parser::ParseError>(())
/// ```
pub fn run_dse(program: &Program, harness: &Harness, config: &EngineConfig) -> Report {
    let mut report = Report {
        stmt_count: program.stmt_count,
        ..Report::default()
    };
    let solver = Solver::new(config.solver.clone());
    let interp_config = InterpConfig {
        support: config.support,
        max_steps: config.max_steps,
    };
    let mut rng = StdRng::seed_from_u64(config.seed);

    // CUPA buckets: fork point → queued cases, with access counts.
    let mut buckets: HashMap<StmtId, Vec<TestCase>> = HashMap::new();
    let mut accesses: HashMap<StmtId, usize> = HashMap::new();
    let mut seen_inputs: HashSet<Vec<String>> = HashSet::new();

    let seed_case = TestCase {
        inputs: vec![String::new(); harness.input_count()],
    };
    seen_inputs.insert(seed_case.inputs.clone());
    buckets.entry(0).or_default().push(seed_case);

    while report.executions < config.max_executions {
        // Pick the least-accessed non-empty bucket.
        let Some(&bucket_key) = buckets
            .iter()
            .filter(|(_, cases)| !cases.is_empty())
            .map(|(k, _)| k)
            .min_by_key(|k| accesses.get(k).copied().unwrap_or(0))
        else {
            break;
        };
        *accesses.entry(bucket_key).or_insert(0) += 1;
        let cases = buckets.get_mut(&bucket_key).expect("bucket exists");
        let idx = rng.random_range(0..cases.len());
        let case = cases.swap_remove(idx);

        // Concrete + symbolic execution.
        let trace = execute(program, harness, &case.inputs, &interp_config);
        report.executions += 1;
        report.coverage.extend(trace.coverage.iter().copied());
        for &failure in &trace.assertion_failures {
            if !report.bugs.iter().any(|(id, _)| *id == failure) {
                report.bugs.push((failure, case.inputs.clone()));
            }
        }

        if !config.support.models_regex() && trace.path.is_empty() {
            continue;
        }

        // Generational search: flip every clause of the trace.
        let flips = trace.path.len().min(config.max_flips_per_trace);
        for k in 0..flips {
            if report.executions + buckets.values().map(Vec::len).sum::<usize>()
                >= config.max_executions * 4
            {
                break;
            }
            let result = solve_flip(
                &trace,
                k,
                config.support,
                &solver,
                config.refinement_limit,
                &config.build,
            );
            report.queries.push(result.record.clone());
            if let Some(mut inputs) = result.inputs {
                // Pad to the harness arity.
                while inputs.len() < harness.input_count() {
                    inputs.push(String::new());
                }
                if seen_inputs.insert(inputs.clone()) {
                    report.tests_generated += 1;
                    buckets
                        .entry(trace.path[k].branch_id)
                        .or_default()
                        .push(TestCase { inputs });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str, harness: Harness, config: EngineConfig) -> Report {
        let program = parse_program(src).expect("parse");
        run_dse(&program, &harness, &config)
    }

    #[test]
    fn covers_both_branches_of_string_equality() {
        let report = run(
            r#"function f(x) {
                if (x === "magic") { return 1; } else { return 0; }
            }"#,
            Harness::strings("f", 1),
            EngineConfig {
                max_executions: 8,
                ..EngineConfig::default()
            },
        );
        assert!(report.coverage_fraction() > 0.99, "{report:?}");
        assert!(report.tests_generated >= 1);
    }

    #[test]
    fn covers_regex_guarded_code() {
        let report = run(
            r#"function f(x) {
                if (/^[0-9]+$/.test(x)) { return "digits"; }
                return "other";
            }"#,
            Harness::strings("f", 1),
            EngineConfig {
                max_executions: 8,
                ..EngineConfig::default()
            },
        );
        assert!(report.coverage_fraction() > 0.99, "{report:?}");
    }

    #[test]
    fn concrete_level_cannot_flip_regex() {
        let report = run(
            r#"function f(x) {
                if (/^zz+q$/.test(x)) { return 1; }
                return 0;
            }"#,
            Harness::strings("f", 1),
            EngineConfig {
                support: SupportLevel::Concrete,
                max_executions: 8,
                ..EngineConfig::default()
            },
        );
        // The then-branch is unreachable without regex modeling.
        assert!(report.coverage_fraction() < 1.0);
    }

    #[test]
    fn finds_listing1_bug() {
        // Listing 1 of the paper (§3.2), adapted to the mini language:
        // the assertion fails for "<timeout></timeout>" because the
        // Kleene star admits an empty numeric part.
        let src = r#"function f(args) {
            let timeout = "500";
            for (let i = 0; i < args.length; i = i + 1) {
                let arg = args[i];
                let parts = /^<(\w+)>([0-9]*)<\/\1>$/.exec(arg);
                if (parts) {
                    if (parts[1] === "timeout") {
                        timeout = parts[2];
                    }
                }
            }
            assert(/^[0-9]+$/.test(timeout) === true);
        }"#;
        let report = run(
            src,
            Harness::string_array("f", 1),
            EngineConfig {
                max_executions: 48,
                ..EngineConfig::default()
            },
        );
        assert!(
            !report.bugs.is_empty(),
            "the Listing 1 bug must be found: {report:?}"
        );
        // The triggering input must really break the assertion: a
        // <timeout> tag with an empty number.
        let (_, inputs) = &report.bugs[0];
        let mut oracle = es6_matcher::RegExp::new(r"^<(\w+)>([0-9]*)<\/\1>$", "").expect("regex");
        let m = oracle
            .exec(&inputs[0])
            .expect("bug input matches the regex");
        assert_eq!(m.group(1), Some("timeout"));
        assert_eq!(m.group(2), Some(""));
    }

    #[test]
    fn deterministic_given_seed() {
        let src = r#"function f(x) {
            if (x === "a") { return 1; }
            if (x === "b") { return 2; }
            return 0;
        }"#;
        let config = EngineConfig {
            max_executions: 8,
            ..EngineConfig::default()
        };
        let r1 = run(src, Harness::strings("f", 1), config.clone());
        let r2 = run(src, Harness::strings("f", 1), config);
        assert_eq!(r1.coverage, r2.coverage);
        assert_eq!(r1.tests_generated, r2.tests_generated);
    }
}

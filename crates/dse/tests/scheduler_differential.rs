//! Scheduler determinism: the work-stealing sharded scheduler must
//! produce the same results as serial execution — for every worker
//! count, under job-submission-order shuffles, and with shared vs
//! fresh caches — over a seeded corpus of generated DSE programs.
//!
//! "Same results" means the deterministic projection of a report:
//! coverage, executions, generated tests, bugs, and the per-query
//! verdict trail. Wall-clock, which shard ran a job, and cache
//! hit/miss splits are scheduling-dependent by design and excluded
//! (the same convention the engine's own `flip_workers` tests use).

use std::collections::HashMap;

use expose_dse::parser::parse_program;
use expose_dse::sched::{Scheduler, SchedulerConfig};
use expose_dse::{run_dse, BatchOptions, CacheSet, EngineConfig, Harness, Job, Report};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The scheduling-invariant projection of a report.
#[derive(Debug, Clone, PartialEq)]
struct Deterministic {
    coverage: Vec<u32>,
    stmt_count: u32,
    executions: usize,
    tests_generated: usize,
    bugs: Vec<(u32, Vec<String>)>,
    verdicts: Vec<(bool, usize, bool)>,
}

fn project(report: &Report) -> Deterministic {
    let mut coverage: Vec<u32> = report.coverage.iter().copied().collect();
    coverage.sort_unstable();
    Deterministic {
        coverage,
        stmt_count: report.stmt_count,
        executions: report.executions,
        tests_generated: report.tests_generated,
        bugs: report.bugs.clone(),
        verdicts: report
            .queries
            .iter()
            .map(|q| (q.sat, q.refinements, q.limit_hit))
            .collect(),
    }
}

/// A seeded corpus of jobs: generated Table 7 programs on a small
/// engine budget (the suite runs in debug CI).
fn corpus_jobs(programs: usize, seed: u64) -> Vec<Job> {
    corpus::generate_dse_programs(programs, seed)
        .into_iter()
        .map(|p| Job {
            name: p.name.clone(),
            program: parse_program(&p.source)
                .unwrap_or_else(|e| panic!("{} must parse: {e}", p.name)),
            harness: Harness::strings(&p.entry, p.arity),
            config: EngineConfig {
                max_executions: 6,
                max_steps: 20_000,
                ..EngineConfig::default()
            },
        })
        .collect()
}

/// The serial oracle: each job alone, fresh caches.
fn serial_reference(jobs: &[Job]) -> Vec<Deterministic> {
    jobs.iter()
        .map(|job| project(&run_dse(&job.program, &job.harness, &job.config)))
        .collect()
}

#[test]
fn identical_reports_for_worker_counts_1_2_8() {
    let jobs = corpus_jobs(8, 0x5eed1);
    let reference = serial_reference(&jobs);
    for workers in [1, 2, 8] {
        let reports = BatchOptions::new().workers(workers).run(jobs.clone());
        let projected: Vec<Deterministic> = reports.iter().map(project).collect();
        assert_eq!(
            projected, reference,
            "workers={workers} diverged from the serial oracle"
        );
    }
}

#[test]
fn submission_order_shuffles_do_not_change_results() {
    let jobs = corpus_jobs(8, 0x5eed2);
    let mut reference: HashMap<String, Deterministic> = jobs
        .iter()
        .zip(serial_reference(&jobs))
        .map(|(job, projected)| (job.name.clone(), projected))
        .collect();

    let mut rng = StdRng::seed_from_u64(0xf00d);
    for round in 0..3 {
        // Fisher–Yates over a fresh copy, so each round submits the
        // same jobs in a different order.
        let mut shuffled = jobs.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..=i);
            shuffled.swap(i, j);
        }
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: 4,
                ..SchedulerConfig::default()
            },
            CacheSet::session(512, 2048, 512),
        );
        for job in shuffled {
            scheduler.submit(job);
        }
        scheduler.close();
        let mut seen = 0;
        while let Some(completion) = scheduler.next_ordered() {
            let report = completion.outcome.expect("job ran");
            let expected = reference
                .get(&completion.name)
                .unwrap_or_else(|| panic!("unknown job {}", completion.name));
            assert_eq!(
                &project(&report),
                expected,
                "round {round}: job {} diverged under shuffle",
                completion.name
            );
            seen += 1;
        }
        assert_eq!(seen, jobs.len(), "round {round}: missing completions");
    }

    // Guard against a vacuous reference (e.g. all-empty projections).
    assert!(
        reference.values().any(|d| !d.verdicts.is_empty()),
        "corpus produced no solver queries at all"
    );
    reference.clear();
}

#[test]
fn shared_and_fresh_caches_agree() {
    let jobs = corpus_jobs(8, 0x5eed3);
    let reference = serial_reference(&jobs); // fresh caches per job

    // One shared session cache set for the whole batch, exercised
    // twice so the second pass runs against fully warm caches.
    let caches = CacheSet::session(512, 2048, 512);
    let batch = BatchOptions::new().workers(4).caches(caches.clone());
    let cold = batch.run(jobs.clone());
    let warm = batch.run(jobs.clone());
    let cold: Vec<Deterministic> = cold.iter().map(project).collect();
    let warm: Vec<Deterministic> = warm.iter().map(project).collect();
    assert_eq!(cold, reference, "shared caches changed results (cold)");
    assert_eq!(warm, reference, "shared caches changed results (warm)");

    // The warm pass must actually have hit the shared layers. A
    // repeated CEGAR problem replays from the verdict cache before the
    // query cache ever sees it, so the two counters are one pool.
    assert!(
        caches.query.hits() + caches.verdicts.hits() > 0,
        "neither the query cache nor the verdict cache ever hit"
    );
    let tables = caches.dfa.as_ref().expect("session tables");
    assert!(tables.hits() > 0, "DFA tables never hit");
}

#[test]
fn backpressure_drain_interleaving_preserves_results() {
    let jobs = corpus_jobs(6, 0x5eed4);
    let reference = serial_reference(&jobs);
    let scheduler = Scheduler::start(
        SchedulerConfig {
            workers: 2,
            max_inflight: 2,
        },
        CacheSet::session(512, 2048, 512),
    );
    let projected = std::thread::scope(|scope| {
        let drainer = scope.spawn(|| {
            let mut out = Vec::new();
            while let Some(completion) = scheduler.next_ordered() {
                out.push(project(&completion.outcome.expect("job ran")));
            }
            out
        });
        for job in jobs.clone() {
            scheduler.submit(job); // blocks at 2 in flight
        }
        scheduler.close();
        drainer.join().expect("drainer")
    });
    assert_eq!(projected, reference);
}

//! Parser, AST and analyses for the complete ECMAScript 2015 (ES6)
//! regular expression language.
//!
//! This crate is the syntactic foundation of the PLDI'19 reproduction
//! *Sound Regular Expression Semantics for Dynamic Symbolic Execution of
//! JavaScript*: every other crate in the workspace consumes the [`Ast`]
//! defined here. It provides:
//!
//! * a complete ES6 regex parser ([`parse`], [`Regex::parse_literal`])
//!   with the Annex B web-compatibility tolerances of real engines;
//! * seed-driven random regex generation for the differential fuzzer
//!   ([`arbitrary`]);
//! * character classes and their resolution to scalar ranges
//!   ([`class::ClassSet`]);
//! * flags ([`Flags`]);
//! * the Table 1 rewritings ([`rewrite`]);
//! * the Definition 2 backreference classification ([`analysis`]);
//! * the Table 5 feature survey ([`features::FeatureSet`]).
//!
//! # Examples
//!
//! ```
//! use regex_syntax_es6::{Regex, features::FeatureSet};
//!
//! let re = Regex::parse_literal(r"/<(\w+)>([0-9]*)<\/\1>/")?;
//! assert_eq!(re.capture_count, 2);
//! assert!(FeatureSet::of(&re).backreferences);
//! # Ok::<(), regex_syntax_es6::ParseError>(())
//! ```

pub mod analysis;
pub mod arbitrary;
pub mod ast;
pub mod class;
pub mod features;
pub mod flags;
pub mod parser;
pub mod rewrite;

pub use ast::{AssertionKind, Ast};
pub use flags::Flags;
pub use parser::{parse, ParseError, Regex};

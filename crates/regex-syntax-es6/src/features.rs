//! Regex feature classification for the usage survey (§7.1, Tables 4–5).
//!
//! [`FeatureSet`] records which of the paper's nineteen surveyed features
//! a regex uses. The survey crate aggregates these over whole corpora.

use crate::analysis::has_quantified_backref;
use crate::ast::Ast;
use crate::parser::Regex;

/// The features surveyed in Table 5 of the paper.
///
/// Each field mirrors one row; `FeatureSet::of` computes the set for a
/// parsed regex.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeatureSet {
    /// `( ... )` capture groups.
    pub capture_groups: bool,
    /// The `g` flag.
    pub global_flag: bool,
    /// Bracketed character classes `[...]` or predefined escapes.
    pub character_class: bool,
    /// Greedy `+`.
    pub kleene_plus: bool,
    /// Greedy `*`.
    pub kleene_star: bool,
    /// The `i` flag.
    pub ignore_case_flag: bool,
    /// Ranges `a-z` inside classes.
    pub ranges: bool,
    /// Non-capturing groups `(?: ... )`.
    pub non_capturing: bool,
    /// Bounded repetition `{m}`, `{m,}`, `{m,n}`.
    pub repetition: bool,
    /// Lazy `*?`.
    pub kleene_star_lazy: bool,
    /// The `m` flag.
    pub multiline_flag: bool,
    /// `\b` or `\B`.
    pub word_boundary: bool,
    /// Lazy `+?`.
    pub kleene_plus_lazy: bool,
    /// `(?= ... )` or `(?! ... )`.
    pub lookaheads: bool,
    /// `\1` ... `\99`.
    pub backreferences: bool,
    /// Lazy bounded repetition `{m,n}?`.
    pub repetition_lazy: bool,
    /// Backreferences under (or to groups under) an iterating quantifier.
    pub quantified_backrefs: bool,
    /// The `y` flag.
    pub sticky_flag: bool,
    /// The `u` flag.
    pub unicode_flag: bool,
}

impl FeatureSet {
    /// Computes the feature set of a parsed regex.
    ///
    /// # Examples
    ///
    /// ```
    /// use regex_syntax_es6::{Regex, Flags, features::FeatureSet};
    ///
    /// let re = Regex::new(r"(\w+)-\1", "gi".parse()?)?;
    /// let features = FeatureSet::of(&re);
    /// assert!(features.capture_groups);
    /// assert!(features.backreferences);
    /// assert!(features.global_flag && features.ignore_case_flag);
    /// # Ok::<(), regex_syntax_es6::ParseError>(())
    /// ```
    pub fn of(regex: &Regex) -> FeatureSet {
        let mut set = FeatureSet {
            global_flag: regex.flags.global,
            ignore_case_flag: regex.flags.ignore_case,
            multiline_flag: regex.flags.multiline,
            sticky_flag: regex.flags.sticky,
            unicode_flag: regex.flags.unicode,
            ..FeatureSet::default()
        };
        scan(&regex.ast, &mut set);
        if set.backreferences && has_quantified_backref(&regex.ast) {
            set.quantified_backrefs = true;
        }
        set
    }

    /// True if any non-classical feature is present (capture groups,
    /// backreferences, lookaheads or word boundaries) — the features that
    /// prevent direct translation to the classical word problem (§1).
    pub fn is_non_classical(&self) -> bool {
        self.capture_groups || self.backreferences || self.lookaheads || self.word_boundary
    }

    /// Iterates over `(feature name, present)` pairs in Table 5 row
    /// order.
    pub fn rows(&self) -> [(&'static str, bool); 19] {
        [
            ("Capture Groups", self.capture_groups),
            ("Global Flag", self.global_flag),
            ("Character Class", self.character_class),
            ("Kleene+", self.kleene_plus),
            ("Kleene*", self.kleene_star),
            ("Ignore Case Flag", self.ignore_case_flag),
            ("Ranges", self.ranges),
            ("Non-capturing", self.non_capturing),
            ("Repetition", self.repetition),
            ("Kleene* (Lazy)", self.kleene_star_lazy),
            ("Multiline Flag", self.multiline_flag),
            ("Word Boundary", self.word_boundary),
            ("Kleene+ (Lazy)", self.kleene_plus_lazy),
            ("Lookaheads", self.lookaheads),
            ("Backreferences", self.backreferences),
            ("Repetition (Lazy)", self.repetition_lazy),
            ("Quantified BRefs", self.quantified_backrefs),
            ("Sticky Flag", self.sticky_flag),
            ("Unicode Flag", self.unicode_flag),
        ]
    }
}

fn scan(ast: &Ast, set: &mut FeatureSet) {
    match ast {
        Ast::Class(class) => {
            set.character_class = true;
            if class
                .items
                .iter()
                .any(|item| matches!(item, crate::class::ClassItem::Range(..)))
            {
                set.ranges = true;
            }
        }
        Ast::Assertion(kind) => {
            use crate::ast::AssertionKind::*;
            if matches!(kind, WordBoundary | NotWordBoundary) {
                set.word_boundary = true;
            }
        }
        Ast::Group { ast, .. } => {
            set.capture_groups = true;
            scan(ast, set);
        }
        Ast::NonCapturing(inner) => {
            set.non_capturing = true;
            scan(inner, set);
        }
        Ast::Lookahead { ast, .. } => {
            set.lookaheads = true;
            scan(ast, set);
        }
        Ast::Repeat {
            ast,
            min,
            max,
            lazy,
        } => {
            match (*min, *max, *lazy) {
                (0, None, false) => set.kleene_star = true,
                (0, None, true) => set.kleene_star_lazy = true,
                (1, None, false) => set.kleene_plus = true,
                (1, None, true) => set.kleene_plus_lazy = true,
                (0, Some(1), _) => set.repetition = true, // `?` counted as repetition
                (_, _, false) => set.repetition = true,
                (_, _, true) => set.repetition_lazy = true,
            }
            scan(ast, set);
        }
        Ast::Alt(items) | Ast::Concat(items) => {
            for item in items {
                scan(item, set);
            }
        }
        Ast::Backref(_) => set.backreferences = true,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Flags, Regex};

    fn features(literal: &str) -> FeatureSet {
        FeatureSet::of(&Regex::parse_literal(literal).expect("literal should parse"))
    }

    #[test]
    fn classical_regex_has_no_nonclassical_features() {
        let f = features("/ab*c/");
        assert!(f.kleene_star);
        assert!(!f.is_non_classical());
    }

    #[test]
    fn capture_and_backref() {
        let f = features(r"/(\w+)\s\1/");
        assert!(f.capture_groups);
        assert!(f.backreferences);
        assert!(f.character_class);
        assert!(f.is_non_classical());
        assert!(!f.quantified_backrefs);
    }

    #[test]
    fn quantified_backref_detected() {
        let f = features(r"/((a|b)\2)+/");
        assert!(f.quantified_backrefs);
    }

    #[test]
    fn lazy_variants() {
        let f = features("/a*?b+?c{1,2}?/");
        assert!(f.kleene_star_lazy);
        assert!(f.kleene_plus_lazy);
        assert!(f.repetition_lazy);
    }

    #[test]
    fn flags_recorded() {
        let f = features("/a/gimsuy");
        assert!(f.global_flag);
        assert!(f.ignore_case_flag);
        assert!(f.multiline_flag);
        assert!(f.sticky_flag);
        assert!(f.unicode_flag);
    }

    #[test]
    fn lookahead_and_word_boundary() {
        let f = features(r"/\bfoo(?=bar)/");
        assert!(f.word_boundary);
        assert!(f.lookaheads);
        assert!(f.is_non_classical());
    }

    #[test]
    fn rows_cover_all_19_features() {
        let f = features("/a/");
        assert_eq!(f.rows().len(), 19);
    }

    #[test]
    fn _ignore_case_flag_unused_warning_guard() {
        let _ = Regex::new("a", Flags::empty());
    }
}

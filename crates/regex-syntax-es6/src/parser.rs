//! Recursive-descent parser for the full ES6 regex grammar.
//!
//! The parser follows §21.2.1 of ECMA-262 2015 together with the Annex B
//! web-compatibility extensions that real engines implement: an unmatched
//! `{` that does not begin a quantifier is a literal, `]` outside a class
//! is a literal, and a decimal escape that exceeds the pattern's group
//! count parses as a legacy octal/identity escape rather than an error.

use std::error::Error;
use std::fmt;

use crate::ast::{AssertionKind, Ast};
use crate::class::{ClassItem, ClassSet, PerlClass, PerlKind};
use crate::flags::Flags;

/// An error produced while parsing a regex pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    position: usize,
    message: String,
}

impl ParseError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            position,
            message: message.into(),
        }
    }

    /// Character offset at which the error was detected.
    ///
    /// Offsets are counted in characters, not bytes, so they are stable
    /// for multi-byte (non-ASCII) patterns: an error after `"é"` is at
    /// offset 1, not 2. For [`Regex::parse_literal`] the offset is
    /// relative to the whole literal (the leading `/` is offset 0);
    /// for [`parse`]/[`Regex::new`] it is relative to the pattern body.
    pub fn position(&self) -> usize {
        self.position
    }

    /// The error with its position shifted by `by` characters — used to
    /// rebase a pattern-relative offset into literal-relative space.
    pub(crate) fn offset_by(mut self, by: usize) -> ParseError {
        self.position += by;
        self
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl Error for ParseError {}

/// A parsed regex together with its flags — the analogue of a JavaScript
/// `RegExp` literal such as `/goo+d/gi`.
///
/// # Examples
///
/// ```
/// use regex_syntax_es6::Regex;
///
/// let re = Regex::parse_literal("/goo+d/i")?;
/// assert!(re.flags.ignore_case);
/// assert_eq!(re.capture_count, 0);
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regex {
    /// The pattern body.
    pub ast: Ast,
    /// The flag set.
    pub flags: Flags,
    /// Number of capture groups in the pattern (excluding group 0).
    pub capture_count: u32,
    /// The original source text of the pattern body.
    pub source: String,
}

impl Regex {
    /// Parses a bare pattern with the given flags.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if the pattern is not valid ES6 regex
    /// syntax.
    pub fn new(pattern: &str, flags: Flags) -> Result<Regex, ParseError> {
        let ast = parse(pattern)?;
        let capture_count = ast.capture_count();
        Ok(Regex {
            ast,
            flags,
            capture_count,
            source: pattern.to_string(),
        })
    }

    /// Parses a `/pattern/flags` literal.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if the literal is malformed or the pattern
    /// or flags are invalid.
    pub fn parse_literal(literal: &str) -> Result<Regex, ParseError> {
        let rest = literal
            .strip_prefix('/')
            .ok_or_else(|| ParseError::new(0, "regex literal must start with `/`"))?;
        // Find the closing unescaped `/` that is not inside a class.
        // `split` is a byte offset (for slicing); `split_chars` counts
        // the same prefix in characters so error offsets stay
        // char-correct on multi-byte patterns.
        let mut in_class = false;
        let mut escaped = false;
        let mut split = None;
        let mut split_chars = 0usize;
        for (chars, (i, c)) in rest.char_indices().enumerate() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '[' => in_class = true,
                ']' => in_class = false,
                '/' if !in_class => {
                    split = Some(i);
                    split_chars = chars;
                    break;
                }
                _ => {}
            }
        }
        let split = split.ok_or_else(|| {
            ParseError::new(literal.chars().count(), "unterminated regex literal")
        })?;
        let pattern = &rest[..split];
        // Pattern errors shift by 1 (the opening `/`), flag errors by
        // the opening `/` plus the pattern plus the closing `/`.
        let flags: Flags = rest[split + 1..]
            .parse()
            .map_err(|e: ParseError| e.offset_by(split_chars + 2))?;
        Regex::new(pattern, flags).map_err(|e| e.offset_by(1))
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}/{}", self.source, self.flags)
    }
}

/// Parses a bare ES6 regex pattern into an [`Ast`].
///
/// # Errors
///
/// Returns [`ParseError`] on invalid syntax (unbalanced parentheses,
/// dangling quantifiers, bad escapes, out-of-order class ranges, ...).
///
/// # Examples
///
/// ```
/// use regex_syntax_es6::parse;
///
/// let ast = parse(r"<(\w+)>([0-9]*)<\/\1>")?;
/// assert_eq!(ast.capture_count(), 2);
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let chars: Vec<char> = pattern.chars().collect();
    let total_groups = count_groups(&chars);
    let mut parser = Parser {
        chars: &chars,
        pos: 0,
        next_group: 1,
        total_groups,
    };
    let ast = parser.parse_alternation()?;
    if parser.pos != parser.chars.len() {
        return Err(ParseError::new(
            parser.pos,
            format!("unexpected `{}`", parser.chars[parser.pos]),
        ));
    }
    Ok(ast)
}

/// Counts capturing `(` in a pattern, skipping escapes, classes and `(?`.
fn count_groups(chars: &[char]) -> u32 {
    let mut count = 0;
    let mut i = 0;
    let mut in_class = false;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 1,
            '[' if !in_class => in_class = true,
            ']' if in_class => in_class = false,
            '(' if !in_class && chars.get(i + 1) != Some(&'?') => {
                count += 1;
            }
            _ => {}
        }
        i += 1;
    }
    count
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
    next_group: u32,
    total_groups: u32,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, message)
    }

    fn parse_alternation(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.parse_alternative()?];
        while self.eat('|') {
            branches.push(self.parse_alternative()?);
        }
        Ok(Ast::alt(branches))
    }

    fn parse_alternative(&mut self) -> Result<Ast, ParseError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_term()?);
        }
        Ok(Ast::concat(items))
    }

    fn parse_term(&mut self) -> Result<Ast, ParseError> {
        let atom = self.parse_atom()?;
        self.parse_quantifier(atom)
    }

    fn parse_quantifier(&mut self, atom: Ast) -> Result<Ast, ParseError> {
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => match self.try_parse_bounds() {
                Some(bounds) => bounds,
                None => return Ok(atom), // Annex B: literal `{`
            },
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::Assertion(_) | Ast::Lookahead { .. } | Ast::Empty) {
            return Err(self.error("quantifier follows nothing quantifiable"));
        }
        if let Some(max) = max {
            if min > max {
                return Err(self.error(format!("quantifier range out of order: {{{min},{max}}}")));
            }
        }
        let lazy = self.eat('?');
        Ok(Ast::Repeat {
            ast: Box::new(atom),
            min,
            max,
            lazy,
        })
    }

    /// Attempts to parse `{m}`, `{m,}` or `{m,n}` starting at `{`;
    /// restores the position and returns `None` when the braces do not
    /// form a quantifier (Annex B tolerance).
    fn try_parse_bounds(&mut self) -> Option<(u32, Option<u32>)> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some('{'));
        self.bump();
        let Some(min) = self.parse_decimal() else {
            self.pos = start;
            return None;
        };
        let result = if self.eat('}') {
            Some((min, Some(min)))
        } else if self.eat(',') {
            if self.eat('}') {
                Some((min, None))
            } else {
                let max = self.parse_decimal();
                match (max, self.eat('}')) {
                    (Some(max), true) => Some((min, Some(max))),
                    _ => None,
                }
            }
        } else {
            None
        };
        if result.is_none() {
            self.pos = start;
        }
        result
    }

    fn parse_decimal(&mut self) -> Option<u32> {
        let mut value: u64 = 0;
        let mut any = false;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                any = true;
                value = value.saturating_mul(10).saturating_add(u64::from(d));
                self.bump();
            } else {
                break;
            }
        }
        if any {
            Some(value.min(u64::from(u32::MAX)) as u32)
        } else {
            None
        }
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseError> {
        let c = self
            .peek()
            .ok_or_else(|| self.error("unexpected end of pattern"))?;
        match c {
            '^' => {
                self.bump();
                Ok(Ast::Assertion(AssertionKind::StartAnchor))
            }
            '$' => {
                self.bump();
                Ok(Ast::Assertion(AssertionKind::EndAnchor))
            }
            '.' => {
                self.bump();
                Ok(Ast::Dot)
            }
            '(' => self.parse_group(),
            '[' => self.parse_class(),
            '\\' => self.parse_escape(),
            '*' | '+' | '?' => Err(self.error(format!("dangling quantifier `{c}`"))),
            ')' => Err(self.error("unmatched `)`")),
            _ => {
                self.bump();
                Ok(Ast::Literal(c))
            }
        }
    }

    fn parse_group(&mut self) -> Result<Ast, ParseError> {
        debug_assert_eq!(self.peek(), Some('('));
        self.bump();
        let kind = if self.eat('?') {
            match self.peek() {
                Some(':') => {
                    self.bump();
                    GroupKind::NonCapturing
                }
                Some('=') => {
                    self.bump();
                    GroupKind::Lookahead { negative: false }
                }
                Some('!') => {
                    self.bump();
                    GroupKind::Lookahead { negative: true }
                }
                Some('<') => {
                    return Err(self.error("lookbehind and named groups are not part of ES6"))
                }
                _ => return Err(self.error("invalid group modifier after `(?`")),
            }
        } else {
            let index = self.next_group;
            self.next_group += 1;
            GroupKind::Capturing { index }
        };
        let inner = self.parse_alternation()?;
        if !self.eat(')') {
            return Err(self.error("unterminated group: expected `)`"));
        }
        Ok(match kind {
            GroupKind::Capturing { index } => Ast::Group {
                index,
                ast: Box::new(inner),
            },
            GroupKind::NonCapturing => Ast::NonCapturing(Box::new(inner)),
            GroupKind::Lookahead { negative } => Ast::Lookahead {
                negative,
                ast: Box::new(inner),
            },
        })
    }

    fn parse_class(&mut self) -> Result<Ast, ParseError> {
        debug_assert_eq!(self.peek(), Some('['));
        self.bump();
        let negated = self.eat('^');
        let mut items = Vec::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| self.error("unterminated character class"))?;
            if c == ']' {
                self.bump();
                break;
            }
            let first = self.parse_class_member()?;
            // Try to form a range `first-last`.
            if self.peek() == Some('-') && self.peek_at(1).is_some() && self.peek_at(1) != Some(']')
            {
                if let ClassMember::Char(lo) = first {
                    self.bump(); // `-`
                    let second = self.parse_class_member()?;
                    match second {
                        ClassMember::Char(hi) => {
                            if (lo as u32) > (hi as u32) {
                                return Err(
                                    self.error(format!("class range out of order: {lo}-{hi}"))
                                );
                            }
                            items.push(ClassItem::Range(lo, hi));
                            continue;
                        }
                        ClassMember::Perl(p) => {
                            // Annex B: `[a-\d]` treats `-` as literal.
                            items.push(ClassItem::Single(lo));
                            items.push(ClassItem::Single('-'));
                            items.push(ClassItem::Perl(p));
                            continue;
                        }
                    }
                }
            }
            match first {
                ClassMember::Char(c) => items.push(ClassItem::Single(c)),
                ClassMember::Perl(p) => items.push(ClassItem::Perl(p)),
            }
        }
        Ok(Ast::Class(ClassSet::new(negated, items)))
    }

    fn parse_class_member(&mut self) -> Result<ClassMember, ParseError> {
        let c = self
            .bump()
            .ok_or_else(|| self.error("unterminated character class"))?;
        if c != '\\' {
            return Ok(ClassMember::Char(c));
        }
        let esc = self
            .bump()
            .ok_or_else(|| self.error("trailing backslash in class"))?;
        Ok(match esc {
            'd' => ClassMember::Perl(PerlClass {
                kind: PerlKind::Digit,
                negated: false,
            }),
            'D' => ClassMember::Perl(PerlClass {
                kind: PerlKind::Digit,
                negated: true,
            }),
            'w' => ClassMember::Perl(PerlClass {
                kind: PerlKind::Word,
                negated: false,
            }),
            'W' => ClassMember::Perl(PerlClass {
                kind: PerlKind::Word,
                negated: true,
            }),
            's' => ClassMember::Perl(PerlClass {
                kind: PerlKind::Space,
                negated: false,
            }),
            'S' => ClassMember::Perl(PerlClass {
                kind: PerlKind::Space,
                negated: true,
            }),
            'b' => ClassMember::Char('\x08'), // backspace inside a class
            other => ClassMember::Char(self.finish_char_escape(other)?),
        })
    }

    fn parse_escape(&mut self) -> Result<Ast, ParseError> {
        debug_assert_eq!(self.peek(), Some('\\'));
        self.bump();
        let c = self
            .bump()
            .ok_or_else(|| self.error("trailing backslash"))?;
        Ok(match c {
            'b' => Ast::Assertion(AssertionKind::WordBoundary),
            'B' => Ast::Assertion(AssertionKind::NotWordBoundary),
            'd' => Ast::Class(ClassSet::perl(PerlKind::Digit, false)),
            'D' => Ast::Class(ClassSet::perl(PerlKind::Digit, true)),
            'w' => Ast::Class(ClassSet::perl(PerlKind::Word, false)),
            'W' => Ast::Class(ClassSet::perl(PerlKind::Word, true)),
            's' => Ast::Class(ClassSet::perl(PerlKind::Space, false)),
            'S' => Ast::Class(ClassSet::perl(PerlKind::Space, true)),
            '1'..='9' => {
                // Decimal escape: a backreference when the pattern has
                // that many groups, otherwise a legacy octal escape
                // (Annex B).
                let start = self.pos - 1;
                let mut n = c.to_digit(10).expect("digit");
                while let Some(d) = self.peek().and_then(|c| c.to_digit(10)) {
                    let candidate = n * 10 + d;
                    if candidate > self.total_groups {
                        break;
                    }
                    n = candidate;
                    self.bump();
                }
                if n <= self.total_groups {
                    Ast::Backref(n)
                } else {
                    // Legacy octal: reinterpret the digits at `start`.
                    self.pos = start;
                    let value = self.parse_legacy_octal();
                    Ast::Literal(
                        char::from_u32(value).ok_or_else(|| self.error("invalid octal escape"))?,
                    )
                }
            }
            other => Ast::Literal(self.finish_char_escape(other)?),
        })
    }

    /// Handles the character-valued escapes shared between classes and
    /// the top level: control escapes, hex, unicode, null and identity.
    fn finish_char_escape(&mut self, c: char) -> Result<char, ParseError> {
        Ok(match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            'v' => '\x0B',
            'f' => '\x0C',
            '0' => {
                // `\0` is NUL unless followed by a digit (legacy octal).
                if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos -= 1;
                    let value = self.parse_legacy_octal();
                    char::from_u32(value).ok_or_else(|| self.error("invalid octal escape"))?
                } else {
                    '\0'
                }
            }
            'c' => {
                // Control escape `\cX`.
                match self.peek() {
                    Some(l) if l.is_ascii_alphabetic() => {
                        self.bump();
                        char::from_u32((l as u32) % 32).expect("control char")
                    }
                    // Annex B: a lone `\c` is a literal backslash-c; we
                    // return `c` and leave the next char alone.
                    _ => 'c',
                }
            }
            'x' => {
                let h1 = self.hex_digit()?;
                let h2 = self.hex_digit()?;
                char::from_u32(h1 * 16 + h2).ok_or_else(|| self.error("invalid hex escape"))?
            }
            'u' => self.parse_unicode_escape()?,
            other => other, // identity escape
        })
    }

    fn parse_legacy_octal(&mut self) -> u32 {
        let mut value = 0u32;
        let mut digits = 0;
        while digits < 3 {
            match self.peek().and_then(|c| c.to_digit(8)) {
                Some(d) if value * 8 + d <= 0xFF => {
                    value = value * 8 + d;
                    digits += 1;
                    self.bump();
                }
                _ => break,
            }
        }
        value
    }

    fn hex_digit(&mut self) -> Result<u32, ParseError> {
        self.bump()
            .and_then(|c| c.to_digit(16))
            .ok_or_else(|| self.error("expected hex digit"))
    }

    fn parse_unicode_escape(&mut self) -> Result<char, ParseError> {
        if self.eat('{') {
            // `\u{XXXXXX}` (u-flag syntax; accepted unconditionally).
            let mut value = 0u32;
            let mut any = false;
            while let Some(d) = self.peek().and_then(|c| c.to_digit(16)) {
                any = true;
                value = value.saturating_mul(16).saturating_add(d);
                self.bump();
            }
            if !any || !self.eat('}') {
                return Err(self.error("malformed \\u{...} escape"));
            }
            char::from_u32(value).ok_or_else(|| self.error("invalid code point"))
        } else {
            let mut value = 0u32;
            for _ in 0..4 {
                value = value * 16 + self.hex_digit()?;
            }
            // Surrogates cannot be `char`; map them to the replacement
            // character (they only arise in malformed UTF-16 patterns).
            Ok(char::from_u32(value).unwrap_or('\u{FFFD}'))
        }
    }
}

enum GroupKind {
    Capturing { index: u32 },
    NonCapturing,
    Lookahead { negative: bool },
}

enum ClassMember {
    Char(char),
    Perl(PerlClass),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(pattern: &str) -> Ast {
        parse(pattern).expect("pattern should parse")
    }

    #[test]
    fn literal_concat() {
        assert_eq!(
            p("abc"),
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('b'),
                Ast::Literal('c')
            ])
        );
    }

    #[test]
    fn alternation_branches() {
        match p("a|b|c") {
            Ast::Alt(items) => assert_eq!(items.len(), 3),
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn empty_alternation_branch() {
        match p("a|") {
            Ast::Alt(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1], Ast::Empty);
            }
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn quantifiers() {
        assert_eq!(
            p("a*"),
            Ast::Repeat {
                ast: Box::new(Ast::Literal('a')),
                min: 0,
                max: None,
                lazy: false
            }
        );
        assert_eq!(
            p("a+?"),
            Ast::Repeat {
                ast: Box::new(Ast::Literal('a')),
                min: 1,
                max: None,
                lazy: true
            }
        );
        assert_eq!(
            p("a{2,5}"),
            Ast::Repeat {
                ast: Box::new(Ast::Literal('a')),
                min: 2,
                max: Some(5),
                lazy: false
            }
        );
        assert_eq!(
            p("a{3}"),
            Ast::Repeat {
                ast: Box::new(Ast::Literal('a')),
                min: 3,
                max: Some(3),
                lazy: false
            }
        );
        assert_eq!(
            p("a{2,}"),
            Ast::Repeat {
                ast: Box::new(Ast::Literal('a')),
                min: 2,
                max: None,
                lazy: false
            }
        );
    }

    #[test]
    fn braces_literal_when_not_quantifier() {
        // Annex B tolerance: `{x}` is a literal sequence.
        assert_eq!(
            p("a{x}"),
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('{'),
                Ast::Literal('x'),
                Ast::Literal('}'),
            ])
        );
    }

    #[test]
    fn group_numbering_by_open_paren() {
        // The paper's example: /a|((b)*c)*d/ numbers outer group 1, inner 2.
        let ast = p("a|((b)*c)*d");
        assert_eq!(ast.capture_indices(), vec![1, 2]);
    }

    #[test]
    fn noncapturing_and_lookahead() {
        assert!(matches!(p("(?:ab)"), Ast::NonCapturing(_)));
        assert!(matches!(
            p("(?=a)"),
            Ast::Lookahead {
                negative: false,
                ..
            }
        ));
        assert!(matches!(p("(?!a)"), Ast::Lookahead { negative: true, .. }));
    }

    #[test]
    fn backreference_vs_octal() {
        assert_eq!(p(r"(a)\1").capture_count(), 1);
        assert!(matches!(p(r"(a)\1"), Ast::Concat(v) if matches!(v[1], Ast::Backref(1))));
        // No group 2 exists: `\2` is a legacy octal escape (STX, 0x02).
        assert!(matches!(p(r"(a)\2"), Ast::Concat(v) if v[1] == Ast::Literal('\x02')));
    }

    #[test]
    fn multi_digit_backreference() {
        let mut pat = String::new();
        for _ in 0..11 {
            pat.push_str("(a)");
        }
        pat.push_str(r"\11");
        let ast = p(&pat);
        assert!(ast.has_backref());
        match ast {
            Ast::Concat(items) => assert_eq!(*items.last().expect("last"), Ast::Backref(11)),
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn escapes() {
        assert_eq!(p(r"\n"), Ast::Literal('\n'));
        assert_eq!(p(r"\x41"), Ast::Literal('A'));
        assert_eq!(p(r"A"), Ast::Literal('A'));
        assert_eq!(p(r"\u{1F600}"), Ast::Literal('\u{1F600}'));
        assert_eq!(p(r"\cA"), Ast::Literal('\x01'));
        assert_eq!(p(r"\0"), Ast::Literal('\0'));
        assert_eq!(p(r"\$"), Ast::Literal('$'));
    }

    #[test]
    fn class_parsing() {
        let ast = p(r"[a-z0-9_\d]");
        match ast {
            Ast::Class(set) => {
                assert!(!set.negated);
                assert!(set.contains('m'));
                assert!(set.contains('5'));
                assert!(set.contains('_'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn negated_class_parsing() {
        let ast = p(r"[^abc]");
        match ast {
            Ast::Class(set) => {
                assert!(set.negated);
                assert!(!set.contains('a'));
                assert!(set.contains('d'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn class_backspace_escape() {
        match p(r"[\b]") {
            Ast::Class(set) => assert!(set.contains('\x08')),
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn word_boundary_outside_class() {
        assert_eq!(p(r"\b"), Ast::Assertion(AssertionKind::WordBoundary));
        assert_eq!(p(r"\B"), Ast::Assertion(AssertionKind::NotWordBoundary));
    }

    #[test]
    fn anchors() {
        let ast = p("^ab$");
        match ast {
            Ast::Concat(items) => {
                assert_eq!(items[0], Ast::Assertion(AssertionKind::StartAnchor));
                assert_eq!(items[3], Ast::Assertion(AssertionKind::EndAnchor));
            }
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse("(a").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("[a").is_err());
        assert!(parse(r"\x4").is_err());
        assert!(parse("a{3,1}").is_err());
        assert!(parse("(?<name>a)").is_err());
        assert!(parse("[z-a]").is_err());
        assert!(parse("(?=a)*").is_err());
    }

    #[test]
    fn paper_xml_regex() {
        let ast = p(r"<(\w+)>([0-9]*)<\/\1>");
        assert_eq!(ast.capture_count(), 2);
        assert!(ast.has_backref());
    }

    #[test]
    fn literal_parsing() {
        let re = Regex::parse_literal("/a[/]b/g").expect("literal should parse");
        assert!(re.flags.global);
        assert_eq!(re.source, "a[/]b");
        assert!(Regex::parse_literal("abc").is_err());
        assert!(Regex::parse_literal("/abc").is_err());
        assert!(Regex::parse_literal("/a/zz").is_err());
    }

    #[test]
    fn escaped_slash_in_literal() {
        let re = Regex::parse_literal(r"/a\/b/").expect("literal should parse");
        assert_eq!(re.source, r"a\/b");
    }

    #[test]
    fn error_offsets_are_char_correct_on_multibyte_patterns() {
        // `é` is 2 bytes but 1 character; the dangling `+` after it must
        // be reported at character offset 1, not byte offset 2.
        let err = parse("é+*").expect_err("dangling quantifier");
        assert_eq!(err.position(), 2, "char offset of the second quantifier");
        let err = parse("éé(").expect_err("unbalanced paren");
        assert_eq!(err.position(), 3);
        // Class with an out-of-order multi-byte range: `[é-a]` — the
        // error is detected at the closing position of the range.
        let err = parse("[λ-a]x").expect_err("reversed range");
        assert!(
            err.position() <= 4,
            "offset {} must stay within the 6-char pattern prefix",
            err.position()
        );
    }

    #[test]
    fn literal_error_offsets_cover_the_whole_literal() {
        // Pattern errors shift by the opening `/`.
        let err = Regex::parse_literal("/é(/").expect_err("unbalanced paren");
        assert_eq!(err.position(), 3, "1 (slash) + 2 chars into the body");
        // Flag errors land on the offending flag character, counted in
        // characters across a multi-byte body: `/λé/gz` — `z` is the
        // 6th character (offset 5).
        let err = Regex::parse_literal("/λé/gz").expect_err("unknown flag");
        assert_eq!(err.position(), 5);
        assert!(err.message().contains("unknown regex flag"));
        let err = Regex::parse_literal("/a/gg").expect_err("duplicate flag");
        assert_eq!(err.position(), 4);
        // Unterminated literal: one past the end, in characters.
        let err = Regex::parse_literal("/éé").expect_err("unterminated");
        assert_eq!(err.position(), 3);
    }

    #[test]
    fn standalone_flag_errors_report_the_flag_index() {
        let err = "gim!".parse::<Flags>().expect_err("unknown flag");
        assert_eq!(err.position(), 3);
        let err = "ss".parse::<Flags>().expect_err("duplicate flag");
        assert_eq!(err.position(), 1);
    }
}

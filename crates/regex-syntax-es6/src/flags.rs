//! Regex flags (`g`, `i`, `m`, `s`, `u`, `y`).

use std::fmt;
use std::str::FromStr;

/// The flag set of an ES6 `RegExp`.
///
/// The paper's evaluation covers `g i m u y` (§2.1); `s` (dotAll,
/// ES2018) is additionally supported because the corpus generator uses it
/// in its "unsupported feature" bucket.
///
/// # Examples
///
/// ```
/// use regex_syntax_es6::Flags;
///
/// let flags: Flags = "gi".parse()?;
/// assert!(flags.global && flags.ignore_case);
/// assert_eq!(flags.to_string(), "gi");
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// `g` — find all matches / advance `lastIndex`.
    pub global: bool,
    /// `i` — case-insensitive matching.
    pub ignore_case: bool,
    /// `m` — `^`/`$` also match at line terminators.
    pub multiline: bool,
    /// `s` — `.` also matches line terminators (ES2018 dotAll).
    pub dot_all: bool,
    /// `u` — unicode escape semantics.
    pub unicode: bool,
    /// `y` — sticky: matching starts exactly at `lastIndex`.
    pub sticky: bool,
}

impl Flags {
    /// Flags with every bit clear.
    pub fn empty() -> Flags {
        Flags::default()
    }

    /// True when matching is anchored at `lastIndex` for `exec`/`test`.
    ///
    /// Per §2.1 of the paper the `g` flag is equivalent to `y` for the
    /// `test` and `exec` methods of `RegExp`.
    pub fn is_stateful(&self) -> bool {
        self.global || self.sticky
    }
}

impl FromStr for Flags {
    type Err = crate::ParseError;

    fn from_str(s: &str) -> Result<Flags, Self::Err> {
        let mut flags = Flags::default();
        for (at, c) in s.chars().enumerate() {
            let field = match c {
                'g' => &mut flags.global,
                'i' => &mut flags.ignore_case,
                'm' => &mut flags.multiline,
                's' => &mut flags.dot_all,
                'u' => &mut flags.unicode,
                'y' => &mut flags.sticky,
                other => {
                    return Err(crate::ParseError::new(
                        at,
                        format!("unknown regex flag `{other}`"),
                    ))
                }
            };
            if *field {
                return Err(crate::ParseError::new(
                    at,
                    format!("duplicate regex flag `{c}`"),
                ));
            }
            *field = true;
        }
        Ok(flags)
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (set, c) in [
            (self.global, 'g'),
            (self.ignore_case, 'i'),
            (self.multiline, 'm'),
            (self.dot_all, 's'),
            (self.unicode, 'u'),
            (self.sticky, 'y'),
        ] {
            if set {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_flags() {
        let flags: Flags = "gimsuy".parse().expect("valid flags");
        assert!(flags.global);
        assert!(flags.ignore_case);
        assert!(flags.multiline);
        assert!(flags.dot_all);
        assert!(flags.unicode);
        assert!(flags.sticky);
    }

    #[test]
    fn reject_duplicate() {
        assert!("gg".parse::<Flags>().is_err());
    }

    #[test]
    fn reject_unknown() {
        assert!("x".parse::<Flags>().is_err());
    }

    #[test]
    fn display_round_trip() {
        let flags: Flags = "iy".parse().expect("valid");
        assert_eq!(flags.to_string(), "iy");
    }

    #[test]
    fn global_implies_stateful() {
        let flags: Flags = "g".parse().expect("valid");
        assert!(flags.is_stateful());
        assert!(!Flags::empty().is_stateful());
    }
}

//! Character classes for ES6 regexes.
//!
//! A [`ClassSet`] is the parsed form of a bracketed class such as
//! `[a-z0-9_]` or `[^\d]`, and also backs the predefined escapes `\d`,
//! `\D`, `\w`, `\W`, `\s`, `\S`. Classes resolve to a normalized,
//! sorted set of disjoint scalar-value ranges via [`ClassSet::ranges`],
//! which is the representation used by the automata layer.

use std::fmt::Write as _;

/// Maximum Unicode scalar value.
pub const MAX_CHAR: u32 = 0x10FFFF;

/// One syntactic item inside a bracketed character class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ClassItem {
    /// A single character, e.g. `a`.
    Single(char),
    /// An inclusive range, e.g. `a-z`.
    Range(char, char),
    /// A predefined class escape, e.g. `\d` or `\W`.
    Perl(PerlClass),
}

/// The predefined (Perl-style) class escapes of ES6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PerlClass {
    /// Which base set this escape denotes.
    pub kind: PerlKind,
    /// True for the negated uppercase variants `\D`, `\W`, `\S`.
    pub negated: bool,
}

/// Base sets for [`PerlClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerlKind {
    /// `\d` — ASCII digits `[0-9]`.
    Digit,
    /// `\w` — word characters `[A-Za-z0-9_]`.
    Word,
    /// `\s` — ES6 whitespace and line terminators.
    Space,
}

/// A character class: a possibly negated union of [`ClassItem`]s.
///
/// # Examples
///
/// ```
/// use regex_syntax_es6::class::ClassSet;
///
/// let digits = ClassSet::digit();
/// assert!(digits.contains('7'));
/// assert!(!digits.contains('x'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClassSet {
    /// True for `[^ ... ]`.
    pub negated: bool,
    /// The items as written, in source order.
    pub items: Vec<ClassItem>,
}

impl ClassSet {
    /// Creates a class from items.
    pub fn new(negated: bool, items: Vec<ClassItem>) -> ClassSet {
        ClassSet { negated, items }
    }

    /// The class `\d`.
    pub fn digit() -> ClassSet {
        ClassSet::perl(PerlKind::Digit, false)
    }

    /// The class `\w`.
    pub fn word() -> ClassSet {
        ClassSet::perl(PerlKind::Word, false)
    }

    /// The class `\s`.
    pub fn space() -> ClassSet {
        ClassSet::perl(PerlKind::Space, false)
    }

    /// A class holding exactly one predefined escape.
    pub fn perl(kind: PerlKind, negated: bool) -> ClassSet {
        ClassSet {
            negated: false,
            items: vec![ClassItem::Perl(PerlClass { kind, negated })],
        }
    }

    /// A class matching a single character.
    pub fn single(c: char) -> ClassSet {
        ClassSet {
            negated: false,
            items: vec![ClassItem::Single(c)],
        }
    }

    /// Tests membership of a character.
    pub fn contains(&self, c: char) -> bool {
        self.raw_contains(c) != self.negated
    }

    /// Tests membership in the *item set*, ignoring class-level
    /// negation — the `A` of the spec's `CharacterSetMatcher(A, invert)`
    /// (§21.2.2.8.1). Ignore-case matching needs this: canonical
    /// comparison happens against the raw atoms, and the inversion is
    /// applied *afterwards* (testing case variants against the negated
    /// set instead inverts the semantics — `[^b]` under `i` must reject
    /// `b`, not accept it because `B ∈ [^b]`).
    pub fn raw_contains(&self, c: char) -> bool {
        self.items.iter().any(|item| item_contains(item, c))
    }

    /// Resolves the class to sorted, disjoint, inclusive scalar ranges.
    ///
    /// Negation is applied over the full Unicode scalar space (surrogates
    /// are excluded since `char` cannot represent them).
    pub fn ranges(&self) -> Vec<(u32, u32)> {
        let mut raw: Vec<(u32, u32)> = Vec::new();
        for item in &self.items {
            match item {
                ClassItem::Single(c) => raw.push((*c as u32, *c as u32)),
                ClassItem::Range(lo, hi) => raw.push((*lo as u32, *hi as u32)),
                ClassItem::Perl(p) => raw.extend(perl_ranges(*p)),
            }
        }
        let mut normalized = normalize_ranges(raw);
        if self.negated {
            normalized = complement_ranges(&normalized);
        }
        normalized
    }

    /// Renders the class back to source text.
    pub fn to_source(&self) -> String {
        // Single predefined escapes render bare (`\d`), everything else
        // renders bracketed.
        if !self.negated && self.items.len() == 1 {
            if let ClassItem::Perl(p) = &self.items[0] {
                return perl_source(*p);
            }
        }
        let mut buf = String::from("[");
        if self.negated {
            buf.push('^');
        }
        for item in &self.items {
            match item {
                ClassItem::Single(c) => push_class_escaped(&mut buf, *c),
                ClassItem::Range(lo, hi) => {
                    push_class_escaped(&mut buf, *lo);
                    buf.push('-');
                    push_class_escaped(&mut buf, *hi);
                }
                ClassItem::Perl(p) => buf.push_str(&perl_source(*p)),
            }
        }
        buf.push(']');
        buf
    }

    /// Returns a class matching the same characters case-insensitively:
    /// every cased character gains its simple upper/lowercase counterpart.
    ///
    /// This implements the `rewriteForIgnoreCase` step of Algorithm 2 in
    /// the paper, using simple (non-full) case folding as ES6 does for
    /// non-unicode patterns.
    pub fn case_insensitive(&self) -> ClassSet {
        let mut items = Vec::new();
        for item in &self.items {
            match item {
                ClassItem::Single(c) => {
                    items.push(ClassItem::Single(*c));
                    for folded in simple_case_variants(*c) {
                        if folded != *c && canonicalize_simple(folded) == canonicalize_simple(*c) {
                            items.push(ClassItem::Single(folded));
                        }
                    }
                }
                ClassItem::Range(lo, hi) => {
                    items.push(ClassItem::Range(*lo, *hi));
                    let span = (*hi as u32).saturating_sub(*lo as u32);
                    if span <= CASE_FOLD_SCAN_LIMIT {
                        // Exact canonical closure: every member's case
                        // variants join the set, filtered by the spec's
                        // Canonicalize equivalence (so `ı ∈ [é-λ]` does
                        // not drag ASCII `I` in — a non-ASCII character
                        // whose uppercase is ASCII canonicalizes to
                        // itself). Ranges spanning case boundaries
                        // (`[_-λ]` holds `a` but not `A`) need the
                        // per-member walk — endpoint folding alone
                        // silently dropped those variants, which the
                        // differential fuzzer caught against the
                        // spec-faithful matcher.
                        for m in (*lo as u32)..=(*hi as u32) {
                            let Some(member) = char::from_u32(m) else {
                                continue;
                            };
                            for folded in simple_case_variants(member) {
                                if (folded < *lo || folded > *hi)
                                    && canonicalize_simple(folded) == canonicalize_simple(member)
                                {
                                    items.push(ClassItem::Single(folded));
                                }
                            }
                        }
                    } else if let Some((flo, fhi)) = fold_ascii_range(*lo, *hi) {
                        // Huge ranges: per-member scanning is too slow;
                        // ASCII-case folding covers the common shape and
                        // the residual approximation is documented.
                        items.push(ClassItem::Range(flo, fhi));
                    }
                }
                ClassItem::Perl(p) => items.push(ClassItem::Perl(*p)),
            }
        }
        ClassSet {
            negated: self.negated,
            items,
        }
    }

    /// True when the class matches no character at all (e.g. `[]`).
    pub fn is_empty_set(&self) -> bool {
        self.ranges().is_empty()
    }
}

fn item_contains(item: &ClassItem, c: char) -> bool {
    match item {
        ClassItem::Single(s) => *s == c,
        ClassItem::Range(lo, hi) => (*lo..=*hi).contains(&c),
        ClassItem::Perl(p) => perl_contains(*p, c),
    }
}

fn perl_contains(p: PerlClass, c: char) -> bool {
    let base = match p.kind {
        PerlKind::Digit => c.is_ascii_digit(),
        PerlKind::Word => c.is_ascii_alphanumeric() || c == '_',
        PerlKind::Space => is_es_space(c),
    };
    base != p.negated
}

/// ES6 `\s`: WhiteSpace ∪ LineTerminator (§21.2.2.12).
pub fn is_es_space(c: char) -> bool {
    matches!(
        c,
        '\t' | '\n' | '\x0B' | '\x0C' | '\r' | ' ' | '\u{A0}' | '\u{1680}' | '\u{2000}'
            ..='\u{200A}'
                | '\u{2028}'
                | '\u{2029}'
                | '\u{202F}'
                | '\u{205F}'
                | '\u{3000}'
                | '\u{FEFF}'
    )
}

/// ES6 line terminators (§11.3), relevant for `.` and multiline anchors.
pub fn is_line_terminator(c: char) -> bool {
    matches!(c, '\n' | '\r' | '\u{2028}' | '\u{2029}')
}

/// The ranges denoted by a predefined escape.
pub fn perl_ranges(p: PerlClass) -> Vec<(u32, u32)> {
    let base: Vec<(u32, u32)> = match p.kind {
        PerlKind::Digit => vec![('0' as u32, '9' as u32)],
        PerlKind::Word => vec![
            ('0' as u32, '9' as u32),
            ('A' as u32, 'Z' as u32),
            ('_' as u32, '_' as u32),
            ('a' as u32, 'z' as u32),
        ],
        PerlKind::Space => vec![
            (0x09, 0x0D),
            (0x20, 0x20),
            (0xA0, 0xA0),
            (0x1680, 0x1680),
            (0x2000, 0x200A),
            (0x2028, 0x2029),
            (0x202F, 0x202F),
            (0x205F, 0x205F),
            (0x3000, 0x3000),
            (0xFEFF, 0xFEFF),
        ],
    };
    if p.negated {
        complement_ranges(&normalize_ranges(base))
    } else {
        base
    }
}

/// Sorts and merges overlapping or adjacent ranges.
pub fn normalize_ranges(mut ranges: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    ranges.retain(|(lo, hi)| lo <= hi);
    ranges.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match out.last_mut() {
            Some((_, phi)) if lo <= phi.saturating_add(1) => {
                *phi = (*phi).max(hi);
            }
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// Complements normalized ranges over the Unicode scalar space, excluding
/// the surrogate block D800–DFFF.
pub fn complement_ranges(ranges: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut next = 0u32;
    for &(lo, hi) in ranges {
        if lo > next {
            out.push((next, lo - 1));
        }
        next = hi.saturating_add(1);
    }
    if next <= MAX_CHAR {
        out.push((next, MAX_CHAR));
    }
    // Remove the surrogate gap.
    let mut cleaned = Vec::with_capacity(out.len() + 1);
    for (lo, hi) in out {
        if hi < 0xD800 || lo > 0xDFFF {
            cleaned.push((lo, hi));
        } else {
            if lo < 0xD800 {
                cleaned.push((lo, 0xD7FF));
            }
            if hi > 0xDFFF {
                cleaned.push((0xE000, hi));
            }
        }
    }
    cleaned
}

fn perl_source(p: PerlClass) -> String {
    let c = match (p.kind, p.negated) {
        (PerlKind::Digit, false) => 'd',
        (PerlKind::Digit, true) => 'D',
        (PerlKind::Word, false) => 'w',
        (PerlKind::Word, true) => 'W',
        (PerlKind::Space, false) => 's',
        (PerlKind::Space, true) => 'S',
    };
    format!("\\{c}")
}

fn push_class_escaped(buf: &mut String, c: char) {
    match c {
        '\\' | ']' | '^' | '-' => {
            buf.push('\\');
            buf.push(c);
        }
        '\n' => buf.push_str(r"\n"),
        '\r' => buf.push_str(r"\r"),
        '\t' => buf.push_str(r"\t"),
        c if (c as u32) < 0x20 => {
            let _ = write!(buf, r"\x{:02x}", c as u32);
        }
        c => buf.push(c),
    }
}

/// Simple case variants of a character (its to-upper and to-lower images,
/// when single-character).
pub fn simple_case_variants(c: char) -> Vec<char> {
    let mut out = Vec::new();
    let mut upper = c.to_uppercase();
    if upper.clone().count() == 1 {
        out.push(upper.next().expect("one char"));
    }
    let mut lower = c.to_lowercase();
    if lower.clone().count() == 1 {
        out.push(lower.next().expect("one char"));
    }
    out
}

/// Largest range span (in scalar values) expanded member-by-member for
/// exact ignore-case closure; wider ranges fall back to ASCII folding.
const CASE_FOLD_SCAN_LIMIT: u32 = 4096;

/// ES262 §21.2.2.8.2 Canonicalize for non-unicode patterns: the simple
/// uppercase image, except that multi-character mappings and non-ASCII
/// characters whose uppercase is ASCII canonicalize to themselves.
/// (The matcher exposes the same function with a unicode-mode switch;
/// class rewriting currently always uses the non-unicode rule.)
pub fn canonicalize_simple(c: char) -> char {
    let mut upper = c.to_uppercase();
    if upper.clone().count() != 1 {
        return c;
    }
    let u = upper.next().expect("one char");
    if (c as u32) >= 128 && (u as u32) < 128 {
        return c;
    }
    u
}

fn fold_ascii_range(lo: char, hi: char) -> Option<(char, char)> {
    if lo.is_ascii_lowercase() && hi.is_ascii_lowercase() {
        Some((lo.to_ascii_uppercase(), hi.to_ascii_uppercase()))
    } else if lo.is_ascii_uppercase() && hi.is_ascii_uppercase() {
        Some((lo.to_ascii_lowercase(), hi.to_ascii_lowercase()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_membership() {
        let d = ClassSet::digit();
        assert!(d.contains('0'));
        assert!(d.contains('9'));
        assert!(!d.contains('a'));
    }

    #[test]
    fn negated_class() {
        let set = ClassSet::new(true, vec![ClassItem::Single('a')]);
        assert!(!set.contains('a'));
        assert!(set.contains('b'));
    }

    #[test]
    fn word_ranges_sorted_disjoint() {
        let w = ClassSet::word();
        let ranges = w.ranges();
        for pair in ranges.windows(2) {
            assert!(pair[0].1 < pair[1].0, "ranges must be disjoint and sorted");
        }
    }

    #[test]
    fn negated_perl_class_complement() {
        let not_digit = ClassSet::perl(PerlKind::Digit, true);
        assert!(not_digit.contains('a'));
        assert!(!not_digit.contains('5'));
    }

    #[test]
    fn complement_excludes_surrogates() {
        let all = complement_ranges(&[]);
        assert!(all.iter().all(|&(lo, hi)| hi < 0xD800 || lo > 0xDFFF));
    }

    #[test]
    fn normalize_merges_adjacent() {
        let merged = normalize_ranges(vec![(0, 4), (5, 9), (20, 30), (25, 40)]);
        assert_eq!(merged, vec![(0, 9), (20, 40)]);
    }

    #[test]
    fn space_matches_es_whitespace() {
        let s = ClassSet::space();
        for c in ['\t', '\n', '\r', ' ', '\u{A0}', '\u{2028}'] {
            assert!(s.contains(c), "{c:?} should be \\s");
        }
        assert!(!s.contains('x'));
    }

    #[test]
    fn case_insensitive_expands_letters() {
        let set = ClassSet::new(false, vec![ClassItem::Range('a', 'z')]);
        let ci = set.case_insensitive();
        assert!(ci.contains('A'));
        assert!(ci.contains('q'));
    }

    #[test]
    fn source_round_trip_bracketed() {
        let set = ClassSet::new(
            true,
            vec![
                ClassItem::Single('a'),
                ClassItem::Range('0', '9'),
                ClassItem::Perl(PerlClass {
                    kind: PerlKind::Word,
                    negated: false,
                }),
            ],
        );
        assert_eq!(set.to_source(), r"[^a0-9\w]");
    }

    #[test]
    fn empty_class_matches_nothing() {
        let set = ClassSet::new(false, vec![]);
        assert!(set.is_empty_set());
        assert!(!set.contains('a'));
    }
}

//! Seed-driven random generation of ES6 regexes — the AST side of the
//! differential fuzzer (`expose::fuzz`).
//!
//! [`arbitrary_regex`] draws a random, *valid* ES6 regex spanning the
//! whole Table 1/Table 5 feature space: literals (including non-ASCII),
//! character classes with ranges and predefined escapes, greedy and lazy
//! quantifiers, bounded repetition, capture and non-capturing groups,
//! lookaheads, backreferences (including the quantified-backreference
//! idiom of §4.3), anchors, word boundaries and every flag. Generation
//! is deterministic in the RNG, so a seed fully identifies a case.
//!
//! The generated AST is rendered with [`Ast::to_source`] and re-parsed,
//! which (a) assigns capture-group indices exactly as the parser would
//! and (b) turns every generated regex into a free round-trip test of
//! the printer/parser pair.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::RngExt;

use crate::ast::{AssertionKind, Ast};
use crate::class::{ClassItem, ClassSet, PerlClass, PerlKind};
use crate::flags::Flags;
use crate::parser::{ParseError, Regex};

/// Tuning knobs for [`arbitrary_ast`] / [`arbitrary_regex`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum nesting depth of the generated AST.
    pub max_depth: usize,
    /// Upper bound for bounded-repetition counts (`{m}`, `{m,n}`).
    pub max_repeat: u32,
    /// Characters literals and class endpoints are drawn from. Must be
    /// non-empty; non-ASCII members exercise multi-byte handling.
    pub alphabet: Vec<char>,
    /// Generate backreferences (and the quantified-backref idiom).
    pub backrefs: bool,
    /// Generate lookahead assertions.
    pub lookaheads: bool,
    /// Generate `\b`/`\B` word-boundary assertions.
    pub boundaries: bool,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_depth: 3,
            max_repeat: 3,
            // Small word-ish alphabet plus two multi-byte characters so
            // the parser's offset arithmetic is exercised on every run.
            alphabet: vec!['a', 'b', 'c', '0', '1', '_', 'é', 'λ'],
            backrefs: true,
            lookaheads: true,
            boundaries: true,
        }
    }
}

/// Placeholder index for a backreference whose target group is assigned
/// in a later pass (the generator does not know the final group count
/// while descending).
const BACKREF_PLACEHOLDER: u32 = u32::MAX;

/// Draws a random flag set. Each flag is sampled independently with a
/// modest probability so every Table 5 flag bucket shows up across a
/// few hundred seeds.
pub fn arbitrary_flags(rng: &mut StdRng) -> Flags {
    Flags {
        global: rng.random_bool(0.20),
        ignore_case: rng.random_bool(0.15),
        multiline: rng.random_bool(0.15),
        dot_all: rng.random_bool(0.10),
        unicode: rng.random_bool(0.10),
        sticky: rng.random_bool(0.15),
    }
}

/// Draws a random pattern AST. The result is structurally valid: every
/// backreference points at an existing capture group (or has been
/// replaced by a literal when the pattern ended up group-free).
pub fn arbitrary_ast(rng: &mut StdRng, cfg: &GenConfig) -> Ast {
    assert!(!cfg.alphabet.is_empty(), "alphabet must be non-empty");
    // Top-level: optional anchors around a small concatenation.
    let mut items = Vec::new();
    if rng.random_bool(0.25) {
        items.push(Ast::Assertion(AssertionKind::StartAnchor));
    }
    let parts = 1 + rng.random_range(0usize..3);
    for _ in 0..parts {
        items.push(node(rng, cfg, cfg.max_depth));
    }
    if rng.random_bool(0.25) {
        items.push(Ast::Assertion(AssertionKind::EndAnchor));
    }
    let mut ast = Ast::concat(items);
    resolve_backrefs(&mut ast, rng, cfg);
    ast
}

/// Draws a random regex: AST plus flags, rendered to source and
/// re-parsed so capture indices are assigned by the parser itself.
///
/// # Errors
///
/// Returns the parse error if the rendered source does not re-parse —
/// which would itself be a printer/parser disagreement worth reporting.
pub fn arbitrary_regex(rng: &mut StdRng, cfg: &GenConfig) -> Result<Regex, ParseError> {
    let ast = arbitrary_ast(rng, cfg);
    let flags = arbitrary_flags(rng);
    Regex::new(&ast.to_source(), flags)
}

fn literal(rng: &mut StdRng, cfg: &GenConfig) -> Ast {
    Ast::Literal(*cfg.alphabet.choose(rng).expect("non-empty alphabet"))
}

fn class(rng: &mut StdRng, cfg: &GenConfig) -> Ast {
    let n = 1 + rng.random_range(0usize..3);
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(match rng.random_range(0usize..10) {
            // Ranges with ordered endpoints (drawn from the alphabet).
            0..=3 => {
                let a = *cfg.alphabet.choose(rng).expect("non-empty");
                let b = *cfg.alphabet.choose(rng).expect("non-empty");
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                if lo == hi {
                    ClassItem::Single(lo)
                } else {
                    ClassItem::Range(lo, hi)
                }
            }
            4..=6 => ClassItem::Single(*cfg.alphabet.choose(rng).expect("non-empty")),
            _ => ClassItem::Perl(PerlClass {
                kind: *[PerlKind::Digit, PerlKind::Word, PerlKind::Space]
                    .choose(rng)
                    .expect("non-empty"),
                negated: rng.random_bool(0.3),
            }),
        });
    }
    Ast::Class(ClassSet::new(rng.random_bool(0.2), items))
}

fn repeat_of(rng: &mut StdRng, cfg: &GenConfig, body: Ast) -> Ast {
    // Assertions and lookaheads are not quantifiable terms in ES6
    // (`(?=a)*` is a syntax error); group them first.
    let body = match body {
        b @ (Ast::Assertion(_) | Ast::Lookahead { .. } | Ast::Empty) => {
            Ast::NonCapturing(Box::new(b))
        }
        b => b,
    };
    let lazy = rng.random_bool(0.35);
    let (min, max) = match rng.random_range(0usize..6) {
        0 => (0, None),                                    // *
        1 => (1, None),                                    // +
        2 => (0, Some(1)),                                 // ?
        3 => (rng.random_range(1..=cfg.max_repeat), None), // {m,}
        4 => {
            let m = rng.random_range(0..=cfg.max_repeat);
            (m, Some(m)) // {m}
        }
        _ => {
            let m = rng.random_range(0..=cfg.max_repeat);
            let n = rng.random_range(m..=cfg.max_repeat.max(m + 1));
            (m, Some(n)) // {m,n}
        }
    };
    Ast::Repeat {
        ast: Box::new(body),
        min,
        max,
        lazy,
    }
}

/// The §4.3 quantified-backreference idiom `((x|y)\2)+`: a backref
/// *under* an iterating quantifier. Guarantees the rarest Table 5
/// bucket gets coverage without waiting on four independent draws.
fn quantified_backref_idiom(rng: &mut StdRng, cfg: &GenConfig) -> Ast {
    let x = literal(rng, cfg);
    let y = literal(rng, cfg);
    Ast::Repeat {
        ast: Box::new(Ast::Group {
            index: 0, // reassigned by the re-parse
            ast: Box::new(Ast::concat(vec![
                Ast::Group {
                    index: 0,
                    ast: Box::new(Ast::alt(vec![x, y])),
                },
                Ast::Backref(BACKREF_PLACEHOLDER),
            ])),
        }),
        min: 1,
        max: None,
        lazy: rng.random_bool(0.25),
    }
}

fn node(rng: &mut StdRng, cfg: &GenConfig, depth: usize) -> Ast {
    if depth == 0 {
        // Leaves only.
        return match rng.random_range(0usize..10) {
            0..=5 => literal(rng, cfg),
            6..=7 => class(rng, cfg),
            8 => Ast::Dot,
            _ if cfg.backrefs => Ast::Backref(BACKREF_PLACEHOLDER),
            _ => literal(rng, cfg),
        };
    }
    match rng.random_range(0usize..100) {
        0..=21 => literal(rng, cfg),
        22..=33 => class(rng, cfg),
        34..=37 => Ast::Dot,
        38..=51 => {
            let n = 2 + rng.random_range(0usize..2);
            Ast::concat((0..n).map(|_| node(rng, cfg, depth - 1)).collect())
        }
        52..=61 => {
            let n = 2 + rng.random_range(0usize..2);
            Ast::alt((0..n).map(|_| node(rng, cfg, depth - 1)).collect())
        }
        62..=77 => {
            let body = node(rng, cfg, depth - 1);
            repeat_of(rng, cfg, body)
        }
        78..=85 => Ast::Group {
            index: 0, // reassigned by the re-parse
            ast: Box::new(node(rng, cfg, depth - 1)),
        },
        86..=89 => Ast::NonCapturing(Box::new(node(rng, cfg, depth - 1))),
        90..=93 if cfg.lookaheads => Ast::Lookahead {
            negative: rng.random_bool(0.4),
            ast: Box::new(node(rng, cfg, depth - 1)),
        },
        94..=96 if cfg.backrefs => Ast::Backref(BACKREF_PLACEHOLDER),
        97..=98 if cfg.boundaries => Ast::Assertion(if rng.random_bool(0.7) {
            AssertionKind::WordBoundary
        } else {
            AssertionKind::NotWordBoundary
        }),
        99 if cfg.backrefs => quantified_backref_idiom(rng, cfg),
        _ => literal(rng, cfg),
    }
}

/// Second pass: every [`BACKREF_PLACEHOLDER`] becomes a reference to a
/// random existing group, or a plain literal when the pattern has no
/// groups (a `\k` beyond the group count would parse as a legacy octal
/// escape and silently change meaning — Annex B).
fn resolve_backrefs(ast: &mut Ast, rng: &mut StdRng, cfg: &GenConfig) {
    let groups = ast.capture_count();
    rewrite_placeholders(ast, rng, cfg, groups);
}

fn rewrite_placeholders(ast: &mut Ast, rng: &mut StdRng, cfg: &GenConfig, groups: u32) {
    match ast {
        Ast::Backref(k) if *k == BACKREF_PLACEHOLDER => {
            *ast = if groups == 0 {
                literal(rng, cfg)
            } else {
                Ast::Backref(rng.random_range(1..=groups))
            };
        }
        Ast::Group { ast, .. } | Ast::NonCapturing(ast) | Ast::Lookahead { ast, .. } => {
            rewrite_placeholders(ast, rng, cfg, groups)
        }
        Ast::Repeat { ast, .. } => rewrite_placeholders(ast, rng, cfg, groups),
        Ast::Alt(items) | Ast::Concat(items) => {
            for item in items {
                rewrite_placeholders(item, rng, cfg, groups);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use rand::SeedableRng;

    #[test]
    fn generated_regexes_parse_and_round_trip() {
        let cfg = GenConfig::default();
        for seed in 0..500u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let regex = arbitrary_regex(&mut rng, &cfg)
                .unwrap_or_else(|e| panic!("seed {seed}: generated pattern must parse: {e}"));
            // The printer/parser round-trip must be stable.
            let reparsed = crate::parse(&regex.ast.to_source())
                .unwrap_or_else(|e| panic!("seed {seed}: round-trip must parse: {e}"));
            assert_eq!(
                regex.ast, reparsed,
                "seed {seed}: round-trip changed the AST"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in [0u64, 1, 42, 0xdead] {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let ra = arbitrary_regex(&mut a, &cfg).expect("parse");
            let rb = arbitrary_regex(&mut b, &cfg).expect("parse");
            assert_eq!(ra.source, rb.source);
            assert_eq!(ra.flags, rb.flags);
        }
    }

    #[test]
    fn no_placeholder_survives() {
        let cfg = GenConfig::default();
        fn scan(ast: &Ast) {
            match ast {
                Ast::Backref(k) => assert_ne!(*k, BACKREF_PLACEHOLDER),
                Ast::Group { ast, .. } | Ast::NonCapturing(ast) | Ast::Lookahead { ast, .. } => {
                    scan(ast)
                }
                Ast::Repeat { ast, .. } => scan(ast),
                Ast::Alt(items) | Ast::Concat(items) => items.iter().for_each(scan),
                _ => {}
            }
        }
        for seed in 0..300u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            scan(&arbitrary_ast(&mut rng, &cfg));
        }
    }

    #[test]
    fn backrefs_stay_in_range() {
        let cfg = GenConfig::default();
        fn max_backref(ast: &Ast) -> u32 {
            match ast {
                Ast::Backref(k) => *k,
                Ast::Group { ast, .. } | Ast::NonCapturing(ast) | Ast::Lookahead { ast, .. } => {
                    max_backref(ast)
                }
                Ast::Repeat { ast, .. } => max_backref(ast),
                Ast::Alt(items) | Ast::Concat(items) => {
                    items.iter().map(max_backref).max().unwrap_or(0)
                }
                _ => 0,
            }
        }
        for seed in 0..300u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let ast = arbitrary_ast(&mut rng, &cfg);
            assert!(max_backref(&ast) <= ast.capture_count(), "seed {seed}");
        }
    }

    #[test]
    fn feature_space_is_covered() {
        // Every Table 5 bucket must appear somewhere in a modest seed
        // range — the histogram CI gate depends on this.
        let cfg = GenConfig::default();
        let mut seen = [false; 19];
        for seed in 0..2000u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let Ok(regex) = arbitrary_regex(&mut rng, &cfg) else {
                continue;
            };
            for (i, (_, present)) in FeatureSet::of(&regex).rows().iter().enumerate() {
                seen[i] |= present;
            }
        }
        let missing: Vec<&str> = FeatureSet::default()
            .rows()
            .iter()
            .zip(seen)
            .filter(|(_, s)| !s)
            .map(|((name, _), _)| *name)
            .collect();
        assert!(missing.is_empty(), "uncovered feature buckets: {missing:?}");
    }
}

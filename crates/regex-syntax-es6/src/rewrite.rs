//! Table 1 rewritings: desugaring derived quantifiers and normalizing
//! matching precedence.
//!
//! The paper (§4.1) rewrites every regex to a normal form containing only
//! alternation, concatenation, Kleene star, groups, lookarounds and
//! backreferences:
//!
//! * `r+`      → `r*r`
//! * `r{m,n}`  → `rⁿ | ... | rᵐ`
//! * `r?`      → `r|ε`
//! * lazy quantifiers → their greedy equivalents (matching precedence is
//!   restored later by the CEGAR refinement loop)
//!
//! Because the rules for `+` and `{m,n}` duplicate capture groups, the
//! rewriting makes capture-group correspondence explicit: the canonical
//! capture of a duplicated group is the one in the *last* copy that can
//! match. The capturing-language model builder performs that bookkeeping
//! on solver variables; the functions here provide the pure AST
//! transformations used for classical (capture-free) compilation, for the
//! `t̂` construction of Table 2, and as an executable rendition of
//! Table 1 itself.

use crate::ast::Ast;

/// Replaces every capture group with a non-capturing group.
///
/// This is the `t̂` ("t-hat") construction used by the quantification
/// model of Table 2: `t̂₁` is regular whenever `t₁` is backreference-free.
///
/// # Examples
///
/// ```
/// use regex_syntax_es6::{parse, rewrite::strip_captures};
///
/// let ast = strip_captures(&parse("(a|(b))c")?);
/// assert_eq!(ast.capture_count(), 0);
/// assert_eq!(ast.to_source(), "(?:a|(?:b))c");
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
pub fn strip_captures(ast: &Ast) -> Ast {
    match ast {
        Ast::Group { ast, .. } => Ast::NonCapturing(Box::new(strip_captures(ast))),
        Ast::NonCapturing(inner) => Ast::NonCapturing(Box::new(strip_captures(inner))),
        Ast::Lookahead { negative, ast } => Ast::Lookahead {
            negative: *negative,
            ast: Box::new(strip_captures(ast)),
        },
        Ast::Repeat {
            ast,
            min,
            max,
            lazy,
        } => Ast::Repeat {
            ast: Box::new(strip_captures(ast)),
            min: *min,
            max: *max,
            lazy: *lazy,
        },
        Ast::Alt(items) => Ast::Alt(items.iter().map(strip_captures).collect()),
        Ast::Concat(items) => Ast::Concat(items.iter().map(strip_captures).collect()),
        other => other.clone(),
    }
}

/// Rewrites all lazy quantifiers to their greedy equivalents.
///
/// The capturing-language models are agnostic to matching precedence
/// (§4.1); greediness is recovered by refinement.
pub fn normalize_lazy(ast: &Ast) -> Ast {
    match ast {
        Ast::Repeat { ast, min, max, .. } => Ast::Repeat {
            ast: Box::new(normalize_lazy(ast)),
            min: *min,
            max: *max,
            lazy: false,
        },
        Ast::Group { index, ast } => Ast::Group {
            index: *index,
            ast: Box::new(normalize_lazy(ast)),
        },
        Ast::NonCapturing(inner) => Ast::NonCapturing(Box::new(normalize_lazy(inner))),
        Ast::Lookahead { negative, ast } => Ast::Lookahead {
            negative: *negative,
            ast: Box::new(normalize_lazy(ast)),
        },
        Ast::Alt(items) => Ast::Alt(items.iter().map(normalize_lazy).collect()),
        Ast::Concat(items) => Ast::Concat(items.iter().map(normalize_lazy).collect()),
        other => other.clone(),
    }
}

/// Bound on `{m,n}` expansion size to keep Table 1 desugaring tractable.
///
/// Patterns exceeding this produce repeated copies only up to the cap;
/// the model builder and automata compiler handle large bounds natively
/// instead of calling [`desugar`].
pub const MAX_EXPANSION: u32 = 64;

/// Applies the Table 1 rewriting rules, producing an AST containing only
/// `*` quantifiers (plus groups, lookarounds, alternation, concatenation
/// and backreferences).
///
/// Capture groups duplicated by the expansion keep their original index;
/// consumers that need the §4.1 capture correspondence (`Cᵢ = Cᵢ,last`)
/// must allocate distinct variables per copy — see
/// `expose_core::model`. For capture-free ASTs the result is exactly
/// language-equivalent.
///
/// # Examples
///
/// ```
/// use regex_syntax_es6::{parse, rewrite::desugar};
///
/// // r+ → r*r
/// assert_eq!(desugar(&parse("ab+")?).to_source(), "ab*b");
/// // r? → r|ε (the trailing `|` denotes the empty branch)
/// assert_eq!(desugar(&parse("a?")?).to_source(), "a|");
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
pub fn desugar(ast: &Ast) -> Ast {
    match ast {
        Ast::Repeat {
            ast: inner,
            min,
            max,
            ..
        } => {
            let inner = desugar(inner);
            match (*min, *max) {
                // r* stays.
                (0, None) => star(inner),
                // r+ → r*r
                (1, None) => Ast::concat(vec![star(inner.clone()), inner]),
                // r? → r|ε
                (0, Some(1)) => Ast::alt(vec![inner, Ast::Empty]),
                // r{m,} → r…r r*   (m copies then star)
                (m, None) => {
                    let m = m.min(MAX_EXPANSION);
                    let mut items = vec![inner.clone(); m as usize];
                    items.push(star(inner));
                    Ast::concat(items)
                }
                // r{m,n} → rⁿ | … | rᵐ
                (m, Some(n)) => {
                    let n = n.min(m.saturating_add(MAX_EXPANSION));
                    let mut branches = Vec::new();
                    for count in (m..=n).rev() {
                        branches.push(power(&inner, count));
                    }
                    Ast::alt(branches)
                }
            }
        }
        Ast::Group { index, ast } => Ast::Group {
            index: *index,
            ast: Box::new(desugar(ast)),
        },
        Ast::NonCapturing(inner) => Ast::NonCapturing(Box::new(desugar(inner))),
        Ast::Lookahead { negative, ast } => Ast::Lookahead {
            negative: *negative,
            ast: Box::new(desugar(ast)),
        },
        Ast::Alt(items) => Ast::Alt(items.iter().map(desugar).collect()),
        Ast::Concat(items) => Ast::concat(items.iter().map(desugar).collect()),
        other => other.clone(),
    }
}

fn star(ast: Ast) -> Ast {
    Ast::Repeat {
        ast: Box::new(ast),
        min: 0,
        max: None,
        lazy: false,
    }
}

fn power(ast: &Ast, count: u32) -> Ast {
    match count {
        0 => Ast::Empty,
        1 => ast.clone(),
        n => Ast::concat(vec![ast.clone(); n as usize]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn p(pattern: &str) -> Ast {
        parse(pattern).expect("pattern should parse")
    }

    #[test]
    fn strip_makes_capture_free() {
        let stripped = strip_captures(&p("((a)|(b))+"));
        assert_eq!(stripped.capture_count(), 0);
    }

    #[test]
    fn normalize_lazy_removes_laziness() {
        let ast = normalize_lazy(&p("a*?b+?c??"));
        fn no_lazy(ast: &Ast) -> bool {
            match ast {
                Ast::Repeat { ast, lazy, .. } => !lazy && no_lazy(ast),
                Ast::Group { ast, .. } | Ast::NonCapturing(ast) | Ast::Lookahead { ast, .. } => {
                    no_lazy(ast)
                }
                Ast::Alt(items) | Ast::Concat(items) => items.iter().all(no_lazy),
                _ => true,
            }
        }
        assert!(no_lazy(&ast));
    }

    #[test]
    fn desugar_plus() {
        assert_eq!(desugar(&p("b+")).to_source(), "b*b");
    }

    #[test]
    fn desugar_optional() {
        assert_eq!(desugar(&p("a?")).to_source(), "a|");
    }

    #[test]
    fn desugar_repetition_range() {
        // a{1,2} → aa|a
        assert_eq!(desugar(&p("a{1,2}")).to_source(), "aa|a");
    }

    #[test]
    fn desugar_exact_repetition() {
        assert_eq!(desugar(&p("a{3}")).to_source(), "aaa");
    }

    #[test]
    fn desugar_open_repetition() {
        assert_eq!(desugar(&p("a{2,}")).to_source(), "aaa*");
    }

    #[test]
    fn desugar_keeps_star() {
        assert_eq!(desugar(&p("a*")).to_source(), "a*");
    }

    #[test]
    fn desugar_nested() {
        // (a+)? → ((a*a)|ε) — group preserved.
        let out = desugar(&p("(a+)?"));
        assert_eq!(out.capture_count(), 1);
        assert_eq!(out.to_source(), "(a*a)|");
    }

    #[test]
    fn paper_repetition_capture_duplication() {
        // §4.1: rewriting (a){1,2} duplicates the capture group.
        let out = desugar(&p("(a){1,2}"));
        assert_eq!(out.to_source(), "(a)(a)|(a)");
        assert_eq!(out.capture_count(), 3);
    }
}

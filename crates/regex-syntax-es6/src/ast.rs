//! Abstract syntax tree for ECMAScript 2015 (ES6) regular expressions.
//!
//! The AST mirrors the grammar of the ES6 specification (§21.2.1 of
//! ECMA-262): a *pattern* is an alternation of *alternatives*, each a
//! concatenation of *terms*; terms are assertions or quantified atoms. The
//! node set here covers the complete ES6 surface syntax, including capture
//! groups, non-capturing groups, lookaheads, backreferences, word
//! boundaries, anchors, character classes and all greedy and lazy
//! quantifiers.

use std::fmt;

use crate::class::ClassSet;

/// A parsed ES6 regular expression node.
///
/// `Ast` is the shared currency of this workspace: the concrete matcher
/// interprets it directly, the rewriter normalizes it (Table 1 of the
/// paper), and the capturing-language model compiles it to string
/// constraints.
///
/// # Examples
///
/// ```
/// use regex_syntax_es6::parse;
///
/// let ast = parse(r"(a|b)+\1")?;
/// assert_eq!(ast.to_source(), r"(a|b)+\1");
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ast {
    /// The empty expression `ε` (matches the empty string).
    Empty,
    /// A single literal character.
    Literal(char),
    /// The wildcard `.` (any character except line terminators, unless the
    /// `s` flag is in effect).
    Dot,
    /// A character class such as `[a-z0-9]`, `\d` or `[^\w]`.
    Class(ClassSet),
    /// A zero-width assertion: `^`, `$`, `\b` or `\B`.
    Assertion(AssertionKind),
    /// A numbered capture group `( ... )`.
    Group {
        /// 1-based capture index, assigned left to right by order of the
        /// opening parenthesis (index 0 is the implicit whole-match group).
        index: u32,
        /// The sub-expression inside the parentheses.
        ast: Box<Ast>,
    },
    /// A non-capturing group `(?: ... )`.
    NonCapturing(Box<Ast>),
    /// A lookahead assertion `(?= ... )` (positive) or `(?! ... )`
    /// (negative).
    Lookahead {
        /// True for `(?! ... )`.
        negative: bool,
        /// The asserted sub-expression.
        ast: Box<Ast>,
    },
    /// A quantified term: `r*`, `r+`, `r?`, `r{m}`, `r{m,}`, `r{m,n}` and
    /// their lazy variants.
    Repeat {
        /// The repeated sub-expression.
        ast: Box<Ast>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions; `None` means unbounded.
        max: Option<u32>,
        /// True when the quantifier is lazy (`*?`, `+?`, `??`, `{m,n}?`).
        lazy: bool,
    },
    /// An alternation `a|b|c`. Always has at least two branches.
    Alt(Vec<Ast>),
    /// A concatenation of terms. Always has at least two items.
    Concat(Vec<Ast>),
    /// A backreference `\1` .. `\99` to a numbered capture group.
    Backref(u32),
}

/// The kind of a zero-width assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssertionKind {
    /// `^` — start of input (or of a line under the `m` flag).
    StartAnchor,
    /// `$` — end of input (or of a line under the `m` flag).
    EndAnchor,
    /// `\b` — word boundary.
    WordBoundary,
    /// `\B` — non-word boundary.
    NotWordBoundary,
}

impl Ast {
    /// Builds a concatenation, flattening nested concatenations and
    /// dropping `ε` items.
    ///
    /// Zero items produce [`Ast::Empty`]; a single item is returned as-is.
    pub fn concat(items: Vec<Ast>) -> Ast {
        let mut flat = Vec::with_capacity(items.len());
        for item in items {
            match item {
                Ast::Empty => {}
                Ast::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Ast::Empty,
            1 => flat.pop().expect("one item"),
            _ => Ast::Concat(flat),
        }
    }

    /// Builds an alternation; a single branch is returned as-is.
    ///
    /// Unlike [`Ast::concat`], empty branches are preserved because `a|`
    /// legitimately matches either `a` or the empty string.
    pub fn alt(mut branches: Vec<Ast>) -> Ast {
        match branches.len() {
            0 => Ast::Empty,
            1 => branches.pop().expect("one branch"),
            _ => Ast::Alt(branches),
        }
    }

    /// Returns the number of capture groups contained in this AST.
    ///
    /// # Examples
    ///
    /// ```
    /// use regex_syntax_es6::parse;
    /// assert_eq!(parse("a|((b)*c)*d")?.capture_count(), 2);
    /// # Ok::<(), regex_syntax_es6::ParseError>(())
    /// ```
    pub fn capture_count(&self) -> u32 {
        match self {
            Ast::Group { ast, .. } => 1 + ast.capture_count(),
            Ast::NonCapturing(ast) | Ast::Lookahead { ast, .. } => ast.capture_count(),
            Ast::Repeat { ast, .. } => ast.capture_count(),
            Ast::Alt(items) | Ast::Concat(items) => items.iter().map(Ast::capture_count).sum(),
            _ => 0,
        }
    }

    /// Returns the capture-group indices contained in this AST, in
    /// left-to-right order of the opening parenthesis.
    pub fn capture_indices(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_captures(&mut out);
        out
    }

    fn collect_captures(&self, out: &mut Vec<u32>) {
        match self {
            Ast::Group { index, ast } => {
                out.push(*index);
                ast.collect_captures(out);
            }
            Ast::NonCapturing(ast) | Ast::Lookahead { ast, .. } => ast.collect_captures(out),
            Ast::Repeat { ast, .. } => ast.collect_captures(out),
            Ast::Alt(items) | Ast::Concat(items) => {
                for item in items {
                    item.collect_captures(out);
                }
            }
            _ => {}
        }
    }

    /// True if the AST contains a backreference anywhere.
    pub fn has_backref(&self) -> bool {
        match self {
            Ast::Backref(_) => true,
            Ast::Group { ast, .. } | Ast::NonCapturing(ast) | Ast::Lookahead { ast, .. } => {
                ast.has_backref()
            }
            Ast::Repeat { ast, .. } => ast.has_backref(),
            Ast::Alt(items) | Ast::Concat(items) => items.iter().any(Ast::has_backref),
            _ => false,
        }
    }

    /// True if the AST contains a capture group anywhere.
    pub fn has_captures(&self) -> bool {
        match self {
            Ast::Group { .. } => true,
            Ast::NonCapturing(ast) | Ast::Lookahead { ast, .. } => ast.has_captures(),
            Ast::Repeat { ast, .. } => ast.has_captures(),
            Ast::Alt(items) | Ast::Concat(items) => items.iter().any(Ast::has_captures),
            _ => false,
        }
    }

    /// True if the AST contains a lookahead assertion anywhere.
    pub fn has_lookahead(&self) -> bool {
        match self {
            Ast::Lookahead { .. } => true,
            Ast::Group { ast, .. } | Ast::NonCapturing(ast) => ast.has_lookahead(),
            Ast::Repeat { ast, .. } => ast.has_lookahead(),
            Ast::Alt(items) | Ast::Concat(items) => items.iter().any(Ast::has_lookahead),
            _ => false,
        }
    }

    /// True if the AST contains an anchor (`^` or `$`) or word boundary.
    pub fn has_assertion(&self) -> bool {
        match self {
            Ast::Assertion(_) => true,
            Ast::Group { ast, .. } | Ast::NonCapturing(ast) | Ast::Lookahead { ast, .. } => {
                ast.has_assertion()
            }
            Ast::Repeat { ast, .. } => ast.has_assertion(),
            Ast::Alt(items) | Ast::Concat(items) => items.iter().any(Ast::has_assertion),
            _ => false,
        }
    }

    /// True if this expression can match the empty string (ignoring
    /// capture-group effects). Assertions are treated as nullable.
    pub fn is_nullable(&self) -> bool {
        match self {
            Ast::Empty | Ast::Assertion(_) | Ast::Lookahead { .. } => true,
            Ast::Literal(_) | Ast::Dot | Ast::Class(_) => false,
            // A backreference to an undefined or empty group matches ε.
            Ast::Backref(_) => true,
            Ast::Group { ast, .. } | Ast::NonCapturing(ast) => ast.is_nullable(),
            Ast::Repeat { ast, min, .. } => *min == 0 || ast.is_nullable(),
            Ast::Alt(items) => items.iter().any(Ast::is_nullable),
            Ast::Concat(items) => items.iter().all(Ast::is_nullable),
        }
    }

    /// Renders the AST back to regex source text.
    ///
    /// The output re-parses to an equal AST (round-trip property, checked
    /// by property tests).
    pub fn to_source(&self) -> String {
        let mut buf = String::new();
        self.write_source(&mut buf, Precedence::Alt);
        buf
    }

    fn write_source(&self, buf: &mut String, enclosing: Precedence) {
        let own = self.precedence();
        let need_parens = own < enclosing;
        if need_parens {
            buf.push_str("(?:");
        }
        match self {
            Ast::Empty => {}
            Ast::Literal(c) => push_escaped(buf, *c),
            Ast::Dot => buf.push('.'),
            Ast::Class(set) => buf.push_str(&set.to_source()),
            Ast::Assertion(kind) => buf.push_str(match kind {
                AssertionKind::StartAnchor => "^",
                AssertionKind::EndAnchor => "$",
                AssertionKind::WordBoundary => r"\b",
                AssertionKind::NotWordBoundary => r"\B",
            }),
            Ast::Group { ast, .. } => {
                buf.push('(');
                ast.write_source(buf, Precedence::Alt);
                buf.push(')');
            }
            Ast::NonCapturing(ast) => {
                buf.push_str("(?:");
                ast.write_source(buf, Precedence::Alt);
                buf.push(')');
            }
            Ast::Lookahead { negative, ast } => {
                buf.push_str(if *negative { "(?!" } else { "(?=" });
                ast.write_source(buf, Precedence::Alt);
                buf.push(')');
            }
            Ast::Repeat {
                ast,
                min,
                max,
                lazy,
            } => {
                ast.write_source(buf, Precedence::Atom);
                match (min, max) {
                    (0, None) => buf.push('*'),
                    (1, None) => buf.push('+'),
                    (0, Some(1)) => buf.push('?'),
                    (m, None) => buf.push_str(&format!("{{{m},}}")),
                    (m, Some(n)) if m == n => buf.push_str(&format!("{{{m}}}")),
                    (m, Some(n)) => buf.push_str(&format!("{{{m},{n}}}")),
                }
                if *lazy {
                    buf.push('?');
                }
            }
            Ast::Alt(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        buf.push('|');
                    }
                    item.write_source(buf, Precedence::Concat);
                }
            }
            Ast::Concat(items) => {
                for item in items {
                    item.write_source(buf, Precedence::Repeat);
                }
            }
            Ast::Backref(n) => {
                buf.push('\\');
                buf.push_str(&n.to_string());
            }
        }
        if need_parens {
            buf.push(')');
        }
    }

    fn precedence(&self) -> Precedence {
        match self {
            Ast::Alt(_) => Precedence::Alt,
            Ast::Concat(_) => Precedence::Concat,
            Ast::Repeat { .. } => Precedence::Repeat,
            Ast::Empty => Precedence::Concat,
            _ => Precedence::Atom,
        }
    }
}

impl fmt::Display for Ast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_source())
    }
}

/// Operator precedence levels used when rendering source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Precedence {
    Alt,
    Concat,
    Repeat,
    Atom,
}

/// Characters that must be escaped when they appear as literals at the
/// top level of a pattern.
pub(crate) const SYNTAX_CHARS: &[char] = &[
    '^', '$', '\\', '.', '*', '+', '?', '(', ')', '[', ']', '{', '}', '|', '/',
];

pub(crate) fn push_escaped(buf: &mut String, c: char) {
    match c {
        '\n' => buf.push_str(r"\n"),
        '\r' => buf.push_str(r"\r"),
        '\t' => buf.push_str(r"\t"),
        '\x0B' => buf.push_str(r"\v"),
        '\x0C' => buf.push_str(r"\f"),
        '\0' => buf.push_str(r"\0"),
        c if SYNTAX_CHARS.contains(&c) => {
            buf.push('\\');
            buf.push(c);
        }
        c if (c as u32) < 0x20 => {
            buf.push_str(&format!(r"\x{:02x}", c as u32));
        }
        c => buf.push(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_flattens() {
        assert_eq!(Ast::concat(vec![]), Ast::Empty);
        assert_eq!(Ast::concat(vec![Ast::Literal('a')]), Ast::Literal('a'));
        assert_eq!(
            Ast::concat(vec![Ast::Empty, Ast::Literal('a'), Ast::Empty]),
            Ast::Literal('a')
        );
    }

    #[test]
    fn alt_preserves_empty_branches() {
        let alt = Ast::alt(vec![Ast::Literal('a'), Ast::Empty]);
        assert_eq!(alt, Ast::Alt(vec![Ast::Literal('a'), Ast::Empty]));
    }

    #[test]
    fn capture_count_nested() {
        let ast = Ast::Group {
            index: 1,
            ast: Box::new(Ast::Group {
                index: 2,
                ast: Box::new(Ast::Literal('a')),
            }),
        };
        assert_eq!(ast.capture_count(), 2);
        assert_eq!(ast.capture_indices(), vec![1, 2]);
    }

    #[test]
    fn nullable_cases() {
        assert!(Ast::Empty.is_nullable());
        assert!(!Ast::Literal('a').is_nullable());
        assert!(Ast::Repeat {
            ast: Box::new(Ast::Literal('a')),
            min: 0,
            max: None,
            lazy: false
        }
        .is_nullable());
        assert!(!Ast::Repeat {
            ast: Box::new(Ast::Literal('a')),
            min: 1,
            max: None,
            lazy: false
        }
        .is_nullable());
    }

    #[test]
    fn source_escapes_metacharacters() {
        let ast = Ast::Literal('+');
        assert_eq!(ast.to_source(), r"\+");
    }

    #[test]
    fn display_matches_to_source() {
        let ast = Ast::Concat(vec![Ast::Literal('a'), Ast::Dot]);
        assert_eq!(format!("{ast}"), ast.to_source());
    }
}

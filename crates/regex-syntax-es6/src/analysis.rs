//! Structural analyses over regex ASTs.
//!
//! The central analysis is the backreference classification of
//! Definition 2 in the paper: every backreference occurrence `\k` is
//! *empty*, *mutable* or *immutable*, which selects the Table 3 model
//! used for it.

use std::collections::HashMap;

use crate::ast::Ast;

/// The type of a backreference occurrence per Definition 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackrefType {
    /// Refers to a group that has not finished matching at the point the
    /// backreference is evaluated (forward reference or self-reference);
    /// always matches `ε`.
    Empty,
    /// Can only take a single value during a match.
    Immutable,
    /// Both the group and the backreference sit under a common quantifier
    /// that can iterate, so the referenced value can change between
    /// iterations.
    Mutable,
}

/// One backreference occurrence discovered by [`classify_backrefs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackrefInfo {
    /// Index of this occurrence in pre-order traversal (0-based among
    /// backreference nodes only).
    pub occurrence: usize,
    /// The referenced capture-group number.
    pub group: u32,
    /// The Definition 2 classification.
    pub kind: BackrefType,
    /// True when the backreference itself sits under a quantifier that
    /// can iterate (the `\k*`-shaped rows of Table 3).
    pub quantified: bool,
}

/// Classifies every backreference occurrence in `ast`.
///
/// # Examples
///
/// The paper's example `/((a|b)\2)+\1\2/`: the inner `\2` is mutable, the
/// trailing `\1` and `\2` are immutable.
///
/// ```
/// use regex_syntax_es6::{parse, analysis::{classify_backrefs, BackrefType}};
///
/// let infos = classify_backrefs(&parse(r"((a|b)\2)+\1\2")?);
/// let kinds: Vec<_> = infos.iter().map(|i| i.kind).collect();
/// assert_eq!(kinds, vec![
///     BackrefType::Mutable,
///     BackrefType::Immutable,
///     BackrefType::Immutable,
/// ]);
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
pub fn classify_backrefs(ast: &Ast) -> Vec<BackrefInfo> {
    let mut walker = Walker::default();
    walker.visit(ast, &[]);
    let Walker {
        groups, backrefs, ..
    } = walker;

    backrefs
        .iter()
        .enumerate()
        .map(|(occurrence, br)| {
            let kind = match groups.get(&br.group) {
                // Group number exceeding the pattern's group count cannot
                // occur after parsing, but classify defensively.
                None => BackrefType::Empty,
                Some(info) => {
                    if br.post_position < info.post_position {
                        // Backreference seen before the group closes in
                        // post-order: forward or self reference.
                        BackrefType::Empty
                    } else if shares_iterating_quantifier(&br.quantifiers, &info.quantifiers) {
                        BackrefType::Mutable
                    } else {
                        BackrefType::Immutable
                    }
                }
            };
            BackrefInfo {
                occurrence,
                group: br.group,
                kind,
                quantified: br.quantifiers.iter().any(|q| q.can_iterate),
            }
        })
        .collect()
}

/// True if the AST contains a backreference classified as mutable, or any
/// backreference under an iterating quantifier — the cases where the
/// Table 3 approximation can make the model underapproximate (§5.4).
pub fn has_quantified_backref(ast: &Ast) -> bool {
    classify_backrefs(ast)
        .iter()
        .any(|info| info.kind == BackrefType::Mutable || info.quantified)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QuantifierCtx {
    /// Pre-order id of the quantifier node.
    id: usize,
    /// Whether the quantifier can perform more than one iteration
    /// (`max ≥ 2` or unbounded). `r?` cannot change a capture between
    /// iterations.
    can_iterate: bool,
}

#[derive(Debug)]
struct GroupRecord {
    post_position: usize,
    quantifiers: Vec<QuantifierCtx>,
}

#[derive(Debug)]
struct BackrefRecord {
    group: u32,
    post_position: usize,
    quantifiers: Vec<QuantifierCtx>,
}

#[derive(Default)]
struct Walker {
    next_id: usize,
    post_counter: usize,
    groups: HashMap<u32, GroupRecord>,
    backrefs: Vec<BackrefRecord>,
}

impl Walker {
    fn visit(&mut self, ast: &Ast, quantifiers: &[QuantifierCtx]) {
        let _node_id = self.next_id;
        self.next_id += 1;
        match ast {
            Ast::Group { index, ast } => {
                self.visit(ast, quantifiers);
                // Post-order position: group closes after its body.
                let post_position = self.post();
                self.groups.insert(
                    *index,
                    GroupRecord {
                        post_position,
                        quantifiers: quantifiers.to_vec(),
                    },
                );
                return;
            }
            Ast::NonCapturing(inner) => self.visit(inner, quantifiers),
            Ast::Lookahead { ast, .. } => self.visit(ast, quantifiers),
            Ast::Repeat {
                ast, min: _, max, ..
            } => {
                let mut inner_ctx = quantifiers.to_vec();
                inner_ctx.push(QuantifierCtx {
                    id: self.next_id,
                    can_iterate: max.is_none_or(|m| m >= 2),
                });
                self.visit(ast, &inner_ctx);
            }
            Ast::Alt(items) | Ast::Concat(items) => {
                for item in items {
                    self.visit(item, quantifiers);
                }
            }
            Ast::Backref(group) => {
                let post_position = self.post();
                self.backrefs.push(BackrefRecord {
                    group: *group,
                    post_position,
                    quantifiers: quantifiers.to_vec(),
                });
            }
            _ => {}
        }
        // Leaf/structural nodes consume a post-order slot so relative
        // ordering between groups and backrefs stays faithful.
        self.post();
    }

    fn post(&mut self) -> usize {
        let v = self.post_counter;
        self.post_counter += 1;
        v
    }
}

fn shares_iterating_quantifier(a: &[QuantifierCtx], b: &[QuantifierCtx]) -> bool {
    a.iter()
        .any(|qa| qa.can_iterate && b.iter().any(|qb| qb.id == qa.id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn kinds(pattern: &str) -> Vec<BackrefType> {
        classify_backrefs(&parse(pattern).expect("pattern should parse"))
            .iter()
            .map(|i| i.kind)
            .collect()
    }

    #[test]
    fn plain_backref_is_immutable() {
        assert_eq!(kinds(r"(a)\1"), vec![BackrefType::Immutable]);
    }

    #[test]
    fn self_reference_is_empty() {
        // Paper: /(a\1)*/ — the backreference refers to a superterm.
        assert_eq!(kinds(r"(a\1)*"), vec![BackrefType::Empty]);
    }

    #[test]
    fn forward_reference_is_empty() {
        // Paper: /\1(a)/ — the group appears later in the term.
        assert_eq!(kinds(r"\1(a)"), vec![BackrefType::Empty]);
    }

    #[test]
    fn shared_quantifier_is_mutable() {
        // Paper: /((a|b)\2)+/ — \2 can change across iterations.
        assert_eq!(kinds(r"((a|b)\2)+"), vec![BackrefType::Mutable]);
    }

    #[test]
    fn optional_quantifier_is_not_mutable() {
        // `?` cannot iterate more than once, so the value cannot change.
        assert_eq!(kinds(r"((a)\2)?"), vec![BackrefType::Immutable]);
    }

    #[test]
    fn quantified_flag_for_starred_backref() {
        let infos = classify_backrefs(&parse(r"(a)\1*").expect("parse"));
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].kind, BackrefType::Immutable);
        assert!(infos[0].quantified);
    }

    #[test]
    fn paper_full_example() {
        // /((a|b)\2)+\1\2/: mutable, then two immutables.
        assert_eq!(
            kinds(r"((a|b)\2)+\1\2"),
            vec![
                BackrefType::Mutable,
                BackrefType::Immutable,
                BackrefType::Immutable
            ]
        );
    }

    #[test]
    fn group_in_one_branch_backref_in_other() {
        // Group closes before the backref in post-order (concat order).
        assert_eq!(kinds(r"(?:(a))\1"), vec![BackrefType::Immutable]);
    }

    #[test]
    fn detector_for_quantified_backrefs() {
        assert!(has_quantified_backref(
            &parse(r"((a|b)\2)+").expect("parse")
        ));
        assert!(!has_quantified_backref(&parse(r"(a)\1").expect("parse")));
    }
}

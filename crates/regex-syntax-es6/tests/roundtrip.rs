//! Property tests: printing a parsed AST re-parses to an equal AST, and
//! structural analyses are stable under the round trip.

use proptest::prelude::*;
use regex_syntax_es6::ast::Ast;
use regex_syntax_es6::parse;
use regex_syntax_es6::rewrite::{desugar, normalize_lazy, strip_captures};

/// A generator of syntactically valid ES6 regex ASTs (via source
/// strings assembled from safe fragments).
fn arb_pattern() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("[a-z]".to_string()),
        Just("[^0-9]".to_string()),
        Just(r"\d".to_string()),
        Just(r"\w".to_string()),
        Just(".".to_string()),
        Just(r"\.".to_string()),
        Just(r"\n".to_string()),
    ];
    let quantified = (
        atom,
        prop_oneof![
            Just("".to_string()),
            Just("*".to_string()),
            Just("+".to_string()),
            Just("?".to_string()),
            Just("*?".to_string()),
            Just("{2,3}".to_string()),
        ],
    )
        .prop_map(|(a, q)| format!("{a}{q}"));
    let seq = proptest::collection::vec(quantified, 1..4).prop_map(|parts| parts.concat());
    // One level of grouping and alternation.
    (seq.clone(), seq.clone(), seq).prop_map(|(a, b, c)| format!("(?:{a}|{b})({c})"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn to_source_round_trips(pattern in arb_pattern()) {
        let ast = parse(&pattern).expect("generated pattern parses");
        let printed = ast.to_source();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed {printed:?} must parse: {e}"));
        prop_assert_eq!(ast, reparsed);
    }

    #[test]
    fn rewrites_preserve_capture_free_invariants(pattern in arb_pattern()) {
        let ast = parse(&pattern).expect("parses");
        let stripped = strip_captures(&ast);
        prop_assert_eq!(stripped.capture_count(), 0);
        // normalize_lazy never changes capture structure.
        let normalized = normalize_lazy(&ast);
        prop_assert_eq!(normalized.capture_count(), ast.capture_count());
        // desugar keeps nullability.
        let desugared = desugar(&ast);
        prop_assert_eq!(desugared.is_nullable(), ast.is_nullable());
    }

    #[test]
    fn round_trip_is_idempotent(pattern in arb_pattern()) {
        let ast = parse(&pattern).expect("parses");
        let once = ast.to_source();
        let twice = parse(&once).expect("parses").to_source();
        prop_assert_eq!(once, twice);
    }
}

#[test]
fn round_trip_fixed_corpus() {
    // Hand-picked regressions and paper expressions.
    for pattern in [
        r"<(\w+)>([0-9]*)<\/\1>",
        "a|((b)*c)*d",
        r"((a|b)\2)+\1\2",
        "^a*(a)?$",
        r"(?=ok)ok[a-z]*",
        r"(?!no)[a-z]+",
        r"\bword\b",
        "x{2,}y{3}z{1,4}",
        "a+?b*?c??",
        "[-a-z]",
        r"[\]\\]",
        "(?:(a)|(b))+",
    ] {
        let ast = parse(pattern).expect("parses");
        let printed = ast.to_source();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{printed:?} must reparse: {e}"));
        assert_eq!(ast, reparsed, "round trip of {pattern}");
    }
}

fn assert_is_empty_like(ast: &Ast) {
    // Smoke helper used to keep the Ast import exercised.
    let _ = ast.capture_count();
}

#[test]
fn helper_compiles() {
    assert_is_empty_like(&parse("a").expect("parses"));
}

//! The shrinker's determinism contract: the same failing input always
//! reduces to the byte-identical minimal reproducer, and the reduction
//! actually minimizes.

use expose_fuzz::{render_repro_test, run_case, shrink_with, Case, FuzzBudget, Layer, Query};

/// A synthetic failure property: the case "fails" while its pattern
/// still contains a `b` literal. Stands in for a real cross-layer
/// disagreement so the shrinking machinery can be exercised on demand
/// (the real layers currently — by design — have nothing that fails).
fn fails_on_b(case: &Case) -> Option<expose_fuzz::Disagreement> {
    case.pattern
        .contains('b')
        .then(|| expose_fuzz::Disagreement {
            layer: Layer::MatcherVsDfa,
            detail: format!("synthetic: pattern {:?} contains b", case.pattern),
        })
}

fn big_case() -> Case {
    Case {
        pattern: r"^a+(?:b|c{2,3})([b-é]\d)*\1?$".to_string(),
        flags: "im".to_string(),
        query: Query::PinInput {
            positive: true,
            word: "abb1".to_string(),
        },
        seed: 77,
    }
}

#[test]
fn same_input_shrinks_to_byte_identical_reproducer() {
    let a = shrink_with(&big_case(), Layer::MatcherVsDfa, 2000, fails_on_b);
    let b = shrink_with(&big_case(), Layer::MatcherVsDfa, 2000, fails_on_b);
    assert_eq!(a.case, b.case);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.disagreement.detail, b.disagreement.detail);
    let ra = render_repro_test(&a);
    let rb = render_repro_test(&b);
    assert_eq!(ra, rb, "rendered reproducers must be byte-identical");
}

#[test]
fn shrinking_reaches_a_local_minimum() {
    let shrunk = shrink_with(&big_case(), Layer::MatcherVsDfa, 2000, fails_on_b);
    // Still failing, and minimal for the property: the pattern is the
    // lone offending literal and every decoration is gone.
    assert!(shrunk.case.pattern.contains('b'));
    assert_eq!(shrunk.case.pattern, "b", "expected the single literal");
    assert_eq!(shrunk.case.flags, "");
    assert_eq!(shrunk.case.query, Query::Top { positive: true });
    assert_eq!(shrunk.case.seed, 0);
}

#[test]
fn rendered_reproducer_is_executable_shape() {
    let shrunk = shrink_with(&big_case(), Layer::MatcherVsDfa, 2000, fails_on_b);
    let test = render_repro_test(&shrunk);
    assert!(test.contains("#[test]"));
    assert!(test.contains("expose_fuzz::Case::from_line"));
    assert!(test.contains("expose_fuzz::run_case"));
    // The embedded corpus line must parse back to the shrunk case.
    let line = shrunk.case.to_line();
    assert!(test.contains(&format!("{line:?}")));
    assert_eq!(Case::from_line(&line).expect("line parses"), shrunk.case);
}

#[test]
fn real_shrink_on_a_passing_case_is_a_no_op_failure_guard() {
    // `shrink` (the run_case-backed wrapper) on a case that does not
    // fail must terminate quickly and keep the case intact apart from
    // detail re-derivation.
    let budget = FuzzBudget::quick();
    let case = Case {
        pattern: "goo+d".to_string(),
        flags: String::new(),
        query: Query::Top { positive: true },
        seed: 0,
    };
    assert!(run_case(&case, &budget).disagreement.is_none());
    let shrunk = expose_fuzz::shrink(&case, Layer::MatcherVsDfa, &budget);
    assert_eq!(shrunk.case, case, "no reduction may be committed");
}

//! The `--incremental` fuzz mode: every generated case additionally
//! cross-checks the assumption-stack session and the incremental CEGAR
//! entry point (including verdict-cache replay) against the
//! from-scratch solves. Over a seed window this must stay disagreement
//! free, and the extra comparisons must actually run — the mode is a
//! no-op otherwise.

use expose_fuzz::{run_range, FuzzBudget, GenConfig};

#[test]
fn incremental_mode_agrees_over_seed_window() {
    let mut budget = FuzzBudget::quick();
    budget.incremental_check = true;
    let (stats, failures) = run_range(0..150, &GenConfig::default(), &budget);
    assert!(
        failures.is_empty(),
        "incremental cross-check disagreed: {failures:?}"
    );
    assert_eq!(stats.cases, 150);
    assert_eq!(stats.disagreements, 0);
    // Each case that reaches the solver layers contributes one session
    // comparison plus two CEGAR passes; a healthy window must exercise
    // plenty of them.
    assert!(
        stats.incremental_checks >= 150,
        "only {} incremental comparisons ran",
        stats.incremental_checks
    );
}

#[test]
fn incremental_mode_is_off_by_default() {
    let budget = FuzzBudget::quick();
    let (stats, _) = run_range(0..20, &GenConfig::default(), &budget);
    assert_eq!(stats.incremental_checks, 0);
}

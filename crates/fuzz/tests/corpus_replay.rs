//! Replays the checked-in regression corpus (`crates/fuzz/corpus/`):
//! every line is a shrunk reproducer of a once-real cross-layer
//! disagreement (or a paper example pinned as a fixed case), and must
//! now pass every differential check. A failure here means a fixed bug
//! regressed — the corpus line names the original finding.

use std::path::PathBuf;

use expose_fuzz::{run_case, Case, FuzzBudget};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn corpus_cases() -> Vec<(String, String, Case)> {
    let mut out = Vec::new();
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "case"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus must not be empty");
    for file in files {
        let name = file
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        let content =
            std::fs::read_to_string(&file).unwrap_or_else(|e| panic!("cannot read {name}: {e}"));
        for line in content.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let case = Case::from_line(line)
                .unwrap_or_else(|e| panic!("{name}: malformed corpus line {line:?}: {e}"));
            out.push((name.clone(), line.to_string(), case));
        }
    }
    out
}

#[test]
fn every_corpus_case_passes_all_layers() {
    let budget = FuzzBudget::quick();
    let cases = corpus_cases();
    assert!(
        cases.len() >= 10,
        "corpus unexpectedly small: {}",
        cases.len()
    );
    for (file, line, case) in &cases {
        let outcome = run_case(case, &budget);
        assert!(
            outcome.disagreement.is_none(),
            "{file}: corpus case regressed: {line}\n  {:?}",
            outcome.disagreement
        );
    }
}

#[test]
fn corpus_lines_round_trip() {
    for (file, line, case) in corpus_cases() {
        assert_eq!(
            case.to_line(),
            line,
            "{file}: corpus line is not in canonical form"
        );
    }
}

#[test]
fn corpus_replay_is_deterministic() {
    // Replaying a case twice observes identical verdicts — the
    // foundation the shrinker's byte-identical-reproducer contract
    // rests on.
    let budget = FuzzBudget::quick();
    for (file, _, case) in corpus_cases().into_iter().take(6) {
        let a = run_case(&case, &budget);
        let b = run_case(&case, &budget);
        assert_eq!(a.solver_verdict, b.solver_verdict, "{file}");
        assert_eq!(a.cegar_verdict, b.cegar_verdict, "{file}");
        assert_eq!(a.dfa_words_checked, b.dfa_words_checked, "{file}");
    }
}

//! Exploration differential: the pure-concolic orchestrator must be
//! deterministic in the strongest sense the service relies on — same
//! seed program in, byte-identical corpus trajectory out, for any flip
//! worker count and across repeated runs. Each check folds the whole
//! run (per-iteration progress, corpus content hashes, coverage sets,
//! bug-dedup digests) so any divergence anywhere in the loop surfaces
//! as a digest mismatch here before it can reach the wire protocol.

use corpus::{generate_dse_programs, library_workloads};
use expose_dse::parser::parse_program;
use expose_dse::{
    explore_with_caches, DseCaches, EngineConfig, ExploreConfig, ExploreReport, Harness,
};

/// One exploration run under a given flip worker count, with fresh
/// caches so runs cannot influence each other through shared state.
fn run(
    source: &str,
    entry: &str,
    arity: usize,
    iterations: usize,
    workers: usize,
) -> ExploreReport {
    let program = parse_program(source).expect("workload parses");
    let harness = Harness::strings(entry, arity);
    let engine = EngineConfig {
        flip_workers: workers,
        max_steps: 50_000,
        ..EngineConfig::default()
    };
    let config = ExploreConfig {
        engine,
        max_iterations: iterations,
        ..ExploreConfig::default()
    };
    let caches = DseCaches::session_from_config(&config.engine);
    explore_with_caches(&program, &harness, &config, &caches)
}

/// Everything the determinism contract promises, in comparable form.
fn fingerprint(report: &ExploreReport) -> (u64, u64, Vec<u64>, Vec<u32>, usize, Vec<u64>) {
    let mut coverage: Vec<u32> = report.coverage.iter().copied().collect();
    coverage.sort_unstable();
    (
        report.trajectory_digest(),
        report.corpus.digest(),
        report.corpus.entries().iter().map(|e| e.hash).collect(),
        coverage,
        report.covered_directions,
        report.bugs.iter().map(|b| b.trail_digest).collect(),
    )
}

#[test]
fn trajectory_is_flip_worker_invariant() {
    let mut programs: Vec<(String, String, usize)> = library_workloads()
        .into_iter()
        .map(|w| (w.source.to_string(), w.entry.to_string(), w.arity))
        .collect();
    for p in generate_dse_programs(5, 0xbe7c) {
        programs.push((p.source, p.entry, p.arity));
    }
    for (source, entry, arity) in &programs {
        let reference = fingerprint(&run(source, entry, *arity, 6, 1));
        for workers in [2usize, 8] {
            let candidate = fingerprint(&run(source, entry, *arity, 6, workers));
            assert_eq!(
                candidate, reference,
                "{entry}: corpus trajectory diverged at flip_workers={workers}"
            );
        }
    }
}

#[test]
fn repeated_runs_are_identical() {
    for w in library_workloads() {
        let first = fingerprint(&run(w.source, w.entry, w.arity, 6, 4));
        let second = fingerprint(&run(w.source, w.entry, w.arity, 6, 4));
        assert_eq!(first, second, "{}: re-run diverged", w.name);
    }
}

#[test]
fn exploration_exceeds_single_trace_flip_coverage() {
    // The tentpole claim: closing the solve → seed loop witnesses paths
    // a single trace's flips cannot. At least one library workload must
    // show strictly more unique paths AND strictly more covered branch
    // directions than its one-iteration (single-trace-flip) run — and
    // no workload may ever lose coverage by iterating.
    let mut strictly_better = 0usize;
    for w in library_workloads() {
        let single = run(w.source, w.entry, w.arity, 1, 4);
        let looped = run(w.source, w.entry, w.arity, 8, 4);
        assert!(
            looped.unique_paths >= single.unique_paths,
            "{}: iterating lost paths",
            w.name
        );
        assert!(
            looped.coverage.is_superset(&single.coverage),
            "{}: iterating lost statement coverage",
            w.name
        );
        if looped.unique_paths > single.unique_paths
            && looped.covered_directions > single.covered_directions
        {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 1,
        "no library workload gained coverage from the exploration loop"
    );
}

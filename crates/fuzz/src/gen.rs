//! Case generation: a seed becomes a regex (via
//! [`regex_syntax_es6::arbitrary`]) plus a query over its capture
//! model. Fully deterministic — the seed *is* the case identity.

use es6_matcher::RegExp;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use regex_syntax_es6::arbitrary::{arbitrary_ast, arbitrary_flags, GenConfig};
use regex_syntax_es6::ast::Ast;
use regex_syntax_es6::Regex;

use crate::case::{Case, Query};
use crate::check::FuzzBudget;

/// Builds the case for one seed.
///
/// The query word for `pin`/`capeq` queries is biased toward *actually
/// matching* words (found by running the oracle over short candidate
/// words), so both satisfiable and unsatisfiable queries are common —
/// a fuzzer that only poses doomed queries never exercises the Sat
/// validation path.
pub fn generate_case(seed: u64, cfg: &GenConfig, budget: &FuzzBudget) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    // A small bucket of classically pathological shapes — exponential
    // for the backtracker, linear for the Pike VM — so the
    // engine-vs-engine layer routinely exercises the step-bound
    // witness, not just average-case agreement.
    let ast = if rng.random_bool(0.08) {
        pathological_ast(&mut rng, cfg)
    } else {
        arbitrary_ast(&mut rng, cfg)
    };
    let flags = arbitrary_flags(&mut rng);
    let pattern = ast.to_source();
    let query = match Regex::new(&pattern, flags) {
        Ok(regex) => generate_query(&mut rng, &regex, cfg, budget),
        // Unparseable output is itself the finding; run_case reports
        // it, and the trivial query keeps the case well-formed.
        Err(_) => Query::Top { positive: true },
    };
    Case {
        pattern,
        flags: flags.to_string(),
        query,
        seed,
    }
}

/// One of the classic catastrophic-backtracking templates over the
/// generator alphabet: `(x+)+y`, `(x|xx)*y`, `(x*)*y`, `(x|x)*y`.
/// All are backreference-free, so [`es6_matcher::select`] routes them
/// to the Pike VM.
fn pathological_ast(rng: &mut StdRng, cfg: &GenConfig) -> Ast {
    let x = *cfg.alphabet.choose(rng).expect("non-empty alphabet");
    let y = *cfg
        .alphabet
        .iter()
        .find(|&&c| c != x)
        .unwrap_or(&cfg.alphabet[0]);
    let body = match rng.random_range(0usize..4) {
        // (x+)+
        0 => Ast::Repeat {
            ast: Box::new(Ast::Group {
                index: 1,
                ast: Box::new(Ast::Repeat {
                    ast: Box::new(Ast::Literal(x)),
                    min: 1,
                    max: None,
                    lazy: false,
                }),
            }),
            min: 1,
            max: None,
            lazy: false,
        },
        // (x|xx)*
        1 => Ast::Repeat {
            ast: Box::new(Ast::Group {
                index: 1,
                ast: Box::new(Ast::alt(vec![
                    Ast::Literal(x),
                    Ast::concat(vec![Ast::Literal(x), Ast::Literal(x)]),
                ])),
            }),
            min: 0,
            max: None,
            lazy: false,
        },
        // (x*)*
        2 => Ast::Repeat {
            ast: Box::new(Ast::Group {
                index: 1,
                ast: Box::new(Ast::Repeat {
                    ast: Box::new(Ast::Literal(x)),
                    min: 0,
                    max: None,
                    lazy: false,
                }),
            }),
            min: 0,
            max: None,
            lazy: false,
        },
        // (x|x)*
        _ => Ast::Repeat {
            ast: Box::new(Ast::Group {
                index: 1,
                ast: Box::new(Ast::alt(vec![Ast::Literal(x), Ast::Literal(x)])),
            }),
            min: 0,
            max: None,
            lazy: false,
        },
    };
    Ast::concat(vec![body, Ast::Literal(y)])
}

/// A short random word over the generator alphabet.
fn random_word(rng: &mut StdRng, cfg: &GenConfig, max_len: usize) -> String {
    let len = rng.random_range(0usize..=max_len);
    (0..len)
        .map(|_| *cfg.alphabet.choose(rng).expect("non-empty alphabet"))
        .collect()
}

/// Tries to find a word the regex concretely matches, by testing short
/// random words plus the empty word. Budgeted; `None` when nothing
/// matched (common for conjunctive patterns).
fn find_matching_word(
    rng: &mut StdRng,
    regex: &Regex,
    cfg: &GenConfig,
    budget: &FuzzBudget,
) -> Option<(String, Vec<Option<String>>)> {
    let mut probe = {
        let mut r = regex.clone();
        r.flags.global = false;
        r.flags.sticky = false;
        RegExp::from_regex(r)
    };
    let mut candidates = vec![String::new()];
    for _ in 0..24 {
        candidates.push(random_word(rng, cfg, 6));
    }
    for word in candidates {
        if let Ok(Some(result)) = probe.exec_within(&word, Some(budget.step_limit)) {
            return Some((word, result.captures));
        }
    }
    None
}

fn generate_query(rng: &mut StdRng, regex: &Regex, cfg: &GenConfig, budget: &FuzzBudget) -> Query {
    let positive = rng.random_bool(0.6);
    let captures = regex.capture_count as usize;
    let roll = rng.random_range(0usize..100);
    match roll {
        // Plain membership either way.
        0..=29 => Query::Top { positive },
        // Pin the input: half the time to a word that matches, half to
        // a random one.
        30..=49 => {
            let word = if rng.random_bool(0.5) {
                find_matching_word(rng, regex, cfg, budget)
                    .map(|(w, _)| w)
                    .unwrap_or_else(|| random_word(rng, cfg, 5))
            } else {
                random_word(rng, cfg, 5)
            };
            Query::PinInput { positive, word }
        }
        50..=59 => Query::NeInput {
            positive,
            word: random_word(rng, cfg, 4),
        },
        // Capture queries (positive membership only; fall back to Top
        // for capture-free patterns).
        60..=79 if captures > 0 => Query::CaptureDefined {
            index: rng.random_range(0usize..=captures),
            value: rng.random_bool(0.7),
        },
        80..=99 if captures > 0 => {
            let index = rng.random_range(0usize..=captures);
            // Bias toward a value the engine actually produces.
            let word = match find_matching_word(rng, regex, cfg, budget) {
                Some((_, caps)) if rng.random_bool(0.7) => caps
                    .get(index)
                    .cloned()
                    .flatten()
                    .unwrap_or_else(|| random_word(rng, cfg, 3)),
                _ => random_word(rng, cfg, 3),
            };
            Query::CaptureEq { index, word }
        }
        _ => Query::Top { positive },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regex_syntax_es6::Flags;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let budget = FuzzBudget::quick();
        for seed in [0u64, 7, 1234] {
            let a = generate_case(seed, &cfg, &budget);
            let b = generate_case(seed, &cfg, &budget);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn query_kinds_all_appear() {
        let cfg = GenConfig::default();
        let budget = FuzzBudget::quick();
        let mut kinds = std::collections::BTreeSet::new();
        for seed in 0..400u64 {
            kinds.insert(generate_case(seed, &cfg, &budget).query.kind());
        }
        for kind in ["top", "pin", "ne", "capdef", "capeq"] {
            assert!(kinds.contains(kind), "query kind {kind} never generated");
        }
    }

    #[test]
    fn pathological_bucket_appears() {
        let cfg = GenConfig::default();
        let budget = FuzzBudget::quick();
        let shapes = ["+)+", "|xx", "*)*", "|x)*"];
        let mut hits = 0usize;
        for seed in 0..400u64 {
            let case = generate_case(seed, &cfg, &budget);
            let normalized: String = case
                .pattern
                .chars()
                .map(|c| {
                    if c == '(' || c == ')' || c == '|' || c == '*' || c == '+' {
                        c
                    } else {
                        'x'
                    }
                })
                .collect();
            if shapes.iter().any(|s| normalized.contains(s)) {
                hits += 1;
            }
        }
        // ~8% of 400 seeds; the structural check can also fire on
        // ordinary generated patterns, so only a floor is asserted.
        assert!(hits >= 15, "pathological bucket underrepresented: {hits}");
    }

    #[test]
    fn flags_round_trip_through_case() {
        let cfg = GenConfig::default();
        let budget = FuzzBudget::quick();
        for seed in 0..100u64 {
            let case = generate_case(seed, &cfg, &budget);
            let parsed: Flags = case.flags.parse().expect("flags round-trip");
            assert_eq!(parsed.to_string(), case.flags);
        }
    }
}

//! Delta-debugging shrinker: reduces a failing case to a minimal
//! reproducer, deterministically.
//!
//! The shrink loop repeatedly tries single-step reductions — AST
//! simplifications, flag drops, query simplifications, seed zeroing —
//! and greedily commits the *first* (in a fixed enumeration order)
//! reduction that still fails in the **same layer**. Same input ⇒ same
//! reduction trace ⇒ byte-identical minimal reproducer; the corpus
//! replay and determinism tests rely on this.

use regex_syntax_es6::ast::Ast;

use crate::case::{Case, Query};
use crate::check::{run_case, Disagreement, FuzzBudget, Layer};

/// The result of shrinking a failing case.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimal failing case.
    pub case: Case,
    /// Its disagreement (same layer as the original failure).
    pub disagreement: Disagreement,
    /// Property evaluations spent.
    pub steps: usize,
}

/// Shrinks `case` (which must fail in `layer`) to a local minimum:
/// no single-step reduction still fails in that layer.
pub fn shrink(case: &Case, layer: Layer, budget: &FuzzBudget) -> Shrunk {
    shrink_with(case, layer, budget.shrink_steps, |candidate| {
        run_case(candidate, budget)
            .disagreement
            .filter(|d| d.layer == layer)
    })
}

/// The delta-debugging engine behind [`shrink`], generic over the
/// failure property — `fails` returns the disagreement when the
/// candidate still exhibits the failure being minimized.
///
/// Greedy first-success restarts over the fixed candidate
/// enumeration order make the reduction trace — and therefore the
/// minimal reproducer — a pure function of the input: same failing
/// case + property ⇒ byte-identical output (the determinism contract
/// `crates/fuzz/tests` pins down).
pub fn shrink_with(
    case: &Case,
    layer: Layer,
    max_steps: usize,
    mut fails: impl FnMut(&Case) -> Option<Disagreement>,
) -> Shrunk {
    let mut current = case.clone();
    let mut disagreement = Disagreement {
        layer,
        detail: String::new(),
    };
    let mut steps = 0usize;
    'outer: loop {
        for candidate in candidates(&current) {
            if steps >= max_steps {
                break 'outer;
            }
            steps += 1;
            if let Some(d) = fails(&candidate) {
                current = candidate;
                disagreement = d;
                continue 'outer;
            }
        }
        break;
    }
    // Re-derive the detail when no reduction ever succeeded (the
    // original failure is already minimal).
    if disagreement.detail.is_empty() {
        if let Some(d) = fails(&current) {
            disagreement = d;
        }
    }
    Shrunk {
        case: current,
        disagreement,
        steps,
    }
}

/// Renders a minimal case as a ready-to-paste Rust regression test
/// (the shape used by `crates/fuzz/tests/corpus_replay.rs`).
pub fn render_repro_test(shrunk: &Shrunk) -> String {
    let line = shrunk.case.to_line();
    let hash = fnv1a(line.as_bytes());
    format!(
        "#[test]\n\
         fn fuzz_repro_{hash:016x}() {{\n\
         \x20   // layer: {}; {}\n\
         \x20   // case: {}\n\
         \x20   let case = expose_fuzz::Case::from_line({line:?}).expect(\"corpus line\");\n\
         \x20   let outcome = expose_fuzz::run_case(&case, &expose_fuzz::FuzzBudget::quick());\n\
         \x20   assert!(\n\
         \x20       outcome.disagreement.is_none(),\n\
         \x20       \"cross-layer disagreement: {{:?}}\",\n\
         \x20       outcome.disagreement\n\
         \x20   );\n\
         }}\n",
        shrunk.disagreement.layer.name(),
        shrunk.disagreement.detail.replace('\n', " "),
        shrunk.case,
    )
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// All single-step reductions of a case, in a fixed order: pattern
/// first (largest wins there), then flags, then query, then seed.
fn candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    if let Ok(ast) = regex_syntax_es6::parse(&case.pattern) {
        for reduced in ast_reductions(&ast) {
            let pattern = reduced.to_source();
            if pattern != case.pattern {
                out.push(Case {
                    pattern,
                    ..case.clone()
                });
            }
        }
    }
    for (i, _) in case.flags.char_indices() {
        let mut flags: String = String::with_capacity(case.flags.len());
        for (j, c) in case.flags.char_indices() {
            if j != i {
                flags.push(c);
            }
        }
        out.push(Case {
            flags,
            ..case.clone()
        });
    }
    for query in query_reductions(&case.query) {
        out.push(Case {
            query,
            ..case.clone()
        });
    }
    if case.seed != 0 {
        out.push(Case {
            seed: 0,
            ..case.clone()
        });
    }
    out
}

fn query_reductions(query: &Query) -> Vec<Query> {
    let mut out = Vec::new();
    let positive = query.positive();
    match query {
        Query::Top { .. } => {}
        Query::PinInput { word, .. } => {
            for shorter in word_reductions(word) {
                out.push(Query::PinInput {
                    positive,
                    word: shorter,
                });
            }
            out.push(Query::Top { positive });
        }
        Query::NeInput { word, .. } => {
            for shorter in word_reductions(word) {
                out.push(Query::NeInput {
                    positive,
                    word: shorter,
                });
            }
            out.push(Query::Top { positive });
        }
        Query::CaptureDefined { index, value } => {
            if *index > 0 {
                out.push(Query::CaptureDefined {
                    index: index - 1,
                    value: *value,
                });
            }
            out.push(Query::Top { positive });
        }
        Query::CaptureEq { index, word } => {
            for shorter in word_reductions(word) {
                out.push(Query::CaptureEq {
                    index: *index,
                    word: shorter,
                });
            }
            if *index > 0 {
                out.push(Query::CaptureEq {
                    index: index - 1,
                    word: word.clone(),
                });
            }
            out.push(Query::CaptureDefined {
                index: *index,
                value: true,
            });
            out.push(Query::Top { positive });
        }
    }
    out
}

/// The word with one character removed, at every position.
fn word_reductions(word: &str) -> Vec<String> {
    let chars: Vec<char> = word.chars().collect();
    (0..chars.len())
        .map(|skip| {
            chars
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, c)| *c)
                .collect()
        })
        .collect()
}

/// Every AST reachable by one reduction step: local simplifications of
/// the root, plus one-step reductions of each child in place.
fn ast_reductions(ast: &Ast) -> Vec<Ast> {
    let mut out = Vec::new();
    local_reductions(ast, &mut out);
    match ast {
        Ast::Group { index, ast: inner } => {
            for reduced in ast_reductions(inner) {
                out.push(Ast::Group {
                    index: *index,
                    ast: Box::new(reduced),
                });
            }
        }
        Ast::NonCapturing(inner) => {
            for reduced in ast_reductions(inner) {
                out.push(Ast::NonCapturing(Box::new(reduced)));
            }
        }
        Ast::Lookahead {
            negative,
            ast: inner,
        } => {
            for reduced in ast_reductions(inner) {
                out.push(Ast::Lookahead {
                    negative: *negative,
                    ast: Box::new(reduced),
                });
            }
        }
        Ast::Repeat {
            ast: inner,
            min,
            max,
            lazy,
        } => {
            for reduced in ast_reductions(inner) {
                out.push(Ast::Repeat {
                    ast: Box::new(reduced),
                    min: *min,
                    max: *max,
                    lazy: *lazy,
                });
            }
        }
        Ast::Alt(items) | Ast::Concat(items) => {
            let rebuild = |new_items: Vec<Ast>| match ast {
                Ast::Alt(_) => Ast::alt(new_items),
                _ => Ast::concat(new_items),
            };
            for (i, item) in items.iter().enumerate() {
                for reduced in ast_reductions(item) {
                    let mut new_items = items.clone();
                    new_items[i] = reduced;
                    out.push(rebuild(new_items));
                }
            }
        }
        _ => {}
    }
    out
}

/// Reductions applying at `ast` itself (not inside it), biggest first.
fn local_reductions(ast: &Ast, out: &mut Vec<Ast>) {
    match ast {
        Ast::Empty => {}
        Ast::Literal(c) => {
            if *c != 'a' {
                out.push(Ast::Literal('a'));
            }
        }
        Ast::Dot => out.push(Ast::Literal('a')),
        Ast::Class(set) => {
            use regex_syntax_es6::class::ClassItem;
            // Collapse to a representative literal of each item, so a
            // failing `[b-é]` can continue shrinking as `b`.
            for item in &set.items {
                match item {
                    ClassItem::Single(c) => out.push(Ast::Literal(*c)),
                    ClassItem::Range(lo, hi) => {
                        out.push(Ast::Literal(*lo));
                        out.push(Ast::Literal(*hi));
                    }
                    ClassItem::Perl(_) => {}
                }
            }
            out.push(Ast::Literal('a'));
        }
        Ast::Assertion(_) => out.push(Ast::Empty),
        Ast::Group { ast: inner, .. } => {
            out.push((**inner).clone());
            out.push(Ast::Empty);
        }
        Ast::NonCapturing(inner) => out.push((**inner).clone()),
        Ast::Lookahead { ast: inner, .. } => {
            out.push(Ast::Empty);
            out.push((**inner).clone());
        }
        Ast::Repeat {
            ast: inner,
            min,
            max,
            lazy,
        } => {
            out.push((**inner).clone());
            if *lazy {
                out.push(Ast::Repeat {
                    ast: inner.clone(),
                    min: *min,
                    max: *max,
                    lazy: false,
                });
            }
            if max.is_none() {
                out.push(Ast::Repeat {
                    ast: inner.clone(),
                    min: *min,
                    max: Some((*min).max(1)),
                    lazy: *lazy,
                });
            }
            if *min > 0 {
                out.push(Ast::Repeat {
                    ast: inner.clone(),
                    min: min - 1,
                    max: *max,
                    lazy: *lazy,
                });
            }
        }
        Ast::Alt(items) => {
            for item in items {
                out.push(item.clone());
            }
            for skip in 0..items.len() {
                let remaining: Vec<Ast> = items
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, a)| a.clone())
                    .collect();
                out.push(Ast::alt(remaining));
            }
        }
        Ast::Concat(items) => {
            for skip in 0..items.len() {
                let remaining: Vec<Ast> = items
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, a)| a.clone())
                    .collect();
                out.push(Ast::concat(remaining));
            }
            for item in items {
                out.push(item.clone());
            }
        }
        Ast::Backref(_) => {
            out.push(Ast::Empty);
            out.push(Ast::Literal('a'));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_strictly_simplify() {
        let ast = regex_syntax_es6::parse(r"^(a+|[b-c]){2,}(?=x)\1$").expect("parse");
        fn size(ast: &Ast) -> usize {
            match ast {
                Ast::Group { ast, .. }
                | Ast::NonCapturing(ast)
                | Ast::Lookahead { ast, .. }
                | Ast::Repeat { ast, .. } => 1 + size(ast),
                Ast::Alt(items) | Ast::Concat(items) => 1 + items.iter().map(size).sum::<usize>(),
                _ => 1,
            }
        }
        let origin = size(&ast);
        let reductions = ast_reductions(&ast);
        assert!(!reductions.is_empty());
        for candidate in &reductions {
            // Each candidate must render and re-parse (validity of the
            // shrink space), modulo Annex B re-interpretation of now
            // dangling backrefs.
            let source = candidate.to_source();
            regex_syntax_es6::parse(&source)
                .unwrap_or_else(|e| panic!("reduction {source:?} must parse: {e}"));
            assert!(size(candidate) <= origin + 1, "{source:?} grew");
        }
    }

    #[test]
    fn word_reductions_cover_every_position() {
        assert_eq!(word_reductions("abc"), vec!["bc", "ac", "ab"]);
        assert!(word_reductions("").is_empty());
    }
}

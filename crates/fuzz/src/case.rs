//! Fuzz cases: a regex, a query over its capture model, and the seed
//! that drives everything else — plus the line format the regression
//! corpus and shrunk reproducers are stored in.

use std::fmt;

use regex_syntax_es6::{ParseError, Regex};

/// The query a case poses over the capturing-language model of its
/// regex (the "random formula" side of the fuzzer).
///
/// Capture queries are restricted to *positive* membership: under a
/// negative constraint a failed `exec` defines no captures, so the
/// model leaves the capture variables unconstrained and a query over
/// them would be comparing junk (the CEGAR oracle ignores them too).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Decide the membership constraint alone.
    Top {
        /// `∈` (true) or `∉`.
        positive: bool,
    },
    /// `input = word`.
    PinInput {
        /// `∈` (true) or `∉`.
        positive: bool,
        /// The pinned word.
        word: String,
    },
    /// `input ≠ word`.
    NeInput {
        /// `∈` (true) or `∉`.
        positive: bool,
        /// The banned word.
        word: String,
    },
    /// `defined(Cᵢ) = value`, under positive membership.
    CaptureDefined {
        /// Capture index (0 = whole match).
        index: usize,
        /// Required definedness.
        value: bool,
    },
    /// `defined(Cᵢ) ∧ Cᵢ = word`, under positive membership.
    CaptureEq {
        /// Capture index (0 = whole match).
        index: usize,
        /// Required capture value.
        word: String,
    },
}

impl Query {
    /// The polarity of the membership constraint the query rides on.
    pub fn positive(&self) -> bool {
        match self {
            Query::Top { positive } | Query::PinInput { positive, .. } => *positive,
            Query::NeInput { positive, .. } => *positive,
            Query::CaptureDefined { .. } | Query::CaptureEq { .. } => true,
        }
    }

    /// A short stable tag for histograms and serialization.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Top { .. } => "top",
            Query::PinInput { .. } => "pin",
            Query::NeInput { .. } => "ne",
            Query::CaptureDefined { .. } => "capdef",
            Query::CaptureEq { .. } => "capeq",
        }
    }
}

/// One reproducible fuzz case.
///
/// `pattern`/`flags` are regex source text (so the case survives AST
/// changes), `query` the formula posed over the model, and `seed` the
/// RNG seed for everything sampled while checking (word samples etc.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// Pattern body source (no slashes).
    pub pattern: String,
    /// Flag string (`"giy"`, possibly empty).
    pub flags: String,
    /// The query posed over the capture model.
    pub query: Query,
    /// Seed for check-time sampling.
    pub seed: u64,
}

impl Case {
    /// Parses the case's regex.
    ///
    /// # Errors
    ///
    /// Returns the parse error when pattern or flags are invalid.
    pub fn regex(&self) -> Result<Regex, ParseError> {
        Regex::new(&self.pattern, self.flags.parse()?)
    }

    /// Serializes to the corpus line format:
    /// `v1 <TAB> pattern <TAB> flags <TAB> query <TAB> seed`, with
    /// tab/newline/backslash escaped in string fields.
    pub fn to_line(&self) -> String {
        let query = match &self.query {
            Query::Top { positive } => format!("top:{}", polarity(*positive)),
            Query::PinInput { positive, word } => {
                format!("pin:{}:{}", polarity(*positive), escape(word))
            }
            Query::NeInput { positive, word } => {
                format!("ne:{}:{}", polarity(*positive), escape(word))
            }
            Query::CaptureDefined { index, value } => {
                format!("capdef:{index}:{}", u8::from(*value))
            }
            Query::CaptureEq { index, word } => format!("capeq:{index}:{}", escape(word)),
        };
        format!(
            "v1\t{}\t{}\t{}\t{}",
            escape(&self.pattern),
            self.flags,
            query,
            self.seed
        )
    }

    /// Parses a corpus line (the inverse of [`Case::to_line`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn from_line(line: &str) -> Result<Case, String> {
        let fields: Vec<&str> = line.split('\t').collect();
        let [version, pattern, flags, query, seed] = fields.as_slice() else {
            return Err(format!(
                "expected 5 tab-separated fields, got {}",
                fields.len()
            ));
        };
        if *version != "v1" {
            return Err(format!("unknown corpus line version {version:?}"));
        }
        let seed: u64 = seed
            .parse()
            .map_err(|e| format!("bad seed {seed:?}: {e}"))?;
        let query = parse_query(query)?;
        Ok(Case {
            pattern: unescape(pattern)?,
            flags: (*flags).to_string(),
            query,
            seed,
        })
    }
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "/{}/{} {} seed={}",
            self.pattern,
            self.flags,
            self.query.kind(),
            self.seed
        )
    }
}

fn polarity(positive: bool) -> char {
    if positive {
        '+'
    } else {
        '-'
    }
}

fn parse_polarity(s: &str) -> Result<bool, String> {
    match s {
        "+" => Ok(true),
        "-" => Ok(false),
        other => Err(format!("bad polarity {other:?}")),
    }
}

fn parse_query(s: &str) -> Result<Query, String> {
    let (kind, rest) = s.split_once(':').unwrap_or((s, ""));
    match kind {
        "top" => Ok(Query::Top {
            positive: parse_polarity(rest)?,
        }),
        "pin" | "ne" => {
            let (pol, word) = rest
                .split_once(':')
                .ok_or_else(|| format!("bad {kind} query {rest:?}"))?;
            let positive = parse_polarity(pol)?;
            let word = unescape(word)?;
            Ok(if kind == "pin" {
                Query::PinInput { positive, word }
            } else {
                Query::NeInput { positive, word }
            })
        }
        "capdef" => {
            let (index, value) = rest
                .split_once(':')
                .ok_or_else(|| format!("bad capdef query {rest:?}"))?;
            Ok(Query::CaptureDefined {
                index: index.parse().map_err(|e| format!("bad index: {e}"))?,
                value: value == "1",
            })
        }
        "capeq" => {
            let (index, word) = rest
                .split_once(':')
                .ok_or_else(|| format!("bad capeq query {rest:?}"))?;
            Ok(Query::CaptureEq {
                index: index.parse().map_err(|e| format!("bad index: {e}"))?,
                word: unescape(word)?,
            })
        }
        other => Err(format!("unknown query kind {other:?}")),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_round_trip() {
        let cases = [
            Case {
                pattern: r"^a*(a)?$".to_string(),
                flags: "i".to_string(),
                query: Query::PinInput {
                    positive: true,
                    word: "a\ta\\é".to_string(),
                },
                seed: 42,
            },
            Case {
                pattern: r"(a)\1".to_string(),
                flags: String::new(),
                query: Query::CaptureEq {
                    index: 1,
                    word: "a".to_string(),
                },
                seed: 0,
            },
            Case {
                pattern: "x".to_string(),
                flags: "gy".to_string(),
                query: Query::Top { positive: false },
                seed: u64::MAX,
            },
            Case {
                pattern: "[é-λ]+".to_string(),
                flags: "u".to_string(),
                query: Query::CaptureDefined {
                    index: 0,
                    value: true,
                },
                seed: 7,
            },
        ];
        for case in cases {
            let line = case.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Case::from_line(&line).expect("round-trip"), case, "{line}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Case::from_line("").is_err());
        assert!(Case::from_line("v0\ta\t\ttop:+\t1").is_err());
        assert!(Case::from_line("v1\ta\t\tnope:+\t1").is_err());
        assert!(Case::from_line("v1\ta\t\ttop:+\tnotanumber").is_err());
    }
}

//! The differential fuzzing front-end.
//!
//! ```text
//! cargo run --release -p expose-fuzz --bin fuzz -- \
//!     [--seed-range A..B] [--budget quick|full] [--incremental] \
//!     [--shrink] [--stats] [--summary-md PATH] [--repro-out PATH] \
//!     [--max-failures N]
//! ```
//!
//! Generates and cross-checks one case per seed. Exit code 0 when every
//! layer agreed on every case, 1 on any cross-layer disagreement (after
//! printing — and with `--shrink`, minimizing — each failure; with
//! `--repro-out`, the shrunk reproducers are also written as
//! ready-to-paste Rust tests plus corpus lines). `--incremental`
//! additionally cross-checks the assumption-stack solver paths against
//! the from-scratch solves on every case. `--stats` prints the
//! per-feature histogram and Unknown rates; `--summary-md` writes the
//! same numbers as job-summary markdown.

use std::ops::Range;

use expose_fuzz::{
    generate_case, render_repro_test, run_case, shrink, FuzzBudget, FuzzStats, GenConfig,
};

fn parse_seed_range(s: &str) -> Range<u64> {
    let (a, b) = s
        .split_once("..")
        .unwrap_or_else(|| panic!("--seed-range wants A..B, got {s:?}"));
    let start: u64 = a.parse().unwrap_or_else(|e| panic!("bad range start: {e}"));
    let end: u64 = b.parse().unwrap_or_else(|e| panic!("bad range end: {e}"));
    assert!(start < end, "--seed-range must be non-empty");
    start..end
}

fn main() {
    let mut seeds = 0u64..2000;
    let mut budget_name = String::from("quick");
    let mut do_shrink = false;
    let mut incremental = false;
    let mut print_stats = false;
    let mut summary_md: Option<String> = None;
    let mut repro_out: Option<String> = None;
    let mut max_failures = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed-range" => seeds = parse_seed_range(&value("--seed-range")),
            "--budget" => {
                budget_name = value("--budget");
                assert!(
                    matches!(budget_name.as_str(), "quick" | "full"),
                    "unknown budget {budget_name:?} (expected quick|full)"
                );
            }
            "--shrink" => do_shrink = true,
            "--incremental" => incremental = true,
            "--stats" => print_stats = true,
            "--summary-md" => summary_md = Some(value("--summary-md")),
            "--repro-out" => repro_out = Some(value("--repro-out")),
            "--max-failures" => {
                max_failures = value("--max-failures").parse().expect("failure count")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let mut budget = if budget_name == "full" {
        FuzzBudget::full()
    } else {
        FuzzBudget::quick()
    };
    budget.incremental_check = incremental;
    let cfg = GenConfig::default();

    eprintln!(
        "fuzz: seeds {}..{}, {budget_name} budget{}",
        seeds.start,
        seeds.end,
        if incremental {
            ", incremental cross-check"
        } else {
            ""
        }
    );
    let mut stats = FuzzStats::default();
    let mut failures = Vec::new();
    for seed in seeds {
        let case = generate_case(seed, &cfg, &budget);
        let outcome = run_case(&case, &budget);
        stats.absorb(&outcome);
        if let Some(disagreement) = outcome.disagreement {
            eprintln!(
                "fuzz: DISAGREEMENT [{}] {case}: {}",
                disagreement.layer.name(),
                disagreement.detail
            );
            failures.push((case, disagreement));
            if failures.len() >= max_failures {
                eprintln!("fuzz: stopping after {max_failures} failures");
                break;
            }
        }
    }

    // Shrink each failure to a minimal reproducer.
    let mut repro_blocks = Vec::new();
    if do_shrink {
        for (case, disagreement) in &failures {
            let shrunk = shrink(case, disagreement.layer, &budget);
            eprintln!(
                "fuzz: shrunk {case} -> {} ({} steps) [{}] {}",
                shrunk.case,
                shrunk.steps,
                shrunk.disagreement.layer.name(),
                shrunk.disagreement.detail
            );
            eprintln!("fuzz: corpus line: {}", shrunk.case.to_line());
            let test = render_repro_test(&shrunk);
            eprintln!("{test}");
            repro_blocks.push((shrunk, test));
        }
    }
    if let Some(path) = &repro_out {
        if repro_blocks.is_empty() && failures.is_empty() {
            // No file at all on a clean run — CI uploads conditionally.
        } else {
            let mut content = String::from(
                "// Shrunk reproducers from a fuzz run. To promote one into the\n\
                 // regression corpus, append its corpus line to a file under\n\
                 // crates/fuzz/corpus/ (see README \"Fuzzing\").\n\n",
            );
            for (shrunk, test) in &repro_blocks {
                content.push_str(&format!("// corpus line: {}\n", shrunk.case.to_line()));
                content.push_str(test);
                content.push('\n');
            }
            if repro_blocks.is_empty() {
                for (case, disagreement) in &failures {
                    content.push_str(&format!(
                        "// unshrunk [{}] {}: {}\n",
                        disagreement.layer.name(),
                        case.to_line(),
                        disagreement.detail
                    ));
                }
            }
            std::fs::write(path, content).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("fuzz: wrote reproducers to {path}");
        }
    }

    if print_stats {
        print!("{}", stats.render_text());
    }
    if let Some(path) = &summary_md {
        let title = format!(
            "Fuzz ({budget_name} budget, {} cases, {} disagreement{})",
            stats.cases,
            stats.disagreements,
            if stats.disagreements == 1 { "" } else { "s" }
        );
        std::fs::write(path, stats.render_markdown(&title))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("fuzz: wrote summary markdown to {path}");
    }

    if !stats.covers_all_features() {
        eprintln!(
            "fuzz: FAIL — feature buckets never generated: {:?}",
            stats.uncovered_features()
        );
        std::process::exit(2);
    }
    if stats.disagreements > 0 {
        eprintln!(
            "fuzz: FAIL — {} cross-layer disagreement(s)",
            stats.disagreements
        );
        std::process::exit(1);
    }
    eprintln!(
        "fuzz: OK — {} cases, 0 disagreements, unknown rate {:.1}%",
        stats.cases,
        100.0 * stats.unknown_rate()
    );
}

//! Differential fuzzing of the whole reproduction stack.
//!
//! The paper's central claim is *soundness*: every `Sat` the CEGAR loop
//! returns matches under spec-faithful ES6 semantics, and `Unsat` is
//! never wrong. Hand-written suites only cover fixed corpora; this
//! crate manufactures scenarios forever. A seed deterministically
//! becomes a random ES6 regex (spanning the full Table 1/Table 5
//! feature space) plus a query over its capture model, and the case is
//! cross-checked through four independent layers:
//!
//! * the **concrete matcher** (`es6-matcher`, step-budgeted) as ground
//!   truth,
//! * the **automata** word-language DFA on the classical fragment,
//! * the **string solver** (`strsolve`) verdict and model on the
//!   Algorithm 2 formula,
//! * the full **CEGAR** loop, with every `Sat` model re-executed
//!   through the matcher and every `Unsat` cross-checked by bounded
//!   word enumeration over a small alphabet.
//!
//! `Unknown` is never a failure — it is tracked as a support-level
//! metric ([`FuzzStats::unknown_rate`]). A failing case is reduced by
//! the delta-debugging [`shrink()`](fn@shrink) reducer to a minimal
//! reproducer, rendered
//! as a ready-to-paste Rust test, and checked into the regression
//! corpus (`crates/fuzz/corpus/`), which a normal `cargo test`
//! replays.
//!
//! # Examples
//!
//! ```
//! use expose_fuzz::{run_range, FuzzBudget};
//! use regex_syntax_es6::arbitrary::GenConfig;
//!
//! let (stats, failures) = run_range(0..50, &GenConfig::default(), &FuzzBudget::quick());
//! assert_eq!(stats.cases, 50);
//! assert!(failures.is_empty(), "disagreements: {failures:?}");
//! ```

pub mod case;
pub mod check;
pub mod gen;
pub mod shrink;
pub mod stats;

use std::ops::Range;

pub use case::{Case, Query};
pub use check::{run_case, CaseOutcome, Disagreement, FuzzBudget, Layer};
pub use gen::generate_case;
pub use regex_syntax_es6::arbitrary::GenConfig;
pub use shrink::{render_repro_test, shrink, shrink_with, Shrunk};
pub use stats::FuzzStats;

/// A failing case together with its disagreement.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The failing case.
    pub case: Case,
    /// What failed.
    pub disagreement: Disagreement,
}

/// Generates and checks every seed in `seeds`, returning the aggregate
/// statistics and all failing cases (unshrunk — see [`shrink()`](fn@shrink)).
pub fn run_range(
    seeds: Range<u64>,
    cfg: &GenConfig,
    budget: &FuzzBudget,
) -> (FuzzStats, Vec<Failure>) {
    let mut stats = FuzzStats::default();
    let mut failures = Vec::new();
    for seed in seeds {
        let case = generate_case(seed, cfg, budget);
        let outcome = run_case(&case, budget);
        stats.absorb(&outcome);
        if let Some(disagreement) = outcome.disagreement {
            failures.push(Failure { case, disagreement });
        }
    }
    (stats, failures)
}

//! The cross-layer differential checks: one [`Case`] is pushed through
//! four independent implementations of ES6 regex semantics and every
//! pair that overlaps is compared.
//!
//! | layer | implementation | role |
//! |---|---|---|
//! | oracle | `es6-matcher` (budgeted) | ground truth |
//! | automata | wrapped-word-language DFA | classical fragment |
//! | solver | `strsolve` on the Algorithm 2 model | verdict + model |
//! | CEGAR | `expose-core` Algorithm 1 | precedence-correct captures |
//!
//! Disagreements are *one-sided sound*: every reported mismatch is a
//! genuine bug in some layer (the oracle step budget turns blowups into
//! skips, never into verdicts, and Unsat cross-checks only fire when a
//! concrete counterexample word was found).

use std::sync::Arc;

use automata::{Alphabet, Dfa};
use es6_matcher::{MatchResult, RegExp};
use expose_core::api::{build_match_model, CapturingConstraint};
use expose_core::cegar::{CegarCache, CegarResult};
use expose_core::classical::try_wrapped_word_language;
use expose_core::meta::{wrap_input, INPUT_END, INPUT_START};
use expose_core::model::BuildConfig;
use expose_core::{CegarSolver, SupportLevel};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use regex_syntax_es6::ast::Ast;
use regex_syntax_es6::features::FeatureSet;
use regex_syntax_es6::Regex;
use strsolve::{Formula, Outcome, SolveSession, Solver, SolverConfig, VarPool};

use crate::case::{Case, Query};

/// Resource budget for one case (and for the run as a whole).
#[derive(Debug, Clone)]
pub struct FuzzBudget {
    /// Backtracking-step budget per oracle call; exhaustion is a skip,
    /// never a verdict.
    pub step_limit: u64,
    /// Words sampled per case for the matcher-vs-DFA comparison.
    pub sample_words: usize,
    /// Maximum word length for bounded Unsat cross-check enumeration.
    pub enum_len: usize,
    /// Maximum alphabet size for that enumeration.
    pub enum_alphabet: usize,
    /// String-solver limits.
    pub solver: SolverConfig,
    /// CEGAR refinement limit.
    pub refinement_limit: usize,
    /// Maximum shrink iterations (delta-debugging rounds).
    pub shrink_steps: usize,
    /// Structural size cap on the overapproximation guide regex; above
    /// it the solver/CEGAR layers are skipped (determinization cost
    /// grows past interactive budgets).
    pub max_guide_size: usize,
    /// Subset-construction state cap for the matcher-vs-DFA layer;
    /// instances exceeding it skip that layer.
    pub max_dfa_states: usize,
    /// When set (`fuzz --incremental`), every case additionally
    /// cross-checks the assumption-stack session and the incremental
    /// CEGAR entry point against the from-scratch solves, including the
    /// verdict-cache replay path.
    pub incremental_check: bool,
}

impl FuzzBudget {
    /// The PR-CI budget: decides thousands of cases in seconds.
    pub fn quick() -> FuzzBudget {
        FuzzBudget {
            step_limit: 100_000,
            sample_words: 6,
            enum_len: 4,
            enum_alphabet: 3,
            solver: SolverConfig::fast(),
            refinement_limit: 5,
            shrink_steps: 300,
            max_guide_size: 160,
            max_dfa_states: 20_000,
            incremental_check: false,
        }
    }

    /// The nightly budget: deeper enumeration, full solver limits.
    pub fn full() -> FuzzBudget {
        FuzzBudget {
            step_limit: 1_000_000,
            sample_words: 12,
            enum_len: 5,
            enum_alphabet: 4,
            solver: SolverConfig::default(),
            refinement_limit: 10,
            shrink_steps: 600,
            max_guide_size: 400,
            max_dfa_states: 100_000,
            incremental_check: false,
        }
    }
}

/// Which cross-layer comparison failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// The pattern failed to parse, or printing and re-parsing changed
    /// the AST.
    Parser,
    /// Pike-VM fast path vs. the backtracking oracle: match presence,
    /// leftmost extent, or capture slots diverged (or the VM blew its
    /// linear step bound).
    EngineVsEngine,
    /// Concrete matcher vs. word-language DFA membership.
    MatcherVsDfa,
    /// A `Sat` model does not satisfy its own formula (model
    /// unsoundness in `strsolve`).
    SolverModel,
    /// A solver verdict contradicts the concrete oracle.
    SolverVsOracle,
    /// A CEGAR `Sat` disagrees with the oracle (word polarity, capture
    /// values, or the query itself).
    CegarModel,
    /// A CEGAR `Unsat` refuted by a concrete witness word.
    CegarUnsat,
    /// An incremental (assumption-stack / verdict-replay) solve
    /// diverged from its from-scratch counterpart (`--incremental`).
    Incremental,
}

impl Layer {
    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Parser => "parser",
            Layer::EngineVsEngine => "engine-vs-engine",
            Layer::MatcherVsDfa => "matcher-vs-dfa",
            Layer::SolverModel => "solver-model",
            Layer::SolverVsOracle => "solver-vs-oracle",
            Layer::CegarModel => "cegar-model",
            Layer::CegarUnsat => "cegar-unsat",
            Layer::Incremental => "incremental",
        }
    }
}

/// A cross-layer disagreement: the failed comparison plus enough detail
/// to understand the repro without re-running it.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// The comparison that failed.
    pub layer: Layer,
    /// Human-readable specifics (witness word, verdicts, ...).
    pub detail: String,
}

/// Everything observed while checking one case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Feature classification of the regex (Table 5 buckets), when it
    /// parsed.
    pub features: Option<FeatureSet>,
    /// Support level required by the regex, when it parsed.
    pub support: Option<SupportLevel>,
    /// Plain-solver verdict on the model ∧ query formula.
    pub solver_verdict: &'static str,
    /// CEGAR verdict on the same problem.
    pub cegar_verdict: &'static str,
    /// Oracle calls abandoned on the step budget.
    pub oracle_skips: u64,
    /// Words compared in the matcher-vs-DFA layer.
    pub dfa_words_checked: u64,
    /// Matcher-vs-DFA layers abandoned on the subset-construction state
    /// cap (the engine-vs-engine layer still covers those cases).
    pub dfa_skips: u64,
    /// Engine routing for the case's pattern: `Some(true)` = Pike-VM
    /// fast path, `Some(false)` = backtracking fallback, `None` =
    /// unparsed.
    pub engine_fast: Option<bool>,
    /// Words compared in the engine-vs-engine layer.
    pub engine_words_checked: u64,
    /// Incremental-vs-scratch comparisons performed (`--incremental`).
    pub incremental_checks: u64,
    /// The first disagreement found, if any.
    pub disagreement: Option<Disagreement>,
}

impl CaseOutcome {
    fn empty() -> CaseOutcome {
        CaseOutcome {
            features: None,
            support: None,
            solver_verdict: "skipped",
            cegar_verdict: "skipped",
            oracle_skips: 0,
            dfa_words_checked: 0,
            dfa_skips: 0,
            engine_fast: None,
            engine_words_checked: 0,
            incremental_checks: 0,
            disagreement: None,
        }
    }
}

/// The oracle regex: stateful flags cleared, exactly as the CEGAR loop
/// consults it (Algorithm 2 applies `lastIndex` slicing before
/// modeling).
fn oracle_regex(regex: &Regex) -> Regex {
    let mut r = regex.clone();
    r.flags.global = false;
    r.flags.sticky = false;
    r
}

/// A budgeted oracle call; `Err(())` means the step budget ran out.
#[allow(clippy::result_unit_err)]
pub fn oracle_exec(
    regex: &Regex,
    word: &str,
    budget: &FuzzBudget,
) -> Result<Option<MatchResult>, ()> {
    let mut oracle = RegExp::from_regex(oracle_regex(regex));
    oracle
        .exec_within(word, Some(budget.step_limit))
        .map_err(|_| ())
}

/// Characters for sampling and bounded enumeration: drawn from the
/// pattern itself (so words have a chance to match) plus the query
/// word, deduplicated, meta-characters excluded, capped.
fn case_alphabet(ast: &Ast, query: &Query, cap: usize) -> Vec<char> {
    // Query-word characters come FIRST: the bounded enumeration exists
    // to reconstruct a concrete witness for the posed query, so
    // truncation must never evict the pinned word's alphabet in favour
    // of pattern characters that happen to sort earlier.
    let mut chars = Vec::new();
    if let Query::PinInput { word, .. }
    | Query::NeInput { word, .. }
    | Query::CaptureEq { word, .. } = query
    {
        chars.extend(word.chars());
    }
    collect_chars(ast, &mut chars);
    chars.retain(|&c| c != INPUT_START && c != INPUT_END);
    // First-occurrence dedup preserves the priority order.
    let mut seen = Vec::new();
    for c in chars {
        if !seen.contains(&c) {
            seen.push(c);
        }
    }
    seen.truncate(cap.max(1));
    if seen.is_empty() {
        seen.push('a');
    }
    // Canonical enumeration order within the retained set.
    seen.sort_unstable();
    seen
}

fn collect_chars(ast: &Ast, out: &mut Vec<char>) {
    match ast {
        Ast::Literal(c) => out.push(*c),
        Ast::Class(set) => {
            for item in &set.items {
                match item {
                    regex_syntax_es6::class::ClassItem::Single(c) => out.push(*c),
                    regex_syntax_es6::class::ClassItem::Range(lo, hi) => {
                        out.push(*lo);
                        out.push(*hi);
                    }
                    regex_syntax_es6::class::ClassItem::Perl(p) => {
                        // One representative per predefined class.
                        out.push(match p.kind {
                            regex_syntax_es6::class::PerlKind::Digit => '7',
                            regex_syntax_es6::class::PerlKind::Word => 'w',
                            regex_syntax_es6::class::PerlKind::Space => ' ',
                        });
                    }
                }
            }
        }
        Ast::Group { ast, .. } | Ast::NonCapturing(ast) | Ast::Lookahead { ast, .. } => {
            collect_chars(ast, out)
        }
        Ast::Repeat { ast, .. } => collect_chars(ast, out),
        Ast::Alt(items) | Ast::Concat(items) => {
            for item in items {
                collect_chars(item, out);
            }
        }
        _ => {}
    }
}

/// All words over `alphabet` of length ≤ `max_len`, shortest first —
/// the bounded enumeration behind the Unsat cross-checks.
fn words_up_to(alphabet: &[char], max_len: usize) -> Vec<String> {
    let mut out = vec![String::new()];
    let mut frontier = vec![String::new()];
    for _ in 0..max_len {
        let mut next = Vec::with_capacity(frontier.len() * alphabet.len());
        for w in &frontier {
            for &c in alphabet {
                let mut extended = w.clone();
                extended.push(c);
                next.push(extended);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

/// The query's extra conjunct over the constraint's variables, or
/// `None` when the query references a capture the regex does not have
/// (shrinking can remove groups) — treated as `Top`.
fn query_formula(query: &Query, constraint: &CapturingConstraint) -> Option<Formula> {
    match query {
        Query::Top { .. } => Some(Formula::top()),
        Query::PinInput { word, .. } => Some(Formula::eq_lit(constraint.input, word.clone())),
        Query::NeInput { word, .. } => Some(Formula::ne_lit(constraint.input, word.clone())),
        Query::CaptureDefined { index, value } => {
            let cap = constraint.captures.get(*index)?;
            Some(Formula::bool_is(cap.defined, *value))
        }
        Query::CaptureEq { index, word } => {
            let cap = constraint.captures.get(*index)?;
            Some(Formula::and(vec![
                Formula::bool_is(cap.defined, true),
                Formula::eq_lit(cap.value, word.clone()),
            ]))
        }
    }
}

/// Does `word` concretely satisfy polarity + query, per the oracle?
/// `None` = the oracle ran out of budget (no verdict).
fn concretely_satisfies(
    regex: &Regex,
    query: &Query,
    word: &str,
    budget: &FuzzBudget,
) -> Option<bool> {
    let result = oracle_exec(regex, word, budget).ok()?;
    let positive = query.positive();
    if result.is_some() != positive {
        return Some(false);
    }
    Some(match query {
        Query::Top { .. } => true,
        Query::PinInput { word: pinned, .. } => word == pinned,
        Query::NeInput { word: banned, .. } => word != banned,
        Query::CaptureDefined { index, value } => {
            let result = result.expect("positive polarity checked above");
            result
                .captures
                .get(*index)
                .is_some_and(|c| c.is_some() == *value)
        }
        Query::CaptureEq { index, word: want } => {
            let result = result.expect("positive polarity checked above");
            result.captures.get(*index).cloned().flatten().as_deref() == Some(want.as_str())
        }
    })
}

/// Runs every cross-layer comparison for one case.
pub fn run_case(case: &Case, budget: &FuzzBudget) -> CaseOutcome {
    let mut outcome = CaseOutcome::empty();

    // Layer 0: the parser, plus the printer/parser round-trip.
    let regex = match case.regex() {
        Ok(regex) => regex,
        Err(e) => {
            outcome.disagreement = Some(Disagreement {
                layer: Layer::Parser,
                detail: format!("pattern does not parse: {e}"),
            });
            return outcome;
        }
    };
    let rendered = regex.ast.to_source();
    match regex_syntax_es6::parse(&rendered) {
        Ok(reparsed) if reparsed == regex.ast => {}
        Ok(_) => {
            outcome.disagreement = Some(Disagreement {
                layer: Layer::Parser,
                detail: format!("round-trip changed the AST (rendered {rendered:?})"),
            });
            return outcome;
        }
        Err(e) => {
            outcome.disagreement = Some(Disagreement {
                layer: Layer::Parser,
                detail: format!("rendered source {rendered:?} does not re-parse: {e}"),
            });
            return outcome;
        }
    }
    outcome.features = Some(FeatureSet::of(&regex));
    outcome.support = Some(SupportLevel::required_for(&regex));

    let mut rng = StdRng::seed_from_u64(case.seed ^ 0xf022_5eed_c0de_55aa);
    let alphabet = case_alphabet(&regex.ast, &case.query, budget.enum_alphabet);

    // Layer 1a: the two concrete match engines against each other.
    // Unlike the DFA layer this has no classical-fragment or state-cap
    // restriction — in particular the pathological `Σ*·body·Σ*` shapes
    // the DFA layer abandons are decided here by the Pike VM.
    if let Some(disagreement) = check_engine_vs_engine(
        &regex,
        &case.query,
        &alphabet,
        budget,
        &mut rng,
        &mut outcome,
    ) {
        outcome.disagreement = Some(disagreement);
        return outcome;
    }

    // Layer 1b: concrete matcher vs. word-language DFA on the classical
    // fragment.
    if let Some(disagreement) =
        check_matcher_vs_dfa(&regex, &alphabet, budget, &mut rng, &mut outcome)
    {
        outcome.disagreement = Some(disagreement);
        return outcome;
    }

    // Layers 2–3: the Algorithm 2 model through the plain solver and
    // through the CEGAR loop. Patterns whose overapproximation guide
    // explodes structurally (nested quantified backreferences expand
    // recursively) would spend seconds in determinization for a single
    // case — skip the solver layers there and say so in the stats
    // (`solver_verdict == "skipped"`), rather than silently stalling
    // the whole run.
    let guide = expose_core::classical::overapprox_word_regex(&regex.ast, regex.flags);
    if cregex_size(&guide) > budget.max_guide_size {
        return outcome;
    }
    let mut pool = VarPool::new();
    let constraint = build_match_model(
        &regex,
        case.query.positive(),
        &mut pool,
        &BuildConfig::default(),
    );
    // Out-of-range capture indices (shrinking can remove groups)
    // degrade to `Top` on both the formula and the concrete side.
    let (query, effective_query) = match query_formula(&case.query, &constraint) {
        Some(f) => (f, case.query.clone()),
        None => (
            Formula::top(),
            Query::Top {
                positive: case.query.positive(),
            },
        ),
    };

    // One solver for both layers: the clone handed to CEGAR shares the
    // Arc'd compiled-DFA cache, so the duplicated iteration-0 problem
    // never determinizes the same languages twice.
    let solver = Solver::new(budget.solver.clone());
    let problem = Formula::and(vec![constraint.formula.clone(), query.clone()]);
    let (solver_outcome, _) = solver.solve(&problem);
    outcome.solver_verdict = solver_outcome.label();
    if let Some(disagreement) = check_solver(
        &regex,
        &constraint,
        &effective_query,
        &problem,
        &solver_outcome,
        &alphabet,
        budget,
        &mut outcome,
    ) {
        outcome.disagreement = Some(disagreement);
        return outcome;
    }

    let cegar = CegarSolver::new(solver.clone(), budget.refinement_limit);
    let result = cegar.solve(&query, std::slice::from_ref(&constraint));
    outcome.cegar_verdict = result.outcome.label();
    if let Some(disagreement) = check_cegar(
        &regex,
        &constraint,
        &effective_query,
        &result.outcome,
        &alphabet,
        budget,
        &mut outcome,
    ) {
        outcome.disagreement = Some(disagreement);
    }

    // Layer 4 (`--incremental` only): the assumption-stack paths must
    // reproduce the two scratch solves above byte-for-byte.
    if budget.incremental_check && outcome.disagreement.is_none() {
        let incremental = check_incremental(
            &solver,
            &constraint,
            &query,
            &solver_outcome,
            &cegar,
            &result,
            &mut outcome,
        );
        outcome.disagreement = incremental;
    }
    outcome
}

/// The `--incremental` cross-check: re-solves this case's problem
/// through the assumption-stack session (the split `run_dse` uses for
/// a flip: shared prefix frame + per-flip assumption) and through
/// [`CegarSolver::solve_incremental`], and demands byte-identical
/// outcomes — including models and refinement trails — against the
/// from-scratch solves already computed. The CEGAR leg runs twice
/// through a fresh [`CegarCache`] so the second call exercises the
/// whole-run verdict-replay path.
fn check_incremental(
    solver: &Solver,
    constraint: &CapturingConstraint,
    query: &Formula,
    solver_outcome: &Outcome,
    cegar: &CegarSolver,
    scratch: &CegarResult,
    outcome: &mut CaseOutcome,
) -> Option<Disagreement> {
    // Plain solver: prefix frame = the constraint model, assumption =
    // the query conjunct (scratch solved `model ∧ query`).
    let mut session = SolveSession::new(solver.clone());
    session.push(vec![constraint.formula.clone()]);
    let (got, stats) = session.solve_at(1, std::slice::from_ref(query));
    outcome.incremental_checks += 1;
    if &got != solver_outcome {
        return Some(Disagreement {
            layer: Layer::Incremental,
            detail: format!(
                "session solve said {} but scratch said {}",
                got.label(),
                solver_outcome.label()
            ),
        });
    }
    if stats.prefix_reuse_hits != 1 {
        return Some(Disagreement {
            layer: Layer::Incremental,
            detail: format!(
                "session solve reused {} prefix frames, expected 1",
                stats.prefix_reuse_hits
            ),
        });
    }

    // CEGAR: the query is the shared frame, the constraint model the
    // assumption (scratch conjoined them in that order). Two passes
    // over one fresh verdict cache: the first stores the finished run,
    // the second must replay it wholesale.
    let mut session = SolveSession::new(solver.clone());
    session.push(vec![query.clone()]);
    let verdicts = CegarCache::new(8);
    for (pass, expect_replay) in [("store", false), ("replay", true)] {
        let got = cegar.solve_incremental(
            &session,
            1,
            &[],
            std::slice::from_ref(constraint),
            Some(&verdicts),
        );
        outcome.incremental_checks += 1;
        if got.outcome != scratch.outcome
            || got.stats.refinements != scratch.stats.refinements
            || got.stats.limit_hit != scratch.stats.limit_hit
        {
            return Some(Disagreement {
                layer: Layer::Incremental,
                detail: format!(
                    "incremental CEGAR ({pass} pass) said {} after {} refinement(s) \
                     (limit_hit {}) but scratch said {} after {} (limit_hit {})",
                    got.outcome.label(),
                    got.stats.refinements,
                    got.stats.limit_hit,
                    scratch.outcome.label(),
                    scratch.stats.refinements,
                    scratch.stats.limit_hit
                ),
            });
        }
        if got.stats.replayed != expect_replay {
            return Some(Disagreement {
                layer: Layer::Incremental,
                detail: format!(
                    "incremental CEGAR {pass} pass: replayed={}, expected {expect_replay}",
                    got.stats.replayed
                ),
            });
        }
    }
    None
}

/// Structural node count of a classical regex (the determinization-cost
/// proxy behind [`FuzzBudget::max_guide_size`]).
fn cregex_size(re: &automata::CRegex) -> usize {
    use automata::CRegex as C;
    match re {
        C::EmptySet | C::Epsilon | C::Set(_) => 1,
        C::Concat(items) | C::Alt(items) | C::And(items) => {
            1 + items.iter().map(cregex_size).sum::<usize>()
        }
        C::Star(inner) | C::Not(inner) => 1 + cregex_size(inner),
    }
}

/// One random accepted word: walk live transitions uniformly, steering
/// home along the distance-to-accept gradient once `max_len` nears.
/// Deterministic in the RNG.
fn sample_accepted_word(dfa: &Dfa, rng: &mut StdRng, max_len: usize) -> Option<String> {
    let mut state = dfa.start_state();
    dfa.distance_to_accept(state)?;
    let mut word = Vec::new();
    loop {
        let remaining = dfa.distance_to_accept(state)? as usize;
        if remaining == 0 && (word.len() >= max_len || rng.random_bool(0.35)) {
            return Some(dfa.alphabet().realize(&word));
        }
        let classes = 0..dfa.alphabet().class_count() as automata::ClassId;
        if word.len() + remaining >= max_len {
            // Out of slack: follow the gradient straight to acceptance.
            if remaining == 0 {
                return Some(dfa.alphabet().realize(&word));
            }
            let class = classes.clone().find(|&c| {
                dfa.distance_to_accept(dfa.step(state, c)) == Some(remaining as u32 - 1)
            })?;
            word.push(class);
            state = dfa.step(state, class);
            continue;
        }
        // Free exploration among live successors.
        let live: Vec<automata::ClassId> = classes
            .filter(|&c| dfa.distance_to_accept(dfa.step(state, c)).is_some())
            .collect();
        let class = *live.choose(rng)?;
        word.push(class);
        state = dfa.step(state, class);
    }
}

/// The engine-vs-engine differential layer: for patterns the
/// [`es6_matcher::select`] analysis routes to the Pike VM, runs the
/// unanchored search through both engines on sampled words and demands
/// byte-identical results — match presence, leftmost extent, and every
/// capture slot.
///
/// The backtracker runs under the usual step budget (exhaustion is a
/// skip); the VM runs under a bound comfortably above its `O(n·m)`
/// worst case, so a VM exhaustion is itself a finding (a superlinear
/// fast path), not a skip.
fn check_engine_vs_engine(
    regex: &Regex,
    query: &Query,
    alphabet: &[char],
    budget: &FuzzBudget,
    rng: &mut StdRng,
    outcome: &mut CaseOutcome,
) -> Option<Disagreement> {
    let oracle = oracle_regex(regex);
    let prog = match es6_matcher::compile(&oracle.ast, oracle.flags) {
        Ok(prog) => prog,
        Err(_) => {
            outcome.engine_fast = Some(false);
            return None;
        }
    };
    outcome.engine_fast = Some(true);
    let vm = es6_matcher::PikeVm::new(&prog);
    let bt = es6_matcher::Engine::new(&oracle.ast, oracle.flags);

    let mut words: Vec<String> = Vec::new();
    if let Query::PinInput { word, .. }
    | Query::NeInput { word, .. }
    | Query::CaptureEq { word, .. } = query
    {
        words.push(word.clone());
    }
    for _ in 0..budget.sample_words * 2 {
        let len = rng.random_range(0usize..=budget.enum_len + 2);
        words.push(
            (0..len)
                .map(|_| *alphabet.choose(rng).expect("non-empty alphabet"))
                .collect(),
        );
    }
    words.sort();
    words.dedup();

    for word in &words {
        let chars: Vec<char> = word.chars().collect();
        // Linear bound witness: instruction visits per position are at
        // most the program length, each charged once, plus the memoized
        // lookahead sub-runs (same bound per segment). The factor-8
        // slack keeps the bound robust without admitting blowups.
        let vm_bound = (chars.len() as u64 + 2)
            * (prog.code.len() as u64 + 1)
            * (prog.looks.len() as u64 + 1)
            * 8;
        let expected = match bt.search_within(&chars, 0, budget.step_limit) {
            Ok(m) => m,
            Err(_) => {
                outcome.oracle_skips += 1;
                continue;
            }
        };
        let got = match vm.search_within(&chars, 0, vm_bound) {
            Ok(m) => m,
            Err(_) => {
                return Some(Disagreement {
                    layer: Layer::EngineVsEngine,
                    detail: format!(
                        "Pike VM exceeded its linear step bound ({vm_bound}) on {word:?}"
                    ),
                });
            }
        };
        outcome.engine_words_checked += 1;
        if got != expected {
            return Some(Disagreement {
                layer: Layer::EngineVsEngine,
                detail: format!("word {word:?}: backtracker {expected:?} vs Pike VM {got:?}"),
            });
        }
    }
    None
}

fn check_matcher_vs_dfa(
    regex: &Regex,
    alphabet: &[char],
    budget: &FuzzBudget,
    rng: &mut StdRng,
    outcome: &mut CaseOutcome,
) -> Option<Disagreement> {
    let lang = try_wrapped_word_language(&regex.ast, regex.flags)?;
    let mut sets = Vec::new();
    lang.collect_sets(&mut sets);
    for &c in alphabet {
        sets.push(automata::CharSet::single(c));
    }
    let dfa_alphabet = Arc::new(Alphabet::from_sets(&sets));
    // Bounded minimizing pipeline: subset construction of unanchored
    // `Σ*·body·Σ*` languages can visit millions of intermediate states
    // before collapsing — abandon those instances (skip the layer)
    // instead of stalling the run on a single seed.
    let dfa = match Dfa::try_from_cregex_with(
        &lang,
        &dfa_alphabet,
        &automata::AutomataConfig::default(),
        &mut automata::BuildMetrics::default(),
        budget.max_dfa_states,
    ) {
        Some(dfa) => dfa,
        None => {
            // Counted in `--stats`; the engine-vs-engine layer already
            // cross-checked this case's pattern where the VM can decide
            // it, so the state cap no longer leaves the case unchecked.
            outcome.dfa_skips += 1;
            return None;
        }
    };

    // Positive samples: the shortest accepted wrapped word plus
    // distance-guided random walks. (Exhaustive `Dfa::words` is
    // exponential in the class count on unanchored languages — a
    // handful of guided samples exercises the same comparison.)
    let mut wrapped_samples: Vec<String> = dfa.shortest_word().into_iter().collect();
    let walk_cap = wrapped_samples
        .first()
        .map_or(budget.enum_len + 4, |w| w.chars().count() + budget.enum_len);
    for _ in 0..budget.sample_words {
        if let Some(w) = sample_accepted_word(&dfa, rng, walk_cap) {
            wrapped_samples.push(w);
        }
    }
    let mut words: Vec<String> = Vec::new();
    for wrapped in wrapped_samples {
        let chars: Vec<char> = wrapped.chars().collect();
        if chars.first() == Some(&INPUT_START) && chars.last() == Some(&INPUT_END) {
            words.push(chars[1..chars.len() - 1].iter().collect());
        }
    }
    // Random samples over the case alphabet (mostly negative).
    for _ in 0..budget.sample_words {
        let len = rng.random_range(0usize..=budget.enum_len + 1);
        let word: String = (0..len)
            .map(|_| *alphabet.choose(rng).expect("non-empty alphabet"))
            .collect();
        words.push(word);
    }
    words.sort();
    words.dedup();

    for word in &words {
        // Words containing meta-characters live outside the modeled
        // universe.
        if word.chars().any(|c| c == INPUT_START || c == INPUT_END) {
            continue;
        }
        let dfa_says = dfa.contains(&wrap_input(word));
        match oracle_exec(regex, word, budget) {
            Err(()) => outcome.oracle_skips += 1,
            Ok(result) => {
                outcome.dfa_words_checked += 1;
                if result.is_some() != dfa_says {
                    return Some(Disagreement {
                        layer: Layer::MatcherVsDfa,
                        detail: format!(
                            "word {word:?}: matcher={} dfa={dfa_says}",
                            result.is_some()
                        ),
                    });
                }
            }
        }
    }
    None
}

/// Is an `Unsat` from this constraint checkable by enumeration? The
/// positive model always overapproximates the capturing language (so
/// its Unsat implies real Unsat and a concrete witness refutes it);
/// negative models only when exact (the §4.4 general shape is openly
/// inexact — the CEGAR layer is responsible for downgrading those).
fn unsat_is_checkable(constraint: &CapturingConstraint) -> bool {
    constraint.positive || constraint.exact
}

#[allow(clippy::too_many_arguments)]
fn check_solver(
    regex: &Regex,
    constraint: &CapturingConstraint,
    query: &Query,
    problem: &Formula,
    solver_outcome: &Outcome,
    alphabet: &[char],
    budget: &FuzzBudget,
    outcome: &mut CaseOutcome,
) -> Option<Disagreement> {
    match solver_outcome {
        Outcome::Sat(model) => {
            // Model soundness: the witness must satisfy the formula
            // under the independent evaluator.
            if !model.satisfies(problem) {
                return Some(Disagreement {
                    layer: Layer::SolverModel,
                    detail: "Sat model fails the independent evaluator".to_string(),
                });
            }
            // On *exact* constraints the model's input word must agree
            // with the oracle on polarity (captures may still be
            // spurious — that is CEGAR's job, not the solver's).
            if constraint.exact {
                let word = model.get_str(constraint.input).unwrap_or_default();
                match oracle_exec(regex, word, budget) {
                    Err(()) => outcome.oracle_skips += 1,
                    Ok(result) => {
                        if result.is_some() != constraint.positive {
                            return Some(Disagreement {
                                layer: Layer::SolverVsOracle,
                                detail: format!(
                                    "exact model Sat witness {word:?} has oracle polarity {} \
                                     but constraint wants {}",
                                    result.is_some(),
                                    constraint.positive
                                ),
                            });
                        }
                    }
                }
            }
            None
        }
        Outcome::Unsat if unsat_is_checkable(constraint) => {
            for word in words_up_to(alphabet, budget.enum_len) {
                match concretely_satisfies(regex, query, &word, budget) {
                    None => outcome.oracle_skips += 1,
                    Some(true) => {
                        return Some(Disagreement {
                            layer: Layer::SolverVsOracle,
                            detail: format!("solver said Unsat but {word:?} concretely satisfies"),
                        });
                    }
                    Some(false) => {}
                }
            }
            None
        }
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn check_cegar(
    regex: &Regex,
    constraint: &CapturingConstraint,
    query: &Query,
    cegar_outcome: &Outcome,
    alphabet: &[char],
    budget: &FuzzBudget,
    outcome: &mut CaseOutcome,
) -> Option<Disagreement> {
    match cegar_outcome {
        Outcome::Sat(model) => {
            let word = model.get_str(constraint.input).unwrap_or_default();
            let result = match oracle_exec(regex, word, budget) {
                Err(()) => {
                    outcome.oracle_skips += 1;
                    return None;
                }
                Ok(result) => result,
            };
            if result.is_some() != constraint.positive {
                return Some(Disagreement {
                    layer: Layer::CegarModel,
                    detail: format!(
                        "CEGAR Sat witness {word:?} has oracle polarity {} but constraint wants {}",
                        result.is_some(),
                        constraint.positive
                    ),
                });
            }
            // Positive constraints: CEGAR guarantees engine-faithful
            // captures — compare every slot against the oracle.
            if let Some(result) = &result {
                for (i, cap) in constraint.captures.iter().enumerate() {
                    let concrete = result.captures.get(i).cloned().flatten();
                    let modeled = if model.get_bool(cap.defined) {
                        Some(model.get_str(cap.value).unwrap_or_default().to_string())
                    } else {
                        None
                    };
                    if concrete != modeled {
                        return Some(Disagreement {
                            layer: Layer::CegarModel,
                            detail: format!(
                                "capture C{i} on {word:?}: oracle {concrete:?} vs model {modeled:?}"
                            ),
                        });
                    }
                }
            }
            // The query itself must hold concretely.
            match concretely_satisfies(regex, query, word, budget) {
                None => outcome.oracle_skips += 1,
                Some(true) => {}
                Some(false) => {
                    return Some(Disagreement {
                        layer: Layer::CegarModel,
                        detail: format!("CEGAR Sat witness {word:?} fails the query concretely"),
                    });
                }
            }
            None
        }
        // CEGAR's Unsat claims soundness unconditionally (it downgrades
        // the openly inexact cases to Unknown itself) — every concrete
        // witness is a refutation.
        Outcome::Unsat => {
            for word in words_up_to(alphabet, budget.enum_len) {
                match concretely_satisfies(regex, query, &word, budget) {
                    None => outcome.oracle_skips += 1,
                    Some(true) => {
                        return Some(Disagreement {
                            layer: Layer::CegarUnsat,
                            detail: format!("CEGAR said Unsat but {word:?} concretely satisfies"),
                        });
                    }
                    Some(false) => {}
                }
            }
            None
        }
        Outcome::Unknown => None,
    }
}

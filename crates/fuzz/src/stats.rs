//! Run statistics: per-feature generation histogram, verdict counts,
//! and the Unknown rate bucketed by support level — the numbers that
//! make feature-space coverage *measurable* in CI rather than asserted.

use std::fmt::Write as _;

use expose_core::SupportLevel;
use regex_syntax_es6::features::FeatureSet;

use crate::check::CaseOutcome;

/// Aggregated statistics over a fuzz run. Deterministic: equal case
/// streams produce equal stats (fixed-order arrays, no map iteration).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// Cases run.
    pub cases: u64,
    /// Cases whose regex parsed (feature rows only count these).
    pub parsed: u64,
    /// Per-feature counts, in [`FeatureSet::rows`] order (19 buckets).
    pub feature_counts: [u64; 19],
    /// Solver verdict counts: `[sat, unsat, unknown]`.
    pub solver_verdicts: [u64; 3],
    /// CEGAR verdict counts: `[sat, unsat, unknown]`.
    pub cegar_verdicts: [u64; 3],
    /// CEGAR Unknowns bucketed by required support level:
    /// `[Modeling, Captures]`.
    pub unknown_by_support: [u64; 2],
    /// Cases per support level: `[Modeling, Captures]`.
    pub cases_by_support: [u64; 2],
    /// Oracle calls abandoned on the step budget.
    pub oracle_skips: u64,
    /// Words compared in the matcher-vs-DFA layer.
    pub dfa_words_checked: u64,
    /// Matcher-vs-DFA layers abandoned on the subset-construction state
    /// cap (those cases remain covered by the engine-vs-engine layer).
    pub dfa_skips: u64,
    /// Cases routed to the Pike-VM fast path.
    pub engine_fast_cases: u64,
    /// Cases routed to the backtracking fallback.
    pub engine_fallback_cases: u64,
    /// Words compared in the engine-vs-engine layer.
    pub engine_words_checked: u64,
    /// Per-feature counts among fast-path cases, in [`FeatureSet::rows`]
    /// order — shows which Table 5 buckets the Pike VM actually covers.
    pub fast_path_feature_counts: [u64; 19],
    /// Incremental-vs-scratch comparisons performed (`--incremental`).
    pub incremental_checks: u64,
    /// Cross-layer disagreements.
    pub disagreements: u64,
}

fn verdict_slot(label: &str) -> Option<usize> {
    match label {
        "sat" => Some(0),
        "unsat" => Some(1),
        "unknown" => Some(2),
        _ => None,
    }
}

fn support_slot(level: SupportLevel) -> usize {
    match level {
        SupportLevel::Captures | SupportLevel::Refinement => 1,
        _ => 0,
    }
}

impl FuzzStats {
    /// Folds one case outcome in.
    pub fn absorb(&mut self, outcome: &CaseOutcome) {
        self.cases += 1;
        if let Some(features) = &outcome.features {
            self.parsed += 1;
            for (i, (_, present)) in features.rows().iter().enumerate() {
                if *present {
                    self.feature_counts[i] += 1;
                    if outcome.engine_fast == Some(true) {
                        self.fast_path_feature_counts[i] += 1;
                    }
                }
            }
        }
        match outcome.engine_fast {
            Some(true) => self.engine_fast_cases += 1,
            Some(false) => self.engine_fallback_cases += 1,
            None => {}
        }
        if let Some(slot) = verdict_slot(outcome.solver_verdict) {
            self.solver_verdicts[slot] += 1;
        }
        if let Some(slot) = verdict_slot(outcome.cegar_verdict) {
            self.cegar_verdicts[slot] += 1;
        }
        if let Some(level) = outcome.support {
            let slot = support_slot(level);
            self.cases_by_support[slot] += 1;
            if outcome.cegar_verdict == "unknown" {
                self.unknown_by_support[slot] += 1;
            }
        }
        self.oracle_skips += outcome.oracle_skips;
        self.dfa_words_checked += outcome.dfa_words_checked;
        self.dfa_skips += outcome.dfa_skips;
        self.engine_words_checked += outcome.engine_words_checked;
        self.incremental_checks += outcome.incremental_checks;
        if outcome.disagreement.is_some() {
            self.disagreements += 1;
        }
    }

    /// Overall CEGAR Unknown rate over parsed cases, in `[0, 1]`.
    pub fn unknown_rate(&self) -> f64 {
        let unknowns: u64 = self.unknown_by_support.iter().sum();
        unknowns as f64 / (self.parsed.max(1)) as f64
    }

    /// True when every Table 5 feature bucket was generated at least
    /// once — the coverage property the CI smoke job gates on.
    pub fn covers_all_features(&self) -> bool {
        self.feature_counts.iter().all(|&n| n > 0)
    }

    /// Names of feature buckets with zero hits.
    pub fn uncovered_features(&self) -> Vec<&'static str> {
        FeatureSet::default()
            .rows()
            .iter()
            .zip(self.feature_counts)
            .filter(|(_, n)| *n == 0)
            .map(|((name, _), _)| *name)
            .collect()
    }

    /// The plain-text stats table (`--stats`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "cases: {} ({} parsed)", self.cases, self.parsed);
        let _ = writeln!(
            out,
            "solver verdicts: sat {} / unsat {} / unknown {}",
            self.solver_verdicts[0], self.solver_verdicts[1], self.solver_verdicts[2]
        );
        let _ = writeln!(
            out,
            "cegar verdicts:  sat {} / unsat {} / unknown {}",
            self.cegar_verdicts[0], self.cegar_verdicts[1], self.cegar_verdicts[2]
        );
        let _ = writeln!(
            out,
            "unknown rate: {:.1}% (modeling {}/{}, captures {}/{})",
            100.0 * self.unknown_rate(),
            self.unknown_by_support[0],
            self.cases_by_support[0],
            self.unknown_by_support[1],
            self.cases_by_support[1]
        );
        let _ = writeln!(
            out,
            "oracle skips: {}, dfa words checked: {} ({} state-cap skips)",
            self.oracle_skips, self.dfa_words_checked, self.dfa_skips
        );
        let _ = writeln!(
            out,
            "engine routing: {} fast path / {} fallback, {} words cross-checked",
            self.engine_fast_cases, self.engine_fallback_cases, self.engine_words_checked
        );
        if self.incremental_checks > 0 {
            let _ = writeln!(out, "incremental checks: {}", self.incremental_checks);
        }
        let _ = writeln!(out, "feature histogram (generated / on fast path):");
        for (((name, _), count), fast) in FeatureSet::default()
            .rows()
            .iter()
            .zip(self.feature_counts)
            .zip(self.fast_path_feature_counts)
        {
            let _ = writeln!(out, "  {name:<20} {count} / {fast}");
        }
        let _ = writeln!(out, "disagreements: {}", self.disagreements);
        out
    }

    /// The job-summary markdown (`--summary-md`).
    pub fn render_markdown(&self, title: &str) -> String {
        let mut md = String::new();
        let _ = writeln!(md, "### {title}");
        let _ = writeln!(
            md,
            "- **cases**: {} ({} parsed), **disagreements**: {}",
            self.cases, self.parsed, self.disagreements
        );
        let _ = writeln!(
            md,
            "- **verdicts** (solver → CEGAR): sat {} → {}, unsat {} → {}, unknown {} → {}",
            self.solver_verdicts[0],
            self.cegar_verdicts[0],
            self.solver_verdicts[1],
            self.cegar_verdicts[1],
            self.solver_verdicts[2],
            self.cegar_verdicts[2],
        );
        let _ = writeln!(
            md,
            "- **Unknown rate**: {:.1}% (modeling {}/{}, captures {}/{})",
            100.0 * self.unknown_rate(),
            self.unknown_by_support[0],
            self.cases_by_support[0],
            self.unknown_by_support[1],
            self.cases_by_support[1]
        );
        let _ = writeln!(
            md,
            "- **oracle skips**: {}, **dfa words checked**: {} ({} state-cap skips)",
            self.oracle_skips, self.dfa_words_checked, self.dfa_skips
        );
        let _ = writeln!(
            md,
            "- **engine routing**: {} fast path / {} fallback, {} words cross-checked",
            self.engine_fast_cases, self.engine_fallback_cases, self.engine_words_checked
        );
        if self.incremental_checks > 0 {
            let _ = writeln!(md, "- **incremental checks**: {}", self.incremental_checks);
        }
        let _ = writeln!(md);
        let _ = writeln!(md, "| Table 5 feature | generated | on fast path |");
        let _ = writeln!(md, "|---|---|---|");
        for (((name, _), count), fast) in FeatureSet::default()
            .rows()
            .iter()
            .zip(self.feature_counts)
            .zip(self.fast_path_feature_counts)
        {
            let _ = writeln!(md, "| {name} | {count} | {fast} |");
        }
        md
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::CaseOutcome;

    fn outcome_with(features: FeatureSet, cegar: &'static str) -> CaseOutcome {
        CaseOutcome {
            features: Some(features),
            support: Some(SupportLevel::Modeling),
            solver_verdict: "sat",
            cegar_verdict: cegar,
            oracle_skips: 1,
            dfa_words_checked: 2,
            dfa_skips: 0,
            engine_fast: Some(true),
            engine_words_checked: 3,
            incremental_checks: 0,
            disagreement: None,
        }
    }

    #[test]
    fn absorb_counts_features_and_verdicts() {
        let mut stats = FuzzStats::default();
        let features = FeatureSet {
            kleene_star: true,
            ..FeatureSet::default()
        };
        stats.absorb(&outcome_with(features, "unknown"));
        stats.absorb(&outcome_with(FeatureSet::default(), "sat"));
        assert_eq!(stats.cases, 2);
        assert_eq!(stats.feature_counts[4], 1); // Kleene* row
        assert_eq!(stats.solver_verdicts[0], 2);
        assert_eq!(stats.cegar_verdicts[2], 1);
        assert_eq!(stats.unknown_by_support[0], 1);
        assert!((stats.unknown_rate() - 0.5).abs() < 1e-9);
        assert!(!stats.covers_all_features());
        assert_eq!(stats.uncovered_features().len(), 18);
        assert_eq!(stats.oracle_skips, 2);
        assert_eq!(stats.dfa_words_checked, 4);
    }

    #[test]
    fn renders_mention_every_feature() {
        let stats = FuzzStats::default();
        let text = stats.render_text();
        let md = stats.render_markdown("Fuzz");
        for (name, _) in FeatureSet::default().rows() {
            assert!(text.contains(name), "text missing {name}");
            assert!(md.contains(name), "markdown missing {name}");
        }
    }
}

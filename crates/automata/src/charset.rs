//! Sets of Unicode scalar values as sorted disjoint ranges.

use regex_syntax_es6::class::{complement_ranges, normalize_ranges, ClassSet, MAX_CHAR};

/// A set of characters, stored as sorted, disjoint, inclusive ranges of
/// scalar values.
///
/// `CharSet` is the transition label alphabet of the NFA layer and the
/// building block of [minterm alphabets](crate::alphabet::Alphabet).
///
/// # Examples
///
/// ```
/// use automata::CharSet;
///
/// let digits = CharSet::range('0', '9');
/// let letters = CharSet::range('a', 'z');
/// let both = digits.union(&letters);
/// assert!(both.contains('5') && both.contains('q'));
/// assert!(!both.intersect(&CharSet::single(' ')).contains(' '));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CharSet {
    ranges: Vec<(u32, u32)>,
}

impl CharSet {
    /// The empty set.
    pub fn empty() -> CharSet {
        CharSet { ranges: Vec::new() }
    }

    /// Every Unicode scalar value (excluding surrogates).
    pub fn any() -> CharSet {
        CharSet {
            ranges: complement_ranges(&[]),
        }
    }

    /// A single character.
    pub fn single(c: char) -> CharSet {
        CharSet {
            ranges: vec![(c as u32, c as u32)],
        }
    }

    /// An inclusive range.
    pub fn range(lo: char, hi: char) -> CharSet {
        CharSet {
            ranges: normalize_ranges(vec![(lo as u32, hi as u32)]),
        }
    }

    /// Builds a set from raw inclusive ranges.
    pub fn from_ranges(ranges: Vec<(u32, u32)>) -> CharSet {
        CharSet {
            ranges: normalize_ranges(ranges),
        }
    }

    /// Converts a parsed character class (resolving negation, predefined
    /// escapes and ranges).
    pub fn from_class(class: &ClassSet) -> CharSet {
        CharSet {
            ranges: class.ranges(),
        }
    }

    /// The underlying ranges.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Membership test.
    pub fn contains(&self, c: char) -> bool {
        let v = c as u32;
        self.ranges
            .binary_search_by(|&(lo, hi)| {
                if v < lo {
                    std::cmp::Ordering::Greater
                } else if v > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of scalar values in the set.
    pub fn len(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| u64::from(hi - lo) + 1)
            .sum()
    }

    /// Set union.
    pub fn union(&self, other: &CharSet) -> CharSet {
        let mut ranges = self.ranges.clone();
        ranges.extend_from_slice(&other.ranges);
        CharSet {
            ranges: normalize_ranges(ranges),
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &CharSet) -> CharSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (alo, ahi) = self.ranges[i];
            let (blo, bhi) = other.ranges[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        CharSet { ranges: out }
    }

    /// Complement over the scalar-value space.
    pub fn complement(&self) -> CharSet {
        CharSet {
            ranges: complement_ranges(&self.ranges),
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &CharSet) -> CharSet {
        self.intersect(&other.complement())
    }

    /// Picks a *readable* representative character, preferring lowercase
    /// letters, then digits, then uppercase, then printable ASCII, then
    /// the lowest member. Used to turn DFA words into human-friendly
    /// witness strings.
    pub fn pick(&self) -> Option<char> {
        const PREFERRED: &[(u32, u32)] = &[
            ('a' as u32, 'z' as u32),
            ('0' as u32, '9' as u32),
            ('A' as u32, 'Z' as u32),
            (' ' as u32, '~' as u32),
        ];
        for &(plo, phi) in PREFERRED {
            for &(lo, hi) in &self.ranges {
                let start = lo.max(plo);
                let end = hi.min(phi);
                if start <= end {
                    return char::from_u32(start);
                }
            }
        }
        self.ranges.first().and_then(|&(lo, _)| char::from_u32(lo))
    }

    /// Iterates all members (use only on small sets).
    pub fn iter(&self) -> impl Iterator<Item = char> + '_ {
        self.ranges
            .iter()
            .flat_map(|&(lo, hi)| (lo..=hi).filter_map(char::from_u32))
    }

    /// The full scalar range, for assertions in tests.
    pub fn universe_len() -> u64 {
        u64::from(MAX_CHAR) + 1 - 0x800 // minus surrogate block
    }
}

impl FromIterator<char> for CharSet {
    fn from_iter<T: IntoIterator<Item = char>>(iter: T) -> CharSet {
        CharSet::from_ranges(iter.into_iter().map(|c| (c as u32, c as u32)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_intersect() {
        let a = CharSet::range('a', 'm');
        let b = CharSet::range('g', 'z');
        assert_eq!(a.union(&b), CharSet::range('a', 'z'));
        assert_eq!(a.intersect(&b), CharSet::range('g', 'm'));
    }

    #[test]
    fn complement_round_trip() {
        let a = CharSet::range('0', '9');
        assert_eq!(a.complement().complement(), a);
    }

    #[test]
    fn complement_excludes_members() {
        let a = CharSet::single('x');
        let c = a.complement();
        assert!(!c.contains('x'));
        assert!(c.contains('y'));
    }

    #[test]
    fn difference() {
        let a = CharSet::range('a', 'f');
        let b = CharSet::range('c', 'd');
        let d = a.difference(&b);
        assert!(d.contains('a') && d.contains('f'));
        assert!(!d.contains('c') && !d.contains('d'));
    }

    #[test]
    fn any_covers_universe() {
        assert_eq!(CharSet::any().len(), CharSet::universe_len());
    }

    #[test]
    fn pick_prefers_readable() {
        let set = CharSet::from_ranges(vec![(0, 0x10FFFF)]);
        assert_eq!(set.pick(), Some('a'));
        let control = CharSet::range('\x00', '\x1f');
        assert_eq!(control.pick(), Some('\x00'));
    }

    #[test]
    fn binary_search_membership() {
        let set = CharSet::from_ranges(vec![(10, 20), (30, 40), (50, 60)]);
        assert!(set.contains(char::from_u32(35).unwrap()));
        assert!(!set.contains(char::from_u32(45).unwrap()));
    }

    #[test]
    fn from_iterator_collects() {
        let set: CharSet = "abcx".chars().collect();
        assert!(set.contains('b'));
        assert!(set.contains('x'));
        assert!(!set.contains('d'));
        assert_eq!(set.len(), 4);
    }
}

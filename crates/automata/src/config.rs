//! Construction-pipeline tuning knobs and build metrics.

/// Tuning knobs for the DFA construction pipeline.
///
/// The automata layer can [`minimize`](crate::Dfa::minimized) the
/// result of every subset construction and boolean operation, keeping
/// intermediate products small at the cost of a Hopcroft pass per
/// operation. Minimization never changes the accepted language, so
/// these knobs are pure space/time trade-offs — callers that need the
/// raw eager construction (e.g. differential oracles) use
/// [`AutomataConfig::disabled`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutomataConfig {
    /// Minimize the result of a subset construction or boolean
    /// operation when it has at least this many states; results below
    /// the threshold are kept as built (a Hopcroft pass on a handful
    /// of states costs more than it saves). `0` disables minimization
    /// entirely.
    pub minimize_threshold: usize,
}

impl Default for AutomataConfig {
    fn default() -> AutomataConfig {
        AutomataConfig {
            minimize_threshold: 8,
        }
    }
}

impl AutomataConfig {
    /// A configuration that never minimizes — the eager pipeline
    /// exactly as the seed reproduction built it.
    pub fn disabled() -> AutomataConfig {
        AutomataConfig {
            minimize_threshold: 0,
        }
    }

    /// True when `states` is large enough to be worth a Hopcroft pass.
    pub fn should_minimize(&self, states: usize) -> bool {
        self.minimize_threshold > 0 && states >= self.minimize_threshold
    }
}

/// Counters describing the automata built during one compilation.
///
/// `states_built` accumulates the state counts of every intermediate
/// automaton as constructed; `states_after_minimize` accumulates the
/// counts after the (thresholded) minimization pass. The ratio of the
/// two is the shrink factor the pipeline achieved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildMetrics {
    /// Total DFA states produced by subset constructions and boolean
    /// operations, before minimization.
    pub states_built: u64,
    /// Total DFA states remaining after the thresholded minimization
    /// pass (equal to `states_built` when minimization is disabled).
    pub states_after_minimize: u64,
}

impl BuildMetrics {
    /// Merges another compilation's counters into this one.
    pub fn absorb(&mut self, other: &BuildMetrics) {
        self.states_built += other.states_built;
        self.states_after_minimize += other.states_after_minimize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_gates_minimization() {
        let cfg = AutomataConfig {
            minimize_threshold: 8,
        };
        assert!(!cfg.should_minimize(7));
        assert!(cfg.should_minimize(8));
        assert!(!AutomataConfig::disabled().should_minimize(1_000_000));
    }

    #[test]
    fn metrics_absorb() {
        let mut a = BuildMetrics {
            states_built: 10,
            states_after_minimize: 4,
        };
        a.absorb(&BuildMetrics {
            states_built: 5,
            states_after_minimize: 5,
        });
        assert_eq!(a.states_built, 15);
        assert_eq!(a.states_after_minimize, 9);
    }
}

//! Classical regular expressions extended with intersection and
//! complement.
//!
//! [`CRegex`] is the target language of the capturing-language models:
//! backreference-free, capture-free, assertion-free expressions whose
//! word problem the string solver decides via automata. Intersection
//! (`And`) and complement (`Not`) are included because lookaheads encode
//! language intersection (§2.4 of the paper) and non-membership
//! constraints need complements; both are eliminated during DFA
//! compilation.

use std::fmt;
use std::sync::Arc;

use regex_syntax_es6::ast::Ast;

use crate::charset::CharSet;

/// A classical regular expression over [`CharSet`] transitions, with
/// intersection and complement.
///
/// # Examples
///
/// ```
/// use automata::{CRegex, CharSet};
///
/// // goo+d
/// let re = CRegex::concat(vec![
///     CRegex::lit("go"),
///     CRegex::plus(CRegex::set(CharSet::single('o'))),
///     CRegex::lit("d"),
/// ]);
/// assert_eq!(re.to_string(), "gooo*d");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CRegex {
    /// The empty language `∅`.
    EmptySet,
    /// The language `{ε}`.
    Epsilon,
    /// One character drawn from a set.
    Set(CharSet),
    /// Concatenation.
    Concat(Vec<CRegex>),
    /// Union.
    Alt(Vec<CRegex>),
    /// Kleene star.
    Star(Arc<CRegex>),
    /// Language intersection (eliminated by DFA product).
    And(Vec<CRegex>),
    /// Language complement (eliminated by DFA complement).
    Not(Arc<CRegex>),
}

impl CRegex {
    /// A literal string.
    pub fn lit(s: &str) -> CRegex {
        let items: Vec<CRegex> = s.chars().map(|c| CRegex::Set(CharSet::single(c))).collect();
        match items.len() {
            0 => CRegex::Epsilon,
            1 => items.into_iter().next().expect("one item"),
            _ => CRegex::Concat(items),
        }
    }

    /// One character from `set`; the empty set yields `∅`.
    pub fn set(set: CharSet) -> CRegex {
        if set.is_empty() {
            CRegex::EmptySet
        } else {
            CRegex::Set(set)
        }
    }

    /// Any single character.
    pub fn any_char() -> CRegex {
        CRegex::Set(CharSet::any())
    }

    /// `.*` over the full alphabet.
    pub fn anything() -> CRegex {
        CRegex::star(CRegex::any_char())
    }

    /// Smart concatenation: flattens, drops `ε`, propagates `∅`.
    pub fn concat(items: Vec<CRegex>) -> CRegex {
        let mut flat = Vec::with_capacity(items.len());
        for item in items {
            match item {
                CRegex::Epsilon => {}
                CRegex::EmptySet => return CRegex::EmptySet,
                CRegex::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => CRegex::Epsilon,
            1 => flat.pop().expect("one item"),
            _ => CRegex::Concat(flat),
        }
    }

    /// Smart union: flattens and drops `∅` branches.
    pub fn alt(items: Vec<CRegex>) -> CRegex {
        let mut flat = Vec::with_capacity(items.len());
        for item in items {
            match item {
                CRegex::EmptySet => {}
                CRegex::Alt(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        flat.dedup();
        match flat.len() {
            0 => CRegex::EmptySet,
            1 => flat.pop().expect("one item"),
            _ => CRegex::Alt(flat),
        }
    }

    /// Kleene star with trivial simplifications.
    pub fn star(item: CRegex) -> CRegex {
        match item {
            CRegex::EmptySet | CRegex::Epsilon => CRegex::Epsilon,
            star @ CRegex::Star(_) => star,
            other => CRegex::Star(Arc::new(other)),
        }
    }

    /// `r+` as `rr*`.
    pub fn plus(item: CRegex) -> CRegex {
        CRegex::concat(vec![item.clone(), CRegex::star(item)])
    }

    /// `r?` as `r|ε`.
    pub fn opt(item: CRegex) -> CRegex {
        CRegex::alt(vec![item, CRegex::Epsilon])
    }

    /// Intersection.
    pub fn and(items: Vec<CRegex>) -> CRegex {
        let mut flat = Vec::with_capacity(items.len());
        for item in items {
            match item {
                CRegex::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => CRegex::anything(),
            1 => flat.pop().expect("one item"),
            _ => CRegex::And(flat),
        }
    }

    /// Complement.
    #[allow(clippy::should_implement_trait)] // constructor family: star/plus/opt/not
    pub fn not(item: CRegex) -> CRegex {
        match item {
            CRegex::Not(inner) => Arc::unwrap_or_clone(inner),
            other => CRegex::Not(Arc::new(other)),
        }
    }

    /// Bounded repetition `r{min,max}` (unrolled).
    pub fn repeat(item: CRegex, min: u32, max: Option<u32>) -> CRegex {
        let mut parts = vec![item.clone(); min as usize];
        match max {
            None => parts.push(CRegex::star(item)),
            Some(max) => {
                for _ in min..max {
                    parts.push(CRegex::opt(item.clone()));
                }
            }
        }
        CRegex::concat(parts)
    }

    /// True if `ε` is in the language (conservative for `And`/`Not`:
    /// exact, computed structurally).
    pub fn nullable(&self) -> bool {
        match self {
            CRegex::EmptySet => false,
            CRegex::Epsilon | CRegex::Star(_) => true,
            CRegex::Set(_) => false,
            CRegex::Concat(items) => items.iter().all(CRegex::nullable),
            CRegex::Alt(items) => items.iter().any(CRegex::nullable),
            CRegex::And(items) => items.iter().all(CRegex::nullable),
            CRegex::Not(inner) => !inner.nullable(),
        }
    }

    /// Collects every [`CharSet`] used in the expression, for alphabet
    /// (minterm) construction.
    pub fn collect_sets(&self, out: &mut Vec<CharSet>) {
        match self {
            CRegex::Set(set) => out.push(set.clone()),
            CRegex::Concat(items) | CRegex::Alt(items) | CRegex::And(items) => {
                for item in items {
                    item.collect_sets(out);
                }
            }
            CRegex::Star(inner) | CRegex::Not(inner) => inner.collect_sets(out),
            _ => {}
        }
    }

    /// True if the expression contains `And` or `Not` (requiring DFA
    /// operations to compile).
    pub fn has_boolean_ops(&self) -> bool {
        match self {
            CRegex::And(_) | CRegex::Not(_) => true,
            CRegex::Concat(items) | CRegex::Alt(items) => items.iter().any(CRegex::has_boolean_ops),
            CRegex::Star(inner) => inner.has_boolean_ops(),
            _ => false,
        }
    }
}

impl fmt::Display for CRegex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CRegex::EmptySet => write!(f, "∅"),
            CRegex::Epsilon => write!(f, "ε"),
            CRegex::Set(set) => {
                if set.len() == 1 {
                    let c = set.pick().expect("nonempty");
                    if c.is_ascii_graphic() || c == ' ' {
                        return write!(f, "{c}");
                    }
                }
                write!(f, "[")?;
                for (shown, &(lo, hi)) in set.ranges().iter().enumerate() {
                    if shown >= 4 {
                        write!(f, "…")?;
                        break;
                    }
                    let lo_c = char::from_u32(lo).unwrap_or('?');
                    let hi_c = char::from_u32(hi).unwrap_or('?');
                    if lo == hi {
                        write!(f, "{}", printable(lo_c))?;
                    } else {
                        write!(f, "{}-{}", printable(lo_c), printable(hi_c))?;
                    }
                }
                write!(f, "]")
            }
            CRegex::Concat(items) => {
                for item in items {
                    match item {
                        CRegex::Alt(_) => write!(f, "({item})")?,
                        _ => write!(f, "{item}")?,
                    }
                }
                Ok(())
            }
            CRegex::Alt(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{item}")?;
                }
                Ok(())
            }
            CRegex::Star(inner) => match &**inner {
                CRegex::Set(_) | CRegex::Epsilon => write!(f, "{inner}*"),
                _ => write!(f, "({inner})*"),
            },
            CRegex::And(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, "&")?;
                    }
                    write!(f, "({item})")?;
                }
                Ok(())
            }
            CRegex::Not(inner) => write!(f, "¬({inner})"),
        }
    }
}

fn printable(c: char) -> String {
    if c.is_ascii_graphic() || c == ' ' {
        c.to_string()
    } else {
        format!("u{:04X}", c as u32)
    }
}

/// Error converting an ES6 AST to a classical regex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotClassical {
    /// Description of the offending construct.
    pub construct: &'static str,
}

impl fmt::Display for NotClassical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex is not classical: contains {}", self.construct)
    }
}

impl std::error::Error for NotClassical {}

/// Options for classical compilation.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Characters excluded from `.` and negated classes — the ⟨/⟩
    /// meta-characters of Algorithm 2, which must never be produced by
    /// user-regex wildcards.
    pub exclude: CharSet,
    /// Apply the `i` flag by case-expanding literals and classes.
    pub ignore_case: bool,
    /// Apply the `s` flag: `.` also matches line terminators.
    pub dot_all: bool,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            exclude: CharSet::empty(),
            ignore_case: false,
            dot_all: false,
        }
    }
}

/// Compiles a capture-free, backreference-free, assertion-free ES6 AST
/// into a classical regex.
///
/// Capture groups are accepted and compiled transparently (their
/// grouping is classical); lookaheads compile to intersections
/// (`(?=A)B → L(A.*) ∩ L(B)` — note this is only used for *trailing
/// context within the same model variable*, see Table 2). Anchors, word
/// boundaries and backreferences are rejected — the model layer
/// eliminates those first.
///
/// # Errors
///
/// Returns [`NotClassical`] when the AST contains backreferences, word
/// boundaries or anchors.
pub fn compile_classical(ast: &Ast, opts: &CompileOptions) -> Result<CRegex, NotClassical> {
    Ok(match ast {
        Ast::Empty => CRegex::Epsilon,
        Ast::Literal(c) => {
            if opts.ignore_case {
                let mut set = CharSet::single(*c);
                for v in regex_syntax_es6::class::simple_case_variants(*c) {
                    set = set.union(&CharSet::single(v));
                }
                CRegex::set(set)
            } else {
                CRegex::Set(CharSet::single(*c))
            }
        }
        Ast::Dot => {
            let base = if opts.dot_all {
                CharSet::any()
            } else {
                let terminators =
                    CharSet::from_ranges(vec![(0x0A, 0x0A), (0x0D, 0x0D), (0x2028, 0x2029)]);
                CharSet::any().difference(&terminators)
            };
            CRegex::set(base.difference(&opts.exclude))
        }
        Ast::Class(class) => {
            let class = if opts.ignore_case {
                class.case_insensitive()
            } else {
                class.clone()
            };
            let set = CharSet::from_class(&class);
            // Negated classes could admit the meta-characters.
            CRegex::set(set.difference(&opts.exclude))
        }
        Ast::Assertion(_) => {
            return Err(NotClassical {
                construct: "anchor or word boundary",
            })
        }
        Ast::Group { ast, .. } | Ast::NonCapturing(ast) => compile_classical(ast, opts)?,
        Ast::Lookahead { negative, ast } => {
            // Standalone compilation of a lookahead asserts the rest of
            // the word: (?=A) → A.* and (?!A) → ¬(A.*). The model layer
            // combines this with the continuation via And.
            let inner = compile_classical(ast, opts)?;
            let assertion = CRegex::concat(vec![inner, CRegex::anything()]);
            if *negative {
                CRegex::not(assertion)
            } else {
                assertion
            }
        }
        Ast::Repeat { ast, min, max, .. } => {
            let inner = compile_classical(ast, opts)?;
            CRegex::repeat(inner, *min, *max)
        }
        Ast::Alt(items) => CRegex::alt(
            items
                .iter()
                .map(|i| compile_classical(i, opts))
                .collect::<Result<_, _>>()?,
        ),
        Ast::Concat(items) => {
            // A lookahead inside a concatenation constrains the suffix:
            // compile as And(lookahead-language, rest).
            let mut parts: Vec<CRegex> = Vec::new();
            let mut i = 0;
            while i < items.len() {
                match &items[i] {
                    Ast::Lookahead { negative, ast } => {
                        let inner = compile_classical(ast, opts)?;
                        let assertion = CRegex::concat(vec![inner, CRegex::anything()]);
                        let assertion = if *negative {
                            CRegex::not(assertion)
                        } else {
                            assertion
                        };
                        let rest = compile_classical(&Ast::concat(items[i + 1..].to_vec()), opts)?;
                        parts.push(CRegex::and(vec![assertion, rest]));
                        return Ok(CRegex::concat(parts));
                    }
                    other => parts.push(compile_classical(other, opts)?),
                }
                i += 1;
            }
            CRegex::concat(parts)
        }
        Ast::Backref(_) => {
            return Err(NotClassical {
                construct: "backreference",
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regex_syntax_es6::parse;

    fn compile(pattern: &str) -> CRegex {
        compile_classical(&parse(pattern).expect("parse"), &CompileOptions::default())
            .expect("classical")
    }

    #[test]
    fn literal_compilation() {
        assert_eq!(CRegex::lit("ab").to_string(), "ab");
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(
            CRegex::concat(vec![CRegex::Epsilon, CRegex::lit("a")]),
            CRegex::lit("a")
        );
        assert_eq!(
            CRegex::concat(vec![CRegex::EmptySet, CRegex::lit("a")]),
            CRegex::EmptySet
        );
        assert_eq!(CRegex::alt(vec![CRegex::EmptySet]), CRegex::EmptySet);
        assert_eq!(CRegex::star(CRegex::Epsilon), CRegex::Epsilon);
    }

    #[test]
    fn nullable() {
        assert!(compile("a*").nullable());
        assert!(!compile("a+").nullable());
        assert!(compile("a|").nullable());
        assert!(!CRegex::not(CRegex::anything()).nullable());
    }

    #[test]
    fn rejects_non_classical() {
        let opts = CompileOptions::default();
        assert!(compile_classical(&parse(r"(a)\1").expect("parse"), &opts).is_err());
        assert!(compile_classical(&parse(r"\bfoo").expect("parse"), &opts).is_err());
        assert!(compile_classical(&parse("^a").expect("parse"), &opts).is_err());
    }

    #[test]
    fn captures_compile_transparently() {
        assert_eq!(compile("(ab)c"), compile("(?:ab)c"));
    }

    #[test]
    fn lookahead_becomes_intersection() {
        let re = compile("(?=ab)a.");
        assert!(re.has_boolean_ops());
    }

    #[test]
    fn dot_excludes_meta_chars() {
        let opts = CompileOptions {
            exclude: CharSet::single('\u{E000}'),
            ..CompileOptions::default()
        };
        let re = compile_classical(&parse(".").expect("parse"), &opts).expect("classical");
        match re {
            CRegex::Set(set) => {
                assert!(!set.contains('\u{E000}'));
                assert!(set.contains('x'));
                assert!(!set.contains('\n'));
            }
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn ignore_case_expands() {
        let opts = CompileOptions {
            ignore_case: true,
            ..CompileOptions::default()
        };
        let re = compile_classical(&parse("a").expect("parse"), &opts).expect("classical");
        match re {
            CRegex::Set(set) => {
                assert!(set.contains('a') && set.contains('A'));
            }
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn repeat_unrolls() {
        let re = CRegex::repeat(CRegex::lit("a"), 2, Some(3));
        // aa(a|ε)
        assert!(!re.nullable());
    }

    #[test]
    fn collect_sets_finds_all() {
        let mut sets = Vec::new();
        compile("[a-z]+[0-9]").collect_sets(&mut sets);
        assert_eq!(sets.len(), 3); // [a-z] twice (plus unrolling) + [0-9]
    }
}

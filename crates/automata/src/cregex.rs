//! Classical regular expressions extended with intersection and
//! complement.
//!
//! [`CRegex`] is the target language of the capturing-language models:
//! backreference-free, capture-free, assertion-free expressions whose
//! word problem the string solver decides via automata. Intersection
//! (`And`) and complement (`Not`) are included because lookaheads encode
//! language intersection (§2.4 of the paper) and non-membership
//! constraints need complements; both are eliminated during DFA
//! compilation.

use std::fmt;
use std::sync::Arc;

use regex_syntax_es6::ast::Ast;

use crate::charset::CharSet;

/// A classical regular expression over [`CharSet`] transitions, with
/// intersection and complement.
///
/// # Examples
///
/// ```
/// use automata::{CRegex, CharSet};
///
/// // goo+d
/// let re = CRegex::concat(vec![
///     CRegex::lit("go"),
///     CRegex::plus(CRegex::set(CharSet::single('o'))),
///     CRegex::lit("d"),
/// ]);
/// assert_eq!(re.to_string(), "gooo*d");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CRegex {
    /// The empty language `∅`.
    EmptySet,
    /// The language `{ε}`.
    Epsilon,
    /// One character drawn from a set.
    Set(CharSet),
    /// Concatenation.
    Concat(Vec<CRegex>),
    /// Union.
    Alt(Vec<CRegex>),
    /// Kleene star.
    Star(Arc<CRegex>),
    /// Language intersection (eliminated by DFA product).
    And(Vec<CRegex>),
    /// Language complement (eliminated by DFA complement).
    Not(Arc<CRegex>),
}

impl CRegex {
    /// A literal string.
    pub fn lit(s: &str) -> CRegex {
        let items: Vec<CRegex> = s.chars().map(|c| CRegex::Set(CharSet::single(c))).collect();
        match items.len() {
            0 => CRegex::Epsilon,
            1 => items.into_iter().next().expect("one item"),
            _ => CRegex::Concat(items),
        }
    }

    /// One character from `set`; the empty set yields `∅`.
    pub fn set(set: CharSet) -> CRegex {
        if set.is_empty() {
            CRegex::EmptySet
        } else {
            CRegex::Set(set)
        }
    }

    /// Any single character.
    pub fn any_char() -> CRegex {
        CRegex::Set(CharSet::any())
    }

    /// `.*` over the full alphabet.
    pub fn anything() -> CRegex {
        CRegex::star(CRegex::any_char())
    }

    /// Smart concatenation: flattens, drops `ε`, propagates `∅`.
    pub fn concat(items: Vec<CRegex>) -> CRegex {
        let mut flat = Vec::with_capacity(items.len());
        for item in items {
            match item {
                CRegex::Epsilon => {}
                CRegex::EmptySet => return CRegex::EmptySet,
                CRegex::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => CRegex::Epsilon,
            1 => flat.pop().expect("one item"),
            _ => CRegex::Concat(flat),
        }
    }

    /// Smart union: flattens and drops `∅` branches.
    pub fn alt(items: Vec<CRegex>) -> CRegex {
        let mut flat = Vec::with_capacity(items.len());
        for item in items {
            match item {
                CRegex::EmptySet => {}
                CRegex::Alt(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        flat.dedup();
        match flat.len() {
            0 => CRegex::EmptySet,
            1 => flat.pop().expect("one item"),
            _ => CRegex::Alt(flat),
        }
    }

    /// Kleene star with trivial simplifications.
    pub fn star(item: CRegex) -> CRegex {
        match item {
            CRegex::EmptySet | CRegex::Epsilon => CRegex::Epsilon,
            star @ CRegex::Star(_) => star,
            other => CRegex::Star(Arc::new(other)),
        }
    }

    /// `r+` as `rr*`.
    pub fn plus(item: CRegex) -> CRegex {
        CRegex::concat(vec![item.clone(), CRegex::star(item)])
    }

    /// `r?` as `r|ε`.
    pub fn opt(item: CRegex) -> CRegex {
        CRegex::alt(vec![item, CRegex::Epsilon])
    }

    /// Intersection.
    pub fn and(items: Vec<CRegex>) -> CRegex {
        let mut flat = Vec::with_capacity(items.len());
        for item in items {
            match item {
                CRegex::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => CRegex::anything(),
            1 => flat.pop().expect("one item"),
            _ => CRegex::And(flat),
        }
    }

    /// Complement.
    #[allow(clippy::should_implement_trait)] // constructor family: star/plus/opt/not
    pub fn not(item: CRegex) -> CRegex {
        match item {
            CRegex::Not(inner) => Arc::unwrap_or_clone(inner),
            other => CRegex::Not(Arc::new(other)),
        }
    }

    /// Bounded repetition `r{min,max}` (unrolled).
    pub fn repeat(item: CRegex, min: u32, max: Option<u32>) -> CRegex {
        let mut parts = vec![item.clone(); min as usize];
        match max {
            None => parts.push(CRegex::star(item)),
            Some(max) => {
                for _ in min..max {
                    parts.push(CRegex::opt(item.clone()));
                }
            }
        }
        CRegex::concat(parts)
    }

    /// True if `ε` is in the language (conservative for `And`/`Not`:
    /// exact, computed structurally).
    pub fn nullable(&self) -> bool {
        match self {
            CRegex::EmptySet => false,
            CRegex::Epsilon | CRegex::Star(_) => true,
            CRegex::Set(_) => false,
            CRegex::Concat(items) => items.iter().all(CRegex::nullable),
            CRegex::Alt(items) => items.iter().any(CRegex::nullable),
            CRegex::And(items) => items.iter().all(CRegex::nullable),
            CRegex::Not(inner) => !inner.nullable(),
        }
    }

    /// Collects every [`CharSet`] used in the expression, for alphabet
    /// (minterm) construction.
    pub fn collect_sets(&self, out: &mut Vec<CharSet>) {
        match self {
            CRegex::Set(set) => out.push(set.clone()),
            CRegex::Concat(items) | CRegex::Alt(items) | CRegex::And(items) => {
                for item in items {
                    item.collect_sets(out);
                }
            }
            CRegex::Star(inner) | CRegex::Not(inner) => inner.collect_sets(out),
            _ => {}
        }
    }

    /// True if the expression contains `And` or `Not` (requiring DFA
    /// operations to compile).
    pub fn has_boolean_ops(&self) -> bool {
        match self {
            CRegex::And(_) | CRegex::Not(_) => true,
            CRegex::Concat(items) | CRegex::Alt(items) => items.iter().any(CRegex::has_boolean_ops),
            CRegex::Star(inner) => inner.has_boolean_ops(),
            _ => false,
        }
    }
}

impl fmt::Display for CRegex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CRegex::EmptySet => write!(f, "∅"),
            CRegex::Epsilon => write!(f, "ε"),
            CRegex::Set(set) => {
                if set.len() == 1 {
                    let c = set.pick().expect("nonempty");
                    if c.is_ascii_graphic() || c == ' ' {
                        return write!(f, "{c}");
                    }
                }
                write!(f, "[")?;
                for (shown, &(lo, hi)) in set.ranges().iter().enumerate() {
                    if shown >= 4 {
                        write!(f, "…")?;
                        break;
                    }
                    let lo_c = char::from_u32(lo).unwrap_or('?');
                    let hi_c = char::from_u32(hi).unwrap_or('?');
                    if lo == hi {
                        write!(f, "{}", printable(lo_c))?;
                    } else {
                        write!(f, "{}-{}", printable(lo_c), printable(hi_c))?;
                    }
                }
                write!(f, "]")
            }
            CRegex::Concat(items) => {
                for item in items {
                    match item {
                        CRegex::Alt(_) => write!(f, "({item})")?,
                        _ => write!(f, "{item}")?,
                    }
                }
                Ok(())
            }
            CRegex::Alt(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{item}")?;
                }
                Ok(())
            }
            CRegex::Star(inner) => match &**inner {
                CRegex::Set(_) | CRegex::Epsilon => write!(f, "{inner}*"),
                _ => write!(f, "({inner})*"),
            },
            CRegex::And(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, "&")?;
                    }
                    write!(f, "({item})")?;
                }
                Ok(())
            }
            CRegex::Not(inner) => write!(f, "¬({inner})"),
        }
    }
}

fn printable(c: char) -> String {
    if c.is_ascii_graphic() || c == ' ' {
        c.to_string()
    } else {
        format!("u{:04X}", c as u32)
    }
}

/// Error converting an ES6 AST to a classical regex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotClassical {
    /// Description of the offending construct.
    pub construct: &'static str,
}

impl fmt::Display for NotClassical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex is not classical: contains {}", self.construct)
    }
}

impl std::error::Error for NotClassical {}

/// Options for classical compilation.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Characters excluded from `.` and negated classes — the ⟨/⟩
    /// meta-characters of Algorithm 2, which must never be produced by
    /// user-regex wildcards.
    pub exclude: CharSet,
    /// Apply the `i` flag by case-expanding literals and classes.
    pub ignore_case: bool,
    /// Apply the `s` flag: `.` also matches line terminators.
    pub dot_all: bool,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            exclude: CharSet::empty(),
            ignore_case: false,
            dot_all: false,
        }
    }
}

/// Compiles a capture-free, backreference-free, assertion-free ES6 AST
/// into a classical regex.
///
/// Equivalent to [`compile_classical_into`] with an ε continuation:
/// the result is the language of words the pattern matches *entirely,
/// with nothing following* — so a trailing `(?=a)` correctly yields the
/// empty language (no input remains for the lookahead to inspect), and
/// a trailing `(?!a)` is a no-op.
///
/// Capture groups are accepted and compiled transparently (their
/// grouping is classical). Anchors, word boundaries and backreferences
/// are rejected — the model layer eliminates those first.
///
/// # Errors
///
/// Returns [`NotClassical`] when the AST contains backreferences, word
/// boundaries, anchors, or a lookahead under an unbounded (or large)
/// quantifier — lookahead scoping across iterations is not expressible
/// by syntactic composition.
pub fn compile_classical(ast: &Ast, opts: &CompileOptions) -> Result<CRegex, NotClassical> {
    compile_classical_into(ast, opts, CRegex::Epsilon)
}

/// Largest bounded-repetition count unrolled when the body contains a
/// lookahead (each iteration must see its true continuation).
const LOOKAHEAD_UNROLL_LIMIT: u32 = 12;

/// Compiles `ast ⋅ k` — the pattern followed by the continuation
/// language `k` — with lookaheads scoping over the *actual*
/// continuation rather than the end of the fragment.
///
/// This is the sound form of classical lookahead compilation: in
/// `a(?=b)` the assertion inspects whatever follows the fragment, so
/// its compilation needs `k`. (The former fragment-local treatment cut
/// the assertion's scope at the end of the compiled subtree, which both
/// over- and under-approximated; the differential fuzzer found both
/// directions within 200 seeds.)
///
/// `(?=A)` becomes `L(A ⋅ Σ*) ∩ k` and `(?!A)` becomes `¬L(A ⋅ Σ*) ∩ k`
/// — `A` itself threaded into `Σ*`, since a lookahead's own trailing
/// lookaheads scope into the unconstrained future. A lookahead under a
/// *bounded* quantifier is unrolled (each copy sees the following
/// copies); under an unbounded one compilation is refused rather than
/// miscompiled.
///
/// # Errors
///
/// [`NotClassical`] as for [`compile_classical`].
pub fn compile_classical_into(
    ast: &Ast,
    opts: &CompileOptions,
    k: CRegex,
) -> Result<CRegex, NotClassical> {
    // Lookahead-free subtrees are context-independent: compile them
    // fragment-locally (linear) and append the continuation once.
    // Threading `k` through them instead would clone it per Alt branch
    // — exponential in sequential alternations for patterns that never
    // needed the continuation at all.
    if !ast.has_lookahead() {
        let plain = compile_plain(ast, opts)?;
        return Ok(CRegex::concat(vec![plain, k]));
    }
    Ok(match ast {
        Ast::Group { ast, .. } | Ast::NonCapturing(ast) => compile_classical_into(ast, opts, k)?,
        Ast::Lookahead { negative, ast } => {
            // The assertion constrains the remaining word: a prefix in
            // L(A), anything after. Nested trailing lookaheads inside A
            // scope into that unconstrained future.
            let assertion = compile_classical_into(ast, opts, CRegex::anything())?;
            let assertion = if *negative {
                CRegex::not(assertion)
            } else {
                assertion
            };
            CRegex::and(vec![assertion, k])
        }
        Ast::Repeat { ast, min, max, .. } => {
            // The body contains a lookahead (the lookahead-free case
            // took the fragment-local fast path above), so iterations
            // must see their true continuations — unroll bounded
            // counts, refuse unbounded ones.
            let Some(n) = *max else {
                return Err(NotClassical {
                    construct: "lookahead under unbounded repetition",
                });
            };
            if n > LOOKAHEAD_UNROLL_LIMIT {
                return Err(NotClassical {
                    construct: "lookahead under large bounded repetition",
                });
            }
            // Unroll: body^j ⋅ k for j in min..=n, each iteration
            // threaded into the following ones.
            let mut tail = k.clone();
            let mut branches = Vec::with_capacity((n - *min) as usize + 1);
            if *min == 0 {
                branches.push(tail.clone());
            }
            for j in 1..=n {
                tail = compile_classical_into(ast, opts, tail)?;
                if j >= *min {
                    branches.push(tail.clone());
                }
            }
            CRegex::alt(branches)
        }
        Ast::Alt(items) => CRegex::alt(
            items
                .iter()
                .map(|i| compile_classical_into(i, opts, k.clone()))
                .collect::<Result<_, _>>()?,
        ),
        Ast::Concat(items) => {
            // Right fold: every item sees the language of what follows.
            let mut acc = k;
            for item in items.iter().rev() {
                acc = compile_classical_into(item, opts, acc)?;
            }
            acc
        }
        // Leaves cannot contain lookaheads; the fast path handled them.
        _ => unreachable!("leaf nodes contain no lookahead"),
    })
}

/// Fragment-local compilation of a *lookahead-free* classical AST —
/// the linear workhorse behind [`compile_classical_into`]'s fast path.
fn compile_plain(ast: &Ast, opts: &CompileOptions) -> Result<CRegex, NotClassical> {
    Ok(match ast {
        Ast::Empty => CRegex::Epsilon,
        Ast::Literal(c) => {
            if opts.ignore_case {
                // Variants join the set only when Canonicalize-equal
                // under the same non-unicode rule the matcher applies —
                // `ſ` must not drag ASCII `S` in (a non-ASCII character
                // whose uppercase is ASCII canonicalizes to itself).
                use regex_syntax_es6::class::{canonicalize_simple, simple_case_variants};
                let mut set = CharSet::single(*c);
                for v in simple_case_variants(*c) {
                    if canonicalize_simple(v) == canonicalize_simple(*c) {
                        set = set.union(&CharSet::single(v));
                    }
                }
                CRegex::set(set)
            } else {
                CRegex::Set(CharSet::single(*c))
            }
        }
        Ast::Dot => {
            let base = if opts.dot_all {
                CharSet::any()
            } else {
                let terminators =
                    CharSet::from_ranges(vec![(0x0A, 0x0A), (0x0D, 0x0D), (0x2028, 0x2029)]);
                CharSet::any().difference(&terminators)
            };
            CRegex::set(base.difference(&opts.exclude))
        }
        Ast::Class(class) => {
            let class = if opts.ignore_case {
                class.case_insensitive()
            } else {
                class.clone()
            };
            let set = CharSet::from_class(&class);
            // Negated classes could admit the meta-characters.
            CRegex::set(set.difference(&opts.exclude))
        }
        Ast::Assertion(_) => {
            return Err(NotClassical {
                construct: "anchor or word boundary",
            })
        }
        Ast::Group { ast, .. } | Ast::NonCapturing(ast) => compile_plain(ast, opts)?,
        Ast::Lookahead { .. } => unreachable!("caller guarantees a lookahead-free subtree"),
        Ast::Repeat { ast, min, max, .. } => CRegex::repeat(compile_plain(ast, opts)?, *min, *max),
        Ast::Alt(items) => CRegex::alt(
            items
                .iter()
                .map(|i| compile_plain(i, opts))
                .collect::<Result<_, _>>()?,
        ),
        Ast::Concat(items) => CRegex::concat(
            items
                .iter()
                .map(|i| compile_plain(i, opts))
                .collect::<Result<_, _>>()?,
        ),
        Ast::Backref(_) => {
            return Err(NotClassical {
                construct: "backreference",
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regex_syntax_es6::parse;

    fn compile(pattern: &str) -> CRegex {
        compile_classical(&parse(pattern).expect("parse"), &CompileOptions::default())
            .expect("classical")
    }

    #[test]
    fn literal_compilation() {
        assert_eq!(CRegex::lit("ab").to_string(), "ab");
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(
            CRegex::concat(vec![CRegex::Epsilon, CRegex::lit("a")]),
            CRegex::lit("a")
        );
        assert_eq!(
            CRegex::concat(vec![CRegex::EmptySet, CRegex::lit("a")]),
            CRegex::EmptySet
        );
        assert_eq!(CRegex::alt(vec![CRegex::EmptySet]), CRegex::EmptySet);
        assert_eq!(CRegex::star(CRegex::Epsilon), CRegex::Epsilon);
    }

    #[test]
    fn nullable() {
        assert!(compile("a*").nullable());
        assert!(!compile("a+").nullable());
        assert!(compile("a|").nullable());
        assert!(!CRegex::not(CRegex::anything()).nullable());
    }

    #[test]
    fn rejects_non_classical() {
        let opts = CompileOptions::default();
        assert!(compile_classical(&parse(r"(a)\1").expect("parse"), &opts).is_err());
        assert!(compile_classical(&parse(r"\bfoo").expect("parse"), &opts).is_err());
        assert!(compile_classical(&parse("^a").expect("parse"), &opts).is_err());
    }

    #[test]
    fn captures_compile_transparently() {
        assert_eq!(compile("(ab)c"), compile("(?:ab)c"));
    }

    #[test]
    fn lookahead_becomes_intersection() {
        let re = compile("(?=ab)a.");
        assert!(re.has_boolean_ops());
    }

    #[test]
    fn dot_excludes_meta_chars() {
        let opts = CompileOptions {
            exclude: CharSet::single('\u{E000}'),
            ..CompileOptions::default()
        };
        let re = compile_classical(&parse(".").expect("parse"), &opts).expect("classical");
        match re {
            CRegex::Set(set) => {
                assert!(!set.contains('\u{E000}'));
                assert!(set.contains('x'));
                assert!(!set.contains('\n'));
            }
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn ignore_case_expands() {
        let opts = CompileOptions {
            ignore_case: true,
            ..CompileOptions::default()
        };
        let re = compile_classical(&parse("a").expect("parse"), &opts).expect("classical");
        match re {
            CRegex::Set(set) => {
                assert!(set.contains('a') && set.contains('A'));
            }
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn repeat_unrolls() {
        let re = CRegex::repeat(CRegex::lit("a"), 2, Some(3));
        // aa(a|ε)
        assert!(!re.nullable());
    }

    #[test]
    fn collect_sets_finds_all() {
        let mut sets = Vec::new();
        compile("[a-z]+[0-9]").collect_sets(&mut sets);
        assert_eq!(sets.len(), 3); // [a-z] twice (plus unrolling) + [0-9]
    }
}

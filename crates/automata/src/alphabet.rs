//! Minterm alphabets: partitioning the Unicode scalar space into the
//! equivalence classes induced by a set of [`CharSet`]s.
//!
//! DFAs over raw Unicode would need 0x110000-ary transition tables. All
//! automata in a constraint problem instead share one [`Alphabet`]: the
//! coarsest partition such that every `CharSet` appearing in the problem
//! is a union of classes. Typical problems produce a handful of classes.

use std::sync::Arc;

use crate::charset::CharSet;

/// Identifier of an alphabet class (a "minterm").
pub type ClassId = u16;

/// A partition of the scalar-value space into disjoint classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    /// Sorted interval boundaries: interval `i` is
    /// `[boundaries[i], boundaries[i+1])`.
    boundaries: Vec<u32>,
    /// Class of each interval.
    interval_class: Vec<ClassId>,
    /// The character set of each class.
    classes: Vec<CharSet>,
    /// Content hash, precomputed at construction: alphabets are hashed
    /// on every solver DFA-cache lookup, and hashing the boundary and
    /// class vectors each time dominated cache-hit cost.
    fingerprint: u64,
}

impl std::hash::Hash for Alphabet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Consistent with `PartialEq`: the fingerprint is a pure
        // function of the compared content, so equal alphabets hash
        // equally (unequal ones may collide, which `Hash` permits).
        state.write_u64(self.fingerprint);
    }
}

impl Alphabet {
    /// Builds the minterm partition for a collection of character sets.
    ///
    /// Every input set is exactly a union of the resulting classes.
    /// Characters not covered by any input set fall into "rest" classes.
    ///
    /// # Examples
    ///
    /// ```
    /// use automata::{Alphabet, CharSet};
    ///
    /// let alpha = Alphabet::from_sets(&[
    ///     CharSet::range('a', 'z'),
    ///     CharSet::range('m', 'p'), // overlaps [a-z]: refines it
    /// ]);
    /// // Characters inside one minterm share a class…
    /// assert_eq!(alpha.classify('b'), alpha.classify('c')); // both in [a-l] only
    /// assert_eq!(alpha.classify('m'), alpha.classify('p')); // both in [m-p] too
    /// // …while the overlap splits [a-z] into distinguishable classes.
    /// assert_ne!(alpha.classify('b'), alpha.classify('m'));
    /// assert_ne!(alpha.classify('m'), alpha.classify('q'));
    /// ```
    pub fn from_sets(sets: &[CharSet]) -> Alphabet {
        // Collect boundaries: starts and one-past-ends of every range.
        // The surrogate block D800–DFFF is carved out: `char` cannot
        // represent it, and complements exclude it, so no class may
        // contain it.
        let mut bounds: Vec<u32> = vec![0, 0xD800, 0xE000, 0x110000];
        for set in sets {
            for &(lo, hi) in set.ranges() {
                bounds.push(lo);
                bounds.push(hi + 1);
            }
        }
        bounds.sort_unstable();
        bounds.dedup();

        // Signature per interval: which sets contain it.
        let mut interval_class = Vec::with_capacity(bounds.len() - 1);
        let mut classes: Vec<CharSet> = Vec::new();
        let mut signature_to_class: std::collections::HashMap<Vec<bool>, ClassId> =
            std::collections::HashMap::new();
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1] - 1);
            let surrogate_gap = lo >= 0xD800 && hi <= 0xDFFF;
            let probe = char::from_u32(lo)
                .or_else(|| char::from_u32(hi))
                .unwrap_or('\u{FFFD}');
            let signature: Vec<bool> = if surrogate_gap {
                vec![false; sets.len()]
            } else {
                sets.iter().map(|s| s.contains(probe)).collect()
            };
            let class = *signature_to_class.entry(signature).or_insert_with(|| {
                classes.push(CharSet::empty());
                (classes.len() - 1) as ClassId
            });
            if !surrogate_gap {
                classes[class as usize] =
                    classes[class as usize].union(&CharSet::from_ranges(vec![(lo, hi)]));
            }
            interval_class.push(class);
        }
        let fingerprint = {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            bounds.hash(&mut hasher);
            interval_class.hash(&mut hasher);
            classes.hash(&mut hasher);
            hasher.finish()
        };
        Alphabet {
            boundaries: bounds,
            interval_class,
            classes,
            fingerprint,
        }
    }

    /// Builds an alphabet shared across regexes and literal strings.
    pub fn for_problem(regex_sets: &[CharSet], literals: &[&str]) -> Arc<Alphabet> {
        let mut sets = regex_sets.to_vec();
        for lit in literals {
            for c in lit.chars() {
                sets.push(CharSet::single(c));
            }
        }
        Arc::new(Alphabet::from_sets(&sets))
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Maps a character to its class.
    pub fn classify(&self, c: char) -> ClassId {
        let v = c as u32;
        // Find the interval via binary search: last boundary ≤ v.
        let idx = match self.boundaries.binary_search(&v) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        self.interval_class[idx.min(self.interval_class.len() - 1)]
    }

    /// The character set of a class.
    pub fn class_set(&self, class: ClassId) -> &CharSet {
        &self.classes[class as usize]
    }

    /// A readable representative character of a class.
    pub fn representative(&self, class: ClassId) -> char {
        self.classes[class as usize]
            .pick()
            .expect("classes are nonempty")
    }

    /// Decomposes a set into the classes it covers.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the set is a union of classes, which holds
    /// whenever the set participated in [`Alphabet::from_sets`].
    pub fn classes_of(&self, set: &CharSet) -> Vec<ClassId> {
        let mut out = Vec::new();
        for (id, class) in self.classes.iter().enumerate() {
            let inter = class.intersect(set);
            if !inter.is_empty() {
                debug_assert_eq!(inter, *class, "set must be a union of alphabet classes");
                out.push(id as ClassId);
            }
        }
        out
    }

    /// Converts a word of class ids into a concrete string of
    /// representatives.
    pub fn realize(&self, word: &[ClassId]) -> String {
        word.iter().map(|&c| self.representative(c)).collect()
    }

    /// Converts a string into class ids.
    pub fn abstract_word(&self, word: &str) -> Vec<ClassId> {
        word.chars().map(|c| self.classify(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_set_two_classes() {
        let alpha = Alphabet::from_sets(&[CharSet::range('a', 'z')]);
        assert_eq!(alpha.class_count(), 2);
        assert_eq!(alpha.classify('m'), alpha.classify('q'));
        assert_ne!(alpha.classify('m'), alpha.classify('9'));
    }

    #[test]
    fn overlapping_sets_refine() {
        let alpha = Alphabet::from_sets(&[CharSet::range('a', 'm'), CharSet::range('g', 'z')]);
        // Classes: [a-f], [g-m], [n-z], rest.
        assert_eq!(alpha.class_count(), 4);
        assert_ne!(alpha.classify('a'), alpha.classify('h'));
        assert_ne!(alpha.classify('h'), alpha.classify('p'));
    }

    #[test]
    fn sets_are_unions_of_classes() {
        let set = CharSet::range('0', '9');
        let alpha = Alphabet::from_sets(&[set.clone(), CharSet::range('5', 'k')]);
        let classes = alpha.classes_of(&set);
        let mut union = CharSet::empty();
        for c in classes {
            union = union.union(alpha.class_set(c));
        }
        assert_eq!(union, set);
    }

    #[test]
    fn realize_round_trip() {
        let alpha = Alphabet::from_sets(&[CharSet::single('x'), CharSet::single('y')]);
        let word = alpha.abstract_word("xyx");
        let back = alpha.realize(&word);
        assert_eq!(back, "xyx");
    }

    #[test]
    fn empty_sets_one_class() {
        let alpha = Alphabet::from_sets(&[]);
        assert_eq!(alpha.class_count(), 1);
    }

    #[test]
    fn classify_extremes() {
        let alpha = Alphabet::from_sets(&[CharSet::single('a')]);
        let _ = alpha.classify('\0');
        let _ = alpha.classify(char::MAX);
    }
}

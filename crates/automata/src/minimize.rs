//! DFA minimization (Hopcroft partition refinement) and accepted-word
//! length bounds.
//!
//! [`Dfa::minimized`] produces the unique minimal complete DFA of the
//! language, numbered canonically (breadth-first from the start state
//! in class order). Canonical numbering means two language-equal DFAs
//! minimize to *byte-identical* transition tables, which the solver's
//! DFA cache exploits to intern structurally different but
//! language-equal regexes into one entry.
//!
//! [`Dfa::length_bounds`] reads the minimum accepted length off the
//! existing distance metadata and detects accepting cycles to decide
//! whether a maximum exists; when the language is finite the maximum is
//! the longest path through the (then acyclic) live subgraph.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::alphabet::ClassId;
use crate::dfa::Dfa;

/// Inclusive bounds on the lengths of a DFA's accepted words; see
/// [`Dfa::length_bounds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthBounds {
    /// Length of the shortest accepted word.
    pub min: usize,
    /// Length of the longest accepted word, or `None` when the
    /// language is infinite (an accepting cycle exists).
    pub max: Option<usize>,
}

impl Dfa {
    /// The unique minimal complete DFA of this language, canonically
    /// numbered (BFS from the start state in class order). Dead and
    /// unreachable states are trimmed as a side effect: unreachable
    /// states are dropped before refinement and all dead states merge
    /// into one rejecting sink.
    ///
    /// Minimization never changes the accepted language, and because
    /// the numbering is canonical, any two language-equal inputs yield
    /// identical outputs:
    ///
    /// ```
    /// use automata::{Alphabet, CharSet, CRegex, Dfa};
    /// use std::sync::Arc;
    ///
    /// let alphabet = Arc::new(Alphabet::from_sets(&[CharSet::single('a')]));
    /// // (a|aa)(a)* and a+ denote the same language.
    /// let verbose = CRegex::concat(vec![
    ///     CRegex::alt(vec![CRegex::lit("a"), CRegex::lit("aa")]),
    ///     CRegex::star(CRegex::lit("a")),
    /// ]);
    /// let d1 = Dfa::from_cregex(&verbose, &alphabet).minimized();
    /// let d2 = Dfa::from_cregex(&CRegex::plus(CRegex::lit("a")), &alphabet).minimized();
    /// assert_eq!(d1.state_count(), d2.state_count());
    /// assert!(d1.contains("aaa") && !d1.contains(""));
    /// ```
    pub fn minimized(&self) -> Dfa {
        let class_count = self.class_count;
        // --- Restrict to states reachable from the start -------------
        let total = self.state_count();
        let mut compact: Vec<u32> = vec![u32::MAX; total]; // old → compact
        let mut reachable: Vec<u32> = Vec::new(); // compact → old
        {
            let mut queue = VecDeque::new();
            compact[self.start as usize] = 0;
            reachable.push(self.start);
            queue.push_back(self.start);
            while let Some(s) = queue.pop_front() {
                for class in 0..class_count {
                    let t = self.step(s, class as ClassId);
                    if compact[t as usize] == u32::MAX {
                        compact[t as usize] = reachable.len() as u32;
                        reachable.push(t);
                        queue.push_back(t);
                    }
                }
            }
        }
        let n = reachable.len();

        // --- Reverse transitions over the compact states -------------
        // rev[class * n + target] = predecessor list.
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); class_count * n];
        for (s, &old) in reachable.iter().enumerate() {
            for class in 0..class_count {
                let t = compact[self.step(old, class as ClassId) as usize];
                rev[class * n + t as usize].push(s as u32);
            }
        }

        // --- Hopcroft refinement -------------------------------------
        let mut block_of: Vec<u32> = vec![0; n];
        let mut blocks: Vec<Vec<u32>> = Vec::new();
        {
            let mut accepting_block: Vec<u32> = Vec::new();
            let mut rejecting_block: Vec<u32> = Vec::new();
            for (s, &old) in reachable.iter().enumerate() {
                if self.is_accepting(old) {
                    accepting_block.push(s as u32);
                } else {
                    rejecting_block.push(s as u32);
                }
            }
            for block in [accepting_block, rejecting_block] {
                if !block.is_empty() {
                    let id = blocks.len() as u32;
                    for &s in &block {
                        block_of[s as usize] = id;
                    }
                    blocks.push(block);
                }
            }
        }
        // Worklist of (block, class) splitters; `in_worklist` mirrors
        // membership so a pending pair is never enqueued twice.
        let mut worklist: VecDeque<(u32, usize)> = VecDeque::new();
        let mut in_worklist: Vec<bool> = Vec::new();
        let enqueue_all =
            |worklist: &mut VecDeque<(u32, usize)>, in_worklist: &mut Vec<bool>, block: u32| {
                for class in 0..class_count {
                    worklist.push_back((block, class));
                    in_worklist[block as usize * class_count + class] = true;
                }
            };
        in_worklist.resize(blocks.len() * class_count, false);
        for b in 0..blocks.len() as u32 {
            enqueue_all(&mut worklist, &mut in_worklist, b);
        }

        let mut marked: Vec<bool> = vec![false; n];
        let mut marked_states: Vec<u32> = Vec::new();
        let mut hit_count: Vec<u32> = vec![0; blocks.len()];
        while let Some((a, class)) = worklist.pop_front() {
            in_worklist[a as usize * class_count + class] = false;
            // X = preimage of block `a` under `class`.
            let mut touched: Vec<u32> = Vec::new();
            for &t in &blocks[a as usize] {
                for &s in &rev[class * n + t as usize] {
                    if !marked[s as usize] {
                        marked[s as usize] = true;
                        marked_states.push(s);
                        let b = block_of[s as usize];
                        if hit_count[b as usize] == 0 {
                            touched.push(b);
                        }
                        hit_count[b as usize] += 1;
                    }
                }
            }
            for &b in &touched {
                let size = blocks[b as usize].len();
                let hits = hit_count[b as usize] as usize;
                hit_count[b as usize] = 0;
                if hits == size {
                    continue; // no split: every member is in X
                }
                // Split block `b` into marked (keeps id `b`) and
                // unmarked (new id) halves.
                let members = std::mem::take(&mut blocks[b as usize]);
                let (inside, outside): (Vec<u32>, Vec<u32>) =
                    members.into_iter().partition(|&s| marked[s as usize]);
                let new_id = blocks.len() as u32;
                for &s in &outside {
                    block_of[s as usize] = new_id;
                }
                blocks[b as usize] = inside;
                blocks.push(outside);
                hit_count.push(0);
                in_worklist.resize(blocks.len() * class_count, false);
                for d in 0..class_count {
                    if in_worklist[b as usize * class_count + d] {
                        // (b, d) is pending and now means the inside
                        // half; the outside half must also be
                        // processed.
                        worklist.push_back((new_id, d));
                        in_worklist[new_id as usize * class_count + d] = true;
                    } else {
                        // Enqueue the smaller half (Hopcroft's trick).
                        let smaller = if blocks[b as usize].len() <= blocks[new_id as usize].len() {
                            b
                        } else {
                            new_id
                        };
                        worklist.push_back((smaller, d));
                        in_worklist[smaller as usize * class_count + d] = true;
                    }
                }
            }
            for s in marked_states.drain(..) {
                marked[s as usize] = false;
            }
        }

        // --- Canonical rebuild: BFS over blocks from the start block --
        let block_count = blocks.len();
        let mut canon_of_block: Vec<u32> = vec![u32::MAX; block_count];
        let mut order: Vec<u32> = Vec::new(); // canonical id → block
        {
            let start_block = block_of[0]; // compact state 0 is the start
            let mut queue = VecDeque::new();
            canon_of_block[start_block as usize] = 0;
            order.push(start_block);
            queue.push_back(start_block);
            while let Some(b) = queue.pop_front() {
                let representative = blocks[b as usize][0];
                let old = reachable[representative as usize];
                for class in 0..class_count {
                    let t = compact[self.step(old, class as ClassId) as usize];
                    let tb = block_of[t as usize];
                    if canon_of_block[tb as usize] == u32::MAX {
                        canon_of_block[tb as usize] = order.len() as u32;
                        order.push(tb);
                        queue.push_back(tb);
                    }
                }
            }
        }
        // Every block is reachable (blocks partition reachable states),
        // so `order` covers all of them.
        debug_assert_eq!(order.len(), block_count);

        let mut transitions = vec![0u32; order.len() * class_count];
        let mut accepting = vec![false; order.len()];
        for (canon, &b) in order.iter().enumerate() {
            let representative = blocks[b as usize][0];
            let old = reachable[representative as usize];
            accepting[canon] = self.is_accepting(old);
            for class in 0..class_count {
                let t = compact[self.step(old, class as ClassId) as usize];
                transitions[canon * class_count + class] =
                    canon_of_block[block_of[t as usize] as usize];
            }
        }
        Dfa::from_parts(
            transitions,
            accepting,
            0,
            class_count,
            Arc::clone(&self.alphabet),
        )
    }

    /// Inclusive bounds on the lengths of accepted words, or `None`
    /// when the language is empty.
    ///
    /// The minimum is the start state's distance-to-accept (already
    /// maintained for dead-state pruning); the maximum is `None` when
    /// an accepting cycle exists ([`Dfa::is_infinite`], which reads the
    /// same distance metadata), and otherwise the longest path through
    /// the live subgraph, which is acyclic in the finite case.
    ///
    /// ```
    /// use automata::{Alphabet, Dfa, LengthBounds};
    /// use std::sync::Arc;
    ///
    /// let dfa = |s: &str| {
    ///     let re = regex_syntax_es6::parse(s).unwrap();
    ///     let re = automata::compile_classical(&re, &Default::default()).unwrap();
    ///     let mut sets = Vec::new();
    ///     re.collect_sets(&mut sets);
    ///     Dfa::from_cregex(&re, &Arc::new(Alphabet::from_sets(&sets)))
    /// };
    /// assert_eq!(
    ///     dfa("a{2,5}").length_bounds(),
    ///     Some(LengthBounds { min: 2, max: Some(5) })
    /// );
    /// assert_eq!(
    ///     dfa("ab+").length_bounds(),
    ///     Some(LengthBounds { min: 2, max: None })
    /// );
    /// ```
    pub fn length_bounds(&self) -> Option<LengthBounds> {
        *self.bounds.get_or_init(|| self.compute_length_bounds())
    }

    fn compute_length_bounds(&self) -> Option<LengthBounds> {
        let min = self.distance_to_accept(self.start_state())? as usize;
        if self.is_infinite() {
            return Some(LengthBounds { min, max: None });
        }
        // Finite language: the subgraph of live states reachable from
        // the start is acyclic (a live cycle would make it infinite).
        // Longest accepted length = longest path from the start to an
        // accepting state, by DP in reverse topological order.
        let n = self.state_count();
        let live = |s: u32| self.distance_to_accept(s).is_some();
        let mut in_graph = vec![false; n];
        let mut nodes: Vec<u32> = Vec::new();
        {
            let mut queue = VecDeque::new();
            in_graph[self.start_state() as usize] = true;
            nodes.push(self.start_state());
            queue.push_back(self.start_state());
            while let Some(s) = queue.pop_front() {
                for class in 0..self.class_count {
                    let t = self.step(s, class as ClassId);
                    if live(t) && !in_graph[t as usize] {
                        in_graph[t as usize] = true;
                        nodes.push(t);
                        queue.push_back(t);
                    }
                }
            }
        }
        // Kahn's algorithm for a topological order of the live
        // subgraph (counting parallel edges uniformly is fine — each
        // decrements what it incremented).
        let mut indegree: Vec<u32> = vec![0; n];
        for &s in &nodes {
            for class in 0..self.class_count {
                let t = self.step(s, class as ClassId);
                if in_graph[t as usize] {
                    indegree[t as usize] += 1;
                }
            }
        }
        let mut topo: Vec<u32> = Vec::with_capacity(nodes.len());
        let mut queue: VecDeque<u32> = nodes
            .iter()
            .copied()
            .filter(|&s| indegree[s as usize] == 0)
            .collect();
        while let Some(s) = queue.pop_front() {
            topo.push(s);
            for class in 0..self.class_count {
                let t = self.step(s, class as ClassId);
                if in_graph[t as usize] {
                    indegree[t as usize] -= 1;
                    if indegree[t as usize] == 0 {
                        queue.push_back(t);
                    }
                }
            }
        }
        debug_assert_eq!(topo.len(), nodes.len(), "finite live subgraph is acyclic");
        // longest[s] = longest accepted word length starting at s.
        let mut longest: Vec<usize> = vec![0; n];
        for &s in topo.iter().rev() {
            let mut best = 0usize;
            for class in 0..self.class_count {
                let t = self.step(s, class as ClassId);
                if in_graph[t as usize] {
                    best = best.max(1 + longest[t as usize]);
                }
            }
            longest[s as usize] = best;
        }
        Some(LengthBounds {
            min,
            max: Some(longest[self.start_state() as usize]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::cregex::{compile_classical, CompileOptions};

    fn dfa(pattern: &str) -> Dfa {
        let ast = regex_syntax_es6::parse(pattern).expect("parse");
        let re = compile_classical(&ast, &CompileOptions::default()).expect("classical");
        let mut sets = Vec::new();
        re.collect_sets(&mut sets);
        let alphabet = Arc::new(Alphabet::from_sets(&sets));
        Dfa::from_cregex(&re, &alphabet)
    }

    #[test]
    fn minimization_preserves_language() {
        let d = dfa("(a|b)*abb");
        let m = d.minimized();
        assert!(m.state_count() <= d.state_count());
        for w in ["abb", "aabb", "babb", "abab", "", "abbb"] {
            assert_eq!(d.contains(w), m.contains(w), "word {w:?}");
        }
    }

    #[test]
    fn minimization_merges_equivalent_states() {
        // a|b over the same alphabet class collapses to a 3-state
        // minimal DFA (start, accept, dead).
        let d = dfa("[ab]");
        let m = d.minimized();
        assert!(m.state_count() <= 3);
        assert!(m.contains("a") && m.contains("b") && !m.contains("ab"));
    }

    #[test]
    fn canonical_form_is_language_determined() {
        // Structurally different, language-equal regexes minimize to
        // identical automata.
        let d1 = dfa("a(a)*").minimized();
        let d2 = dfa("(a)*a").minimized();
        assert_eq!(d1.state_count(), d2.state_count());
        assert_eq!(d1.canonical_key(), d2.canonical_key());
    }

    #[test]
    fn minimized_empty_language_is_single_dead_state() {
        let d = dfa("a").intersect(&dfa("a").complement());
        let m = d.minimized();
        assert_eq!(m.state_count(), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn minimized_universal_is_single_state() {
        let alphabet = Arc::new(Alphabet::from_sets(&[crate::charset::CharSet::single('x')]));
        let m = Dfa::universal(&alphabet).minimized();
        assert_eq!(m.state_count(), 1);
        assert!(m.contains("") && m.contains("xxx"));
    }

    #[test]
    fn length_bounds_exact_repetition() {
        assert_eq!(
            dfa("a{2,5}").length_bounds(),
            Some(LengthBounds {
                min: 2,
                max: Some(5)
            })
        );
    }

    #[test]
    fn length_bounds_unbounded() {
        assert_eq!(
            dfa("goo+d").length_bounds(),
            Some(LengthBounds { min: 4, max: None })
        );
    }

    #[test]
    fn length_bounds_empty_language() {
        let never = dfa("a").intersect(&dfa("a").complement());
        assert_eq!(never.length_bounds(), None);
    }

    #[test]
    fn length_bounds_alternation() {
        assert_eq!(
            dfa("a|bb|ccc").length_bounds(),
            Some(LengthBounds {
                min: 1,
                max: Some(3)
            })
        );
    }

    #[test]
    fn length_bounds_epsilon() {
        assert_eq!(
            dfa("(a)?").length_bounds(),
            Some(LengthBounds {
                min: 0,
                max: Some(1)
            })
        );
    }

    #[test]
    fn length_bounds_survive_minimization() {
        let d = dfa("(ab){1,3}c?");
        assert_eq!(d.length_bounds(), d.minimized().length_bounds());
    }
}

//! Deterministic finite automata over minterm alphabets.
//!
//! DFAs here are always *complete* (every state has a transition for
//! every class), which makes complementation a matter of flipping
//! accepting states and makes products total. The solver relies on:
//!
//! * [`Dfa::intersect`]/[`Dfa::union`] — products over a shared alphabet;
//! * [`Dfa::complement`] — for non-membership constraints;
//! * [`Dfa::is_empty`]/[`Dfa::shortest_word`] — UNSAT detection and
//!   witness generation;
//! * [`Dfa::words`]/[`WordIter`] — bounded enumeration in length order;
//! * [`Dfa::step`]/[`Dfa::distance_to_accept`] — incremental runs with
//!   dead-state pruning during word-equation search.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::alphabet::{Alphabet, ClassId};
use crate::cregex::CRegex;
use crate::nfa::Nfa;

use crate::config::{AutomataConfig, BuildMetrics};

/// A complete deterministic finite automaton.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// Flattened transition table: `state * class_count + class`.
    pub(crate) transitions: Vec<u32>,
    pub(crate) accepting: Vec<bool>,
    pub(crate) start: u32,
    pub(crate) class_count: usize,
    pub(crate) alphabet: Arc<Alphabet>,
    /// BFS distance from each state to the nearest accepting state
    /// (`None` = dead).
    pub(crate) distances: Vec<Option<u32>>,
    /// Memoized [`Dfa::is_infinite`] — queried at every search node of
    /// the solver's variable-selection heuristic, and a DFS per call
    /// would dominate it.
    pub(crate) infinite: std::sync::OnceLock<bool>,
    /// Memoized [`Dfa::length_bounds`] result.
    pub(crate) bounds: std::sync::OnceLock<Option<crate::minimize::LengthBounds>>,
}

impl Dfa {
    /// Assembles a DFA from raw parts and computes its distance
    /// metadata (crate-internal: used by the minimizer's rebuild).
    pub(crate) fn from_parts(
        transitions: Vec<u32>,
        accepting: Vec<bool>,
        start: u32,
        class_count: usize,
        alphabet: Arc<Alphabet>,
    ) -> Dfa {
        let mut dfa = Dfa {
            transitions,
            accepting,
            start,
            class_count,
            alphabet,
            distances: Vec::new(),
            infinite: std::sync::OnceLock::new(),
            bounds: std::sync::OnceLock::new(),
        };
        dfa.compute_distances();
        dfa
    }

    /// Compiles a classical regex to a DFA over `alphabet`, eagerly and
    /// without minimization — the seed reproduction's pipeline, kept as
    /// the differential oracle. The lazy, minimizing pipeline the
    /// solver uses is [`Dfa::from_cregex_with`].
    ///
    /// The alphabet must contain every `CharSet` of the regex (build it
    /// with [`Alphabet::from_sets`] over the whole problem).
    pub fn from_cregex(re: &CRegex, alphabet: &Arc<Alphabet>) -> Dfa {
        Dfa::from_cregex_with(
            re,
            alphabet,
            &AutomataConfig::disabled(),
            &mut BuildMetrics::default(),
        )
    }

    /// Compiles a classical regex through the reachable-only pipeline:
    /// every subset construction and boolean operation is followed by a
    /// (thresholded) minimization pass, and intersections fold
    /// smallest-operand-first so intermediate products stay small.
    ///
    /// `metrics` accumulates before/after state counts; the accepted
    /// language is identical to [`Dfa::from_cregex`]'s for any
    /// configuration.
    pub fn from_cregex_with(
        re: &CRegex,
        alphabet: &Arc<Alphabet>,
        config: &AutomataConfig,
        metrics: &mut BuildMetrics,
    ) -> Dfa {
        Dfa::try_from_cregex_with(re, alphabet, config, metrics, usize::MAX)
            .expect("unbounded construction cannot overflow")
    }

    /// Applies the thresholded minimization pass, recording before and
    /// after state counts in `metrics`. The language is unchanged.
    pub fn reduced(self, config: &AutomataConfig, metrics: &mut BuildMetrics) -> Dfa {
        metrics.states_built += self.state_count() as u64;
        let out = if config.should_minimize(self.state_count()) {
            self.minimized()
        } else {
            self
        };
        metrics.states_after_minimize += out.state_count() as u64;
        out
    }

    /// A hashable identity of the automaton's structure under its
    /// alphabet. After [`Dfa::minimized`] (which numbers states
    /// canonically) this is a *language* identity: two DFAs over the
    /// same alphabet have equal keys iff their minimal canonical forms
    /// coincide.
    pub fn canonical_key(&self) -> (u32, Vec<u32>, Vec<bool>) {
        (self.start, self.transitions.clone(), self.accepting.clone())
    }

    /// Subset construction.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        Dfa::from_nfa_bounded(nfa, usize::MAX).expect("unbounded construction cannot overflow")
    }

    /// [`Dfa::from_nfa`] with a cap on the number of subset states:
    /// `None` when the construction would exceed `max_states`.
    ///
    /// Subset construction is exponential in the worst case (an
    /// unanchored `Σ*·body·Σ*` language can visit millions of subset
    /// states before minimizing to a dozen); bounded construction lets
    /// batch consumers — the differential fuzzer foremost — skip
    /// pathological instances instead of stalling on them.
    pub fn from_nfa_bounded(nfa: &Nfa, max_states: usize) -> Option<Dfa> {
        let class_count = nfa.alphabet.class_count();
        let mut start_set = vec![nfa.start];
        nfa.epsilon_closure(&mut start_set);

        let mut ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut transitions: Vec<u32> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut worklist: VecDeque<Vec<u32>> = VecDeque::new();

        ids.insert(start_set.clone(), 0);
        transitions.resize(class_count, u32::MAX);
        accepting.push(start_set.contains(&nfa.accept));
        worklist.push_back(start_set);

        while let Some(set) = worklist.pop_front() {
            let id = ids[&set];
            for class in 0..class_count {
                let mut next: Vec<u32> = Vec::new();
                for &s in &set {
                    for &(c, t) in &nfa.states[s as usize].transitions {
                        if c as usize == class && !next.contains(&t) {
                            next.push(t);
                        }
                    }
                }
                nfa.epsilon_closure(&mut next);
                let next_id = match ids.get(&next) {
                    Some(&id) => id,
                    None => {
                        if accepting.len() >= max_states {
                            return None;
                        }
                        let new_id = accepting.len() as u32;
                        ids.insert(next.clone(), new_id);
                        transitions.extend(std::iter::repeat_n(u32::MAX, class_count));
                        accepting.push(next.contains(&nfa.accept));
                        worklist.push_back(next);
                        new_id
                    }
                };
                transitions[id as usize * class_count + class] = next_id;
            }
        }

        let mut dfa = Dfa {
            transitions,
            accepting,
            start: 0,
            class_count,
            alphabet: Arc::clone(&nfa.alphabet),
            distances: Vec::new(),
            infinite: std::sync::OnceLock::new(),
            bounds: std::sync::OnceLock::new(),
        };
        dfa.compute_distances();
        Some(dfa)
    }

    /// [`Dfa::from_cregex_with`] under a state budget: every subset
    /// construction and boolean-operation result is capped at
    /// `max_states`; `None` means the instance was abandoned (never a
    /// wrong answer). The successful result is identical to the
    /// unbounded pipeline's.
    pub fn try_from_cregex_with(
        re: &CRegex,
        alphabet: &Arc<Alphabet>,
        config: &AutomataConfig,
        metrics: &mut BuildMetrics,
        max_states: usize,
    ) -> Option<Dfa> {
        let capped = |dfa: Dfa| {
            if dfa.state_count() > max_states {
                None
            } else {
                Some(dfa)
            }
        };
        match re {
            CRegex::And(items) => {
                let mut operands: Vec<Dfa> = items
                    .iter()
                    .map(|item| {
                        Dfa::try_from_cregex_with(item, alphabet, config, metrics, max_states)
                    })
                    .collect::<Option<_>>()?;
                // Smallest-first fold: the product worklist only visits
                // reachable pairs, so keeping the accumulator small
                // bounds every intermediate.
                operands.sort_by_key(Dfa::state_count);
                let mut iter = operands.into_iter();
                let mut acc = iter.next().expect("And is non-empty");
                for operand in iter {
                    acc = capped(
                        acc.product(&operand, ProductMode::Intersect)
                            .reduced(config, metrics),
                    )?;
                }
                Some(acc)
            }
            CRegex::Not(inner) => capped(
                Dfa::try_from_cregex_with(inner, alphabet, config, metrics, max_states)?
                    .complement()
                    .reduced(config, metrics),
            ),
            _ => {
                let nfa = Nfa::thompson(re, alphabet);
                Some(Dfa::from_nfa_bounded(&nfa, max_states)?.reduced(config, metrics))
            }
        }
    }

    /// A DFA accepting exactly one word.
    ///
    /// # Panics
    ///
    /// Debug-panics when the word's characters are not singleton
    /// classes of `alphabet`; use [`Dfa::from_word_classes`] for words
    /// that did not contribute to the alphabet.
    pub fn from_word(word: &str, alphabet: &Arc<Alphabet>) -> Dfa {
        Dfa::from_cregex(&CRegex::lit(word), alphabet)
    }

    /// A DFA accepting exactly the words whose *class sequence* equals
    /// that of `word` — an overapproximation of `{word}` at minterm
    /// granularity, safe for any word regardless of the alphabet's
    /// construction. Used for residual-guide pruning in the solver.
    pub fn from_word_classes(word: &str, alphabet: &Arc<Alphabet>) -> Dfa {
        let classes = alphabet.abstract_word(word);
        let class_count = alphabet.class_count();
        let n = classes.len();
        // States 0..=n along the word, plus a dead state n+1.
        let dead = (n + 1) as u32;
        let mut transitions = vec![dead; (n + 2) * class_count];
        for (i, &c) in classes.iter().enumerate() {
            transitions[i * class_count + c as usize] = (i + 1) as u32;
        }
        let mut accepting = vec![false; n + 2];
        accepting[n] = true;
        let mut dfa = Dfa {
            transitions,
            accepting,
            start: 0,
            class_count,
            alphabet: Arc::clone(alphabet),
            distances: Vec::new(),
            infinite: std::sync::OnceLock::new(),
            bounds: std::sync::OnceLock::new(),
        };
        dfa.compute_distances();
        dfa
    }

    /// A DFA accepting every word.
    pub fn universal(alphabet: &Arc<Alphabet>) -> Dfa {
        Dfa::from_cregex(&CRegex::anything(), alphabet)
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// The shared alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// The start state.
    pub fn start_state(&self) -> u32 {
        self.start
    }

    /// Transition function.
    pub fn step(&self, state: u32, class: ClassId) -> u32 {
        self.transitions[state as usize * self.class_count + class as usize]
    }

    /// Runs the DFA over a string from `state`.
    pub fn run(&self, state: u32, word: &str) -> u32 {
        word.chars()
            .fold(state, |s, c| self.step(s, self.alphabet.classify(c)))
    }

    /// Acceptance predicate.
    pub fn is_accepting(&self, state: u32) -> bool {
        self.accepting[state as usize]
    }

    /// Language membership.
    pub fn contains(&self, word: &str) -> bool {
        self.is_accepting(self.run(self.start, word))
    }

    /// BFS distance from `state` to the nearest accepting state, or
    /// `None` when no accepting state is reachable (dead state).
    pub fn distance_to_accept(&self, state: u32) -> Option<u32> {
        self.distances[state as usize]
    }

    /// True when the language is empty.
    pub fn is_empty(&self) -> bool {
        self.distances[self.start as usize].is_none()
    }

    /// True when `ε` is accepted.
    pub fn accepts_empty(&self) -> bool {
        self.is_accepting(self.start)
    }

    /// Complement (flips acceptance; completeness makes this exact).
    pub fn complement(&self) -> Dfa {
        let mut out = Dfa {
            transitions: self.transitions.clone(),
            accepting: self.accepting.iter().map(|&a| !a).collect(),
            start: self.start,
            class_count: self.class_count,
            alphabet: Arc::clone(&self.alphabet),
            distances: Vec::new(),
            infinite: std::sync::OnceLock::new(),
            bounds: std::sync::OnceLock::new(),
        };
        out.compute_distances();
        out
    }

    /// Intersection product.
    ///
    /// # Panics
    ///
    /// Panics if the two DFAs use different alphabets.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, ProductMode::Intersect)
    }

    /// Union product.
    ///
    /// # Panics
    ///
    /// Panics if the two DFAs use different alphabets.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, ProductMode::Union)
    }

    /// Worklist product construction: only pairs reachable from the
    /// start pair are materialized, and pairs that are provably dead
    /// from the operands' distance metadata (either side dead for an
    /// intersection, both sides for a union) collapse into one shared
    /// rejecting sink instead of being expanded.
    fn product(&self, other: &Dfa, mode: ProductMode) -> Dfa {
        assert_eq!(
            self.class_count, other.class_count,
            "product requires a shared alphabet"
        );
        let class_count = self.class_count;
        let dead_pair = |a: u32, b: u32| -> bool {
            let a_dead = self.distance_to_accept(a).is_none();
            let b_dead = other.distance_to_accept(b).is_none();
            match mode {
                ProductMode::Intersect => a_dead || b_dead,
                ProductMode::Union => a_dead && b_dead,
            }
        };
        let accept = |a: u32, b: u32| -> bool {
            match mode {
                ProductMode::Intersect => self.is_accepting(a) && other.is_accepting(b),
                ProductMode::Union => self.is_accepting(a) || other.is_accepting(b),
            }
        };
        let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
        let mut transitions: Vec<u32> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut worklist = VecDeque::new();
        let mut sink: Option<u32> = None;

        let start_pair = (self.start, other.start);
        ids.insert(start_pair, 0);
        transitions.resize(class_count, u32::MAX);
        accepting.push(accept(self.start, other.start));
        worklist.push_back(start_pair);

        while let Some((a, b)) = worklist.pop_front() {
            let id = ids[&(a, b)];
            for class in 0..class_count {
                let next = (
                    self.step(a, class as ClassId),
                    other.step(b, class as ClassId),
                );
                let next_id = if dead_pair(next.0, next.1) {
                    *sink.get_or_insert_with(|| {
                        let sink_id = accepting.len() as u32;
                        // Self-looping rejecting sink.
                        transitions.extend(std::iter::repeat_n(sink_id, class_count));
                        accepting.push(false);
                        sink_id
                    })
                } else {
                    match ids.get(&next) {
                        Some(&id) => id,
                        None => {
                            let new_id = accepting.len() as u32;
                            ids.insert(next, new_id);
                            transitions.extend(std::iter::repeat_n(u32::MAX, class_count));
                            accepting.push(accept(next.0, next.1));
                            worklist.push_back(next);
                            new_id
                        }
                    }
                };
                transitions[id as usize * class_count + class] = next_id;
            }
        }

        Dfa::from_parts(
            transitions,
            accepting,
            0,
            class_count,
            Arc::clone(&self.alphabet),
        )
    }

    fn compute_distances(&mut self) {
        let n = self.state_count();
        let mut distances: Vec<Option<u32>> = vec![None; n];
        // Reverse BFS from accepting states.
        let mut reverse: Vec<Vec<u32>> = vec![Vec::new(); n];
        for state in 0..n {
            for class in 0..self.class_count {
                let next = self.transitions[state * self.class_count + class];
                reverse[next as usize].push(state as u32);
            }
        }
        let mut queue = VecDeque::new();
        for (state, &acc) in self.accepting.iter().enumerate() {
            if acc {
                distances[state] = Some(0);
                queue.push_back(state as u32);
            }
        }
        while let Some(state) = queue.pop_front() {
            let d = distances[state as usize].expect("queued states have distance");
            for &prev in &reverse[state as usize] {
                if distances[prev as usize].is_none() {
                    distances[prev as usize] = Some(d + 1);
                    queue.push_back(prev);
                }
            }
        }
        self.distances = distances;
    }

    /// The shortest accepted word (readable representatives), if any.
    pub fn shortest_word(&self) -> Option<String> {
        let mut state = self.start;
        let mut remaining = self.distances[state as usize]?;
        let mut word = String::new();
        while remaining > 0 {
            // Greedily pick a class that decreases the distance.
            let mut advanced = false;
            for class in 0..self.class_count {
                let next = self.step(state, class as ClassId);
                if self.distances[next as usize] == Some(remaining - 1) {
                    word.push(self.alphabet.representative(class as ClassId));
                    state = next;
                    remaining -= 1;
                    advanced = true;
                    break;
                }
            }
            debug_assert!(advanced, "distance function must decrease");
            if !advanced {
                return None;
            }
        }
        Some(word)
    }

    /// Enumerates accepted words in length order (then class-id order),
    /// up to `max_len` characters, yielding at most `limit` words.
    pub fn words(&self, max_len: usize, limit: usize) -> Vec<String> {
        self.iter_words(max_len).take(limit).collect()
    }

    /// An iterator over accepted words in length order.
    pub fn iter_words(&self, max_len: usize) -> WordIter<'_> {
        let mut queue = VecDeque::new();
        queue.push_back((self.start, Vec::new()));
        WordIter {
            dfa: self,
            queue,
            max_len,
        }
    }

    /// True when the accepted language is infinite. Memoized: the
    /// first call runs the cycle detection, later calls are a load.
    pub fn is_infinite(&self) -> bool {
        *self.infinite.get_or_init(|| self.compute_is_infinite())
    }

    fn compute_is_infinite(&self) -> bool {
        // A live cycle reachable from start that can reach acceptance.
        // DFS detecting a cycle among live states.
        let n = self.state_count();
        let live = |s: u32| self.distances[s as usize].is_some();
        if !live(self.start) {
            return false;
        }
        let mut color = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack: Vec<(u32, usize)> = vec![(self.start, 0)];
        color[self.start as usize] = 1;
        while let Some(&mut (state, ref mut class)) = stack.last_mut() {
            if *class >= self.class_count {
                color[state as usize] = 2;
                stack.pop();
                continue;
            }
            let c = *class;
            *class += 1;
            let next = self.step(state, c as ClassId);
            if !live(next) {
                continue;
            }
            match color[next as usize] {
                0 => {
                    color[next as usize] = 1;
                    stack.push((next, 0));
                }
                1 => return true,
                _ => {}
            }
        }
        false
    }
}

/// How a [`Dfa::product`] combines its operands' acceptance, which also
/// determines when a pair is provably dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProductMode {
    Intersect,
    Union,
}

/// Iterator over accepted words in length order; see
/// [`Dfa::iter_words`].
#[derive(Debug)]
pub struct WordIter<'a> {
    dfa: &'a Dfa,
    queue: VecDeque<(u32, Vec<ClassId>)>,
    max_len: usize,
}

impl Iterator for WordIter<'_> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        while let Some((state, word)) = self.queue.pop_front() {
            if word.len() < self.max_len {
                for class in 0..self.dfa.class_count {
                    let next = self.dfa.step(state, class as ClassId);
                    if self.dfa.distances[next as usize].is_some() {
                        let mut w = word.clone();
                        w.push(class as ClassId);
                        self.queue.push_back((next, w));
                    }
                }
            }
            if self.dfa.is_accepting(state) {
                return Some(self.dfa.alphabet.realize(&word));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charset::CharSet;
    use regex_syntax_es6::parse;

    fn dfa(pattern: &str) -> Dfa {
        let ast = parse(pattern).expect("parse");
        let re = crate::cregex::compile_classical(&ast, &crate::cregex::CompileOptions::default())
            .expect("classical");
        let mut sets = Vec::new();
        re.collect_sets(&mut sets);
        let alphabet = Arc::new(Alphabet::from_sets(&sets));
        Dfa::from_cregex(&re, &alphabet)
    }

    #[test]
    fn membership() {
        let d = dfa("goo+d");
        assert!(d.contains("good"));
        assert!(d.contains("goood"));
        assert!(!d.contains("god"));
        assert!(!d.contains("goodx"));
    }

    #[test]
    fn complement_flips() {
        let d = dfa("a+");
        let c = d.complement();
        assert!(!c.contains("aa"));
        assert!(c.contains("b"));
        assert!(c.contains(""));
    }

    #[test]
    fn intersection() {
        let re_a = parse("[ab]*").expect("parse");
        let re_b = parse("[bc]*").expect("parse");
        let opts = crate::cregex::CompileOptions::default();
        let ca = crate::cregex::compile_classical(&re_a, &opts).expect("classical");
        let cb = crate::cregex::compile_classical(&re_b, &opts).expect("classical");
        let mut sets = Vec::new();
        ca.collect_sets(&mut sets);
        cb.collect_sets(&mut sets);
        let alphabet = Arc::new(Alphabet::from_sets(&sets));
        let da = Dfa::from_cregex(&ca, &alphabet);
        let db = Dfa::from_cregex(&cb, &alphabet);
        let inter = da.intersect(&db);
        assert!(inter.contains("bbb"));
        assert!(!inter.contains("ab"));
        assert!(inter.contains(""));
    }

    #[test]
    fn emptiness() {
        let d = dfa("a");
        assert!(!d.is_empty());
        let never = d.intersect(&d.complement());
        assert!(never.is_empty());
        assert_eq!(never.shortest_word(), None);
    }

    #[test]
    fn shortest_word() {
        let d = dfa("goo+d");
        assert_eq!(d.shortest_word(), Some("good".to_string()));
    }

    #[test]
    fn shortest_word_empty_language_is_none() {
        let d = dfa("a").intersect(&dfa("a").complement());
        assert_eq!(d.shortest_word(), None);
    }

    #[test]
    fn word_enumeration_in_length_order() {
        let d = dfa("a|bb|ccc");
        let words = d.words(5, 10);
        assert_eq!(words, vec!["a", "bb", "ccc"]);
    }

    #[test]
    fn word_enumeration_respects_max_len() {
        let d = dfa("a*");
        let words = d.words(2, 100);
        assert_eq!(words, vec!["", "a", "aa"]);
    }

    #[test]
    fn infinite_detection() {
        assert!(dfa("a*").is_infinite());
        assert!(!dfa("a{1,3}").is_infinite());
        assert!(!dfa("abc").is_infinite());
    }

    #[test]
    fn lookahead_intersection_via_dfa() {
        // (?=a[ab]*)aab… intersection behaviour end-to-end.
        let d = dfa("(?=ab)a[bc]");
        assert!(d.contains("ab"));
        assert!(!d.contains("ac"));
    }

    #[test]
    fn negative_lookahead_via_complement() {
        let d = dfa("(?!ab)a[bc]");
        assert!(!d.contains("ab"));
        assert!(d.contains("ac"));
    }

    #[test]
    fn from_word_exact() {
        let alphabet = Alphabet::for_problem(&[CharSet::range('a', 'z')], &["hey"]);
        let d = Dfa::from_word("hey", &alphabet);
        assert!(d.contains("hey"));
        assert!(!d.contains("he"));
        assert!(!d.contains("heyy"));
    }

    #[test]
    fn universal_accepts_everything() {
        let alphabet = Alphabet::for_problem(&[], &["x"]);
        let d = Dfa::universal(&alphabet);
        assert!(d.contains(""));
        assert!(d.contains("anything at all"));
    }

    #[test]
    fn distances_decrease_along_accepting_path() {
        let d = dfa("abc");
        let s0 = d.start_state();
        assert_eq!(d.distance_to_accept(s0), Some(3));
        let s1 = d.step(s0, d.alphabet().classify('a'));
        assert_eq!(d.distance_to_accept(s1), Some(2));
    }
}

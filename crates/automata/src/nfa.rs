//! Thompson NFA construction over a minterm alphabet.

use std::sync::Arc;

use crate::alphabet::{Alphabet, ClassId};
use crate::cregex::CRegex;
use crate::dfa::Dfa;

/// State identifier within an [`Nfa`].
pub type StateId = u32;

/// One NFA state: class-labelled transitions plus ε-transitions.
#[derive(Debug, Clone, Default)]
pub struct NfaState {
    /// `(class, target)` transitions.
    pub transitions: Vec<(ClassId, StateId)>,
    /// ε-transitions.
    pub epsilon: Vec<StateId>,
}

/// A nondeterministic finite automaton with a single start and a single
/// accepting state (Thompson form).
#[derive(Debug, Clone)]
pub struct Nfa {
    /// All states.
    pub states: Vec<NfaState>,
    /// Start state.
    pub start: StateId,
    /// The unique accepting state.
    pub accept: StateId,
    /// Shared alphabet.
    pub alphabet: Arc<Alphabet>,
}

impl Nfa {
    /// Builds the Thompson NFA of a classical regex.
    ///
    /// `And`/`Not` subtrees are compiled through the DFA layer
    /// (product/complement) and re-embedded, so arbitrary combinations
    /// of boolean operations with concatenation and star are supported.
    pub fn thompson(re: &CRegex, alphabet: &Arc<Alphabet>) -> Nfa {
        let mut builder = Builder {
            states: Vec::new(),
            alphabet: Arc::clone(alphabet),
        };
        let (start, accept) = builder.build(re);
        Nfa {
            states: builder.states,
            start,
            accept,
            alphabet: Arc::clone(alphabet),
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the NFA has no states (never constructed by
    /// [`Nfa::thompson`], which always creates at least two).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// ε-closure of a set of states (sorted, deduplicated).
    pub fn epsilon_closure(&self, set: &mut Vec<StateId>) {
        let mut stack: Vec<StateId> = set.clone();
        while let Some(s) = stack.pop() {
            for &t in &self.states[s as usize].epsilon {
                if !set.contains(&t) {
                    set.push(t);
                    stack.push(t);
                }
            }
        }
        set.sort_unstable();
        set.dedup();
    }
}

struct Builder {
    states: Vec<NfaState>,
    alphabet: Arc<Alphabet>,
}

impl Builder {
    fn new_state(&mut self) -> StateId {
        self.states.push(NfaState::default());
        (self.states.len() - 1) as StateId
    }

    fn eps(&mut self, from: StateId, to: StateId) {
        self.states[from as usize].epsilon.push(to);
    }

    /// Returns `(start, accept)` of the fragment for `re`.
    fn build(&mut self, re: &CRegex) -> (StateId, StateId) {
        match re {
            CRegex::EmptySet => {
                let s = self.new_state();
                let a = self.new_state();
                (s, a) // no path from s to a
            }
            CRegex::Epsilon => {
                let s = self.new_state();
                let a = self.new_state();
                self.eps(s, a);
                (s, a)
            }
            CRegex::Set(set) => {
                let s = self.new_state();
                let a = self.new_state();
                let classes = self.alphabet.classes_of(set);
                for class in classes {
                    self.states[s as usize].transitions.push((class, a));
                }
                (s, a)
            }
            CRegex::Concat(items) => {
                let mut current: Option<(StateId, StateId)> = None;
                for item in items {
                    let (s2, a2) = self.build(item);
                    current = Some(match current {
                        None => (s2, a2),
                        Some((s1, a1)) => {
                            self.eps(a1, s2);
                            (s1, a2)
                        }
                    });
                }
                current.unwrap_or_else(|| {
                    let s = self.new_state();
                    let a = self.new_state();
                    self.eps(s, a);
                    (s, a)
                })
            }
            CRegex::Alt(items) => {
                let s = self.new_state();
                let a = self.new_state();
                for item in items {
                    let (si, ai) = self.build(item);
                    self.eps(s, si);
                    self.eps(ai, a);
                }
                (s, a)
            }
            CRegex::Star(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (si, ai) = self.build(inner);
                self.eps(s, si);
                self.eps(ai, si);
                self.eps(s, a);
                self.eps(ai, a);
                (s, a)
            }
            CRegex::And(_) | CRegex::Not(_) => {
                // Compile through the DFA layer, then embed.
                let dfa = Dfa::from_cregex(re, &self.alphabet);
                self.embed_dfa(&dfa)
            }
        }
    }

    /// Embeds a DFA as a Thompson fragment.
    fn embed_dfa(&mut self, dfa: &Dfa) -> (StateId, StateId) {
        let offset = self.states.len() as StateId;
        for _ in 0..dfa.state_count() {
            self.new_state();
        }
        let accept = self.new_state();
        let classes = self.alphabet.class_count();
        for state in 0..dfa.state_count() {
            for class in 0..classes {
                let next = dfa.step(state as u32, class as ClassId);
                self.states[(offset + state as StateId) as usize]
                    .transitions
                    .push((class as ClassId, offset + next));
            }
            if dfa.is_accepting(state as u32) {
                self.eps(offset + state as StateId, accept);
            }
        }
        (offset + dfa.start_state(), accept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charset::CharSet;

    fn alpha_for(re: &CRegex) -> Arc<Alphabet> {
        let mut sets = Vec::new();
        re.collect_sets(&mut sets);
        Arc::new(Alphabet::from_sets(&sets))
    }

    #[test]
    fn thompson_literal() {
        let re = CRegex::lit("ab");
        let nfa = Nfa::thompson(&re, &alpha_for(&re));
        assert!(nfa.len() >= 4);
        assert!(!nfa.is_empty());
    }

    #[test]
    fn epsilon_closure_transitive() {
        let re = CRegex::star(CRegex::lit("a"));
        let nfa = Nfa::thompson(&re, &alpha_for(&re));
        let mut set = vec![nfa.start];
        nfa.epsilon_closure(&mut set);
        assert!(set.contains(&nfa.accept), "star accepts ε");
    }

    #[test]
    fn empty_set_has_no_accept_path() {
        let re = CRegex::EmptySet;
        let alphabet = Arc::new(Alphabet::from_sets(&[CharSet::single('a')]));
        let nfa = Nfa::thompson(&re, &alphabet);
        let mut set = vec![nfa.start];
        nfa.epsilon_closure(&mut set);
        assert!(!set.contains(&nfa.accept));
    }
}

//! Classical regular language automata: the decision-procedure substrate
//! of the string solver.
//!
//! The capturing-language models of the paper reduce ES6 regex matching
//! to *classical* regular membership plus string constraints (§4). This
//! crate provides the classical side:
//!
//! * [`CharSet`] — scalar-value sets as sorted ranges;
//! * [`CRegex`] — classical regexes extended with intersection and
//!   complement (for lookaheads and non-membership);
//! * [`Alphabet`] — minterm partitions shared across a constraint
//!   problem, keeping DFAs small;
//! * [`Nfa`]/[`Dfa`] — Thompson construction, subset construction,
//!   product, complement, emptiness, shortest-word and bounded word
//!   enumeration;
//! * [`minimize`] — Hopcroft minimization with canonical state
//!   numbering plus accepted-word [`LengthBounds`], driven by
//!   [`AutomataConfig`] thresholds and reported through
//!   [`BuildMetrics`].
//!
//! # Examples
//!
//! ```
//! use automata::{compile_classical, Alphabet, CompileOptions, Dfa};
//! use std::sync::Arc;
//!
//! let ast = regex_syntax_es6::parse("goo+d")?;
//! let re = compile_classical(&ast, &CompileOptions::default())?;
//! let mut sets = Vec::new();
//! re.collect_sets(&mut sets);
//! let alphabet = Arc::new(Alphabet::from_sets(&sets));
//! let dfa = Dfa::from_cregex(&re, &alphabet);
//! assert!(dfa.contains("goood"));
//! assert_eq!(dfa.shortest_word(), Some("good".to_string()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod alphabet;
pub mod charset;
pub mod config;
pub mod cregex;
pub mod dfa;
pub mod minimize;
pub mod nfa;

pub use alphabet::{Alphabet, ClassId};
pub use charset::CharSet;
pub use config::{AutomataConfig, BuildMetrics};
pub use cregex::{compile_classical, compile_classical_into, CRegex, CompileOptions, NotClassical};
pub use dfa::{Dfa, WordIter};
pub use minimize::LengthBounds;
pub use nfa::{Nfa, NfaState, StateId};

//! Differential suite for the lazy/minimizing pipeline: random
//! classical regexes are compiled through both the eager seed pipeline
//! (`Dfa::from_cregex`) and the reachable-only, Hopcroft-minimizing
//! pipeline (`Dfa::from_cregex_with` + `Dfa::minimized`), and the two
//! must agree on membership for every word up to length 6 over the
//! problem alphabet, plus oracle strings from the concrete ES6
//! matcher. `length_bounds()` must bracket every accepted word.

use std::sync::Arc;

use automata::{
    compile_classical, Alphabet, AutomataConfig, BuildMetrics, CRegex, CharSet, CompileOptions, Dfa,
};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// A small random classical regex over {a, b, c}, occasionally using
/// intersection and complement so the product and complement paths of
/// the pipeline are exercised too.
fn random_regex(rng: &mut StdRng, depth: usize) -> CRegex {
    let leaf = |rng: &mut StdRng| {
        let options = [
            CRegex::set(CharSet::single('a')),
            CRegex::set(CharSet::single('b')),
            CRegex::set(CharSet::range('a', 'c')),
            CRegex::lit("ab"),
            CRegex::lit("c"),
            CRegex::Epsilon,
        ];
        options.choose(rng).expect("nonempty").clone()
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.random_range(0usize..8) {
        0 => CRegex::star(random_regex(rng, depth - 1)),
        1 => CRegex::plus(random_regex(rng, depth - 1)),
        2 => CRegex::opt(random_regex(rng, depth - 1)),
        3 => CRegex::concat(vec![
            random_regex(rng, depth - 1),
            random_regex(rng, depth - 1),
        ]),
        4 => CRegex::alt(vec![
            random_regex(rng, depth - 1),
            random_regex(rng, depth - 1),
        ]),
        5 => CRegex::and(vec![
            random_regex(rng, depth - 1),
            random_regex(rng, depth - 1),
        ]),
        6 => CRegex::not(random_regex(rng, depth - 1)),
        _ => leaf(rng),
    }
}

fn alphabet_of(re: &CRegex) -> Arc<Alphabet> {
    let mut sets = Vec::new();
    re.collect_sets(&mut sets);
    // Anchor the alphabet so even set-free regexes (ε, ∅-like) get a
    // usable partition with the probe characters present.
    sets.push(CharSet::range('a', 'c'));
    Arc::new(Alphabet::from_sets(&sets))
}

/// Every word over the alphabet's class representatives up to
/// `max_len` characters.
fn words_up_to(alphabet: &Alphabet, max_len: usize) -> Vec<String> {
    let reps: Vec<char> = (0..alphabet.class_count())
        .map(|c| alphabet.representative(c as u16))
        .collect();
    let mut out = vec![String::new()];
    let mut frontier = vec![String::new()];
    for _ in 0..max_len {
        let mut next = Vec::with_capacity(frontier.len() * reps.len());
        for word in &frontier {
            for &r in &reps {
                let mut w = word.clone();
                w.push(r);
                next.push(w);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

#[test]
fn minimized_equals_unminimized_on_enumerated_words() {
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let re = random_regex(&mut rng, 3);
        let alphabet = alphabet_of(&re);
        let eager = Dfa::from_cregex(&re, &alphabet);
        let mut metrics = BuildMetrics::default();
        let lazy = Dfa::from_cregex_with(&re, &alphabet, &AutomataConfig::default(), &mut metrics)
            .minimized();
        assert!(
            lazy.state_count() <= eager.state_count(),
            "seed {seed}: minimized {} > eager {} states",
            lazy.state_count(),
            eager.state_count()
        );
        for word in words_up_to(&alphabet, 6) {
            assert_eq!(
                eager.contains(&word),
                lazy.contains(&word),
                "seed {seed}: {re} disagrees on {word:?}"
            );
        }
    }
}

#[test]
fn minimized_agrees_with_the_eager_pipeline_on_each_others_witnesses() {
    // Enumerated witnesses from either pipeline (beyond the
    // exhaustive length-6 window) must be accepted by the other.
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(0xd1ff ^ seed);
        let re = random_regex(&mut rng, 3);
        let alphabet = alphabet_of(&re);
        let eager = Dfa::from_cregex(&re, &alphabet);
        let lazy = Dfa::from_cregex_with(
            &re,
            &alphabet,
            &AutomataConfig::default(),
            &mut BuildMetrics::default(),
        )
        .minimized();
        for w in eager.words(10, 40) {
            assert!(lazy.contains(&w), "seed {seed}: lazy rejects {w:?} of {re}");
        }
        for w in lazy.words(10, 40) {
            assert!(
                eager.contains(&w),
                "seed {seed}: eager rejects {w:?} of {re}"
            );
        }
    }
}

#[test]
fn length_bounds_bracket_every_accepted_word() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0x1e4 ^ seed);
        let re = random_regex(&mut rng, 3);
        let alphabet = alphabet_of(&re);
        let dfa = Dfa::from_cregex(&re, &alphabet);
        let Some(bounds) = dfa.length_bounds() else {
            assert!(dfa.is_empty(), "seed {seed}: no bounds but nonempty {re}");
            continue;
        };
        let accepted: Vec<String> = dfa.words(9, 200);
        assert!(!accepted.is_empty(), "seed {seed}: bounds but no words");
        for w in &accepted {
            let n = w.chars().count();
            assert!(
                n >= bounds.min,
                "seed {seed}: {re} accepts {w:?} below min {}",
                bounds.min
            );
            if let Some(max) = bounds.max {
                assert!(n <= max, "seed {seed}: {re} accepts {w:?} above max {max}");
            }
        }
        // The minimum is attained exactly.
        let shortest = dfa.shortest_word().expect("nonempty");
        assert_eq!(shortest.chars().count(), bounds.min, "seed {seed}: {re}");
        // Bounds are a language property: minimization preserves them.
        assert_eq!(dfa.minimized().length_bounds(), Some(bounds), "seed {seed}");
    }
}

#[test]
fn minimized_agrees_with_the_es6_matcher_oracle() {
    // Anchored full-match semantics: the DFA of a classical pattern
    // decides the same language as /^(?:pattern)$/ in the concrete
    // matcher.
    let patterns = [
        "go+d",
        "(a|b)*abb",
        "a{2,5}",
        "(ab|c)+",
        "a[bc]*c",
        "(a|bb)(c|ab)*",
        "[a-c]{1,3}",
        "a*b*c*",
    ];
    for pattern in patterns {
        let ast = regex_syntax_es6::parse(pattern).expect("parse");
        let re = compile_classical(&ast, &CompileOptions::default()).expect("classical");
        let alphabet = alphabet_of(&re);
        let dfa = Dfa::from_cregex_with(
            &re,
            &alphabet,
            &AutomataConfig::default(),
            &mut BuildMetrics::default(),
        )
        .minimized();
        let mut oracle =
            es6_matcher::RegExp::new(&format!("^(?:{pattern})$"), "").expect("oracle regex");
        for word in words_up_to(&alphabet, 5) {
            assert_eq!(
                oracle.test(&word),
                dfa.contains(&word),
                "pattern {pattern}: disagreement on {word:?}"
            );
        }
    }
}

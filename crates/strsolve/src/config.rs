//! Solver resource limits.

/// Resource limits for one [`crate::Solver::solve`] call.
///
/// The solver is a bounded decision procedure: within the limits it is
/// refutation-sound (UNSAT answers are definite) and model-sound (SAT
/// models satisfy the formula); when a limit is hit it answers
/// [`crate::Outcome::Unknown`], which the DSE layer treats like an SMT
/// solver timeout (§5.3 of the paper).
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum candidate word length per variable, in characters.
    pub max_word_len: usize,
    /// Maximum candidate words enumerated per variable per search node.
    pub max_candidates_per_var: usize,
    /// Global budget of search-tree nodes across the whole query.
    pub max_nodes: u64,
    /// Maximum boolean (disjunction) branches explored.
    pub max_bool_branches: u64,
    /// Capacity of the per-solver compiled-DFA cache (`0` disables
    /// it). Purely an amortization knob: determinizing the same regex
    /// under the same alphabet always yields the same DFA, so this
    /// never affects verdicts (and is therefore *not* part of
    /// [`SolverConfig::fingerprint`]).
    pub dfa_cache_capacity: usize,
    /// Minimize (Hopcroft) constraint DFAs with at least this many
    /// states after every boolean operation and subset construction.
    /// `0` selects the seed's *eager* pipeline wholesale: no
    /// minimization, no canonical interning, and no lazy
    /// product-avoidance for pinned variables. Neither mode changes
    /// any accepted language — the candidate enumeration is a pure
    /// function of the languages involved — so this is an amortization
    /// knob, not part of the fingerprint.
    pub minimize_threshold: usize,
    /// Enable the length-abstraction pass: `[lo, hi]` accepted-length
    /// intervals from each constraint DFA are propagated through
    /// concat equations as integer arithmetic, failing doomed
    /// conjunctions before any word search and bounding per-variable
    /// candidate lengths. The pass only ever removes words that cannot
    /// appear in any solution, but by pruning early it can upgrade a
    /// budget-bound `Unknown` to a definite `Unsat` — so it *is* part
    /// of [`SolverConfig::fingerprint`].
    pub length_abstraction: bool,
    /// Allow the DSE layer to solve the flips of a trace as one
    /// [`crate::session::SolveSession`]: the shared path-constraint
    /// prefix is canonicalized once per trace, and validated verdicts
    /// (including CEGAR lemma chains) learned for one sibling flip may
    /// be replayed for structurally identical re-posings. Every reused
    /// artifact is an exact replay of what a fresh solve would produce,
    /// but verdicts recorded under sessions key differently (the
    /// session conjunct layout is part of the contract), so the flag
    /// *is* part of [`SolverConfig::fingerprint`] — cached verdicts
    /// never cross modes.
    pub incremental: bool,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            max_word_len: 24,
            max_candidates_per_var: 64,
            max_nodes: 100_000,
            max_bool_branches: 4_096,
            dfa_cache_capacity: 512,
            minimize_threshold: 8,
            length_abstraction: true,
            incremental: true,
        }
    }
}

impl SolverConfig {
    /// A stable fingerprint of the limits, used as part of the result
    /// cache key: a cached verdict (including `Unknown`, which encodes
    /// budget exhaustion) is only valid under identical limits.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        // Exhaustive destructuring: adding a field fails compilation
        // here, forcing a decision on whether it affects verdicts
        // (hash it) or is a pure amortization knob (bind it to `_`).
        let SolverConfig {
            max_word_len,
            max_candidates_per_var,
            max_nodes,
            max_bool_branches,
            dfa_cache_capacity: _,
            minimize_threshold: _,
            length_abstraction,
            incremental,
        } = self;
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        (
            max_word_len,
            max_candidates_per_var,
            max_nodes,
            max_bool_branches,
            length_abstraction,
            incremental,
        )
            .hash(&mut hasher);
        hasher.finish()
    }

    /// A small-budget configuration for latency-sensitive callers.
    pub fn fast() -> SolverConfig {
        SolverConfig {
            max_word_len: 12,
            max_candidates_per_var: 128,
            max_nodes: 10_000,
            max_bool_branches: 512,
            ..SolverConfig::default()
        }
    }

    /// A generous configuration for offline experiments.
    pub fn thorough() -> SolverConfig {
        SolverConfig {
            max_word_len: 48,
            max_candidates_per_var: 4_096,
            max_nodes: 1_000_000,
            max_bool_branches: 65_536,
            ..SolverConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_limits() {
        assert_eq!(
            SolverConfig::default().fingerprint(),
            SolverConfig::default().fingerprint()
        );
        assert_ne!(
            SolverConfig::default().fingerprint(),
            SolverConfig::fast().fingerprint()
        );
    }

    #[test]
    fn fingerprint_separates_incremental_mode() {
        let on = SolverConfig::default();
        let off = SolverConfig {
            incremental: false,
            ..SolverConfig::default()
        };
        assert_ne!(on.fingerprint(), off.fingerprint());
    }

    #[test]
    fn presets_are_ordered() {
        let fast = SolverConfig::fast();
        let default = SolverConfig::default();
        let thorough = SolverConfig::thorough();
        assert!(fast.max_nodes < default.max_nodes);
        assert!(default.max_nodes < thorough.max_nodes);
    }
}

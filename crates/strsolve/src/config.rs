//! Solver resource limits.

/// Resource limits for one [`crate::Solver::solve`] call.
///
/// The solver is a bounded decision procedure: within the limits it is
/// refutation-sound (UNSAT answers are definite) and model-sound (SAT
/// models satisfy the formula); when a limit is hit it answers
/// [`crate::Outcome::Unknown`], which the DSE layer treats like an SMT
/// solver timeout (§5.3 of the paper).
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum candidate word length per variable, in characters.
    pub max_word_len: usize,
    /// Maximum candidate words enumerated per variable per search node.
    pub max_candidates_per_var: usize,
    /// Global budget of search-tree nodes across the whole query.
    pub max_nodes: u64,
    /// Maximum boolean (disjunction) branches explored.
    pub max_bool_branches: u64,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            max_word_len: 24,
            max_candidates_per_var: 64,
            max_nodes: 100_000,
            max_bool_branches: 4_096,
        }
    }
}

impl SolverConfig {
    /// A small-budget configuration for latency-sensitive callers.
    pub fn fast() -> SolverConfig {
        SolverConfig {
            max_word_len: 12,
            max_candidates_per_var: 128,
            max_nodes: 10_000,
            max_bool_branches: 512,
        }
    }

    /// A generous configuration for offline experiments.
    pub fn thorough() -> SolverConfig {
        SolverConfig {
            max_word_len: 48,
            max_candidates_per_var: 4_096,
            max_nodes: 1_000_000,
            max_bool_branches: 65_536,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let fast = SolverConfig::fast();
        let default = SolverConfig::default();
        let thorough = SolverConfig::thorough();
        assert!(fast.max_nodes < default.max_nodes);
        assert!(default.max_nodes < thorough.max_nodes);
    }
}

//! The solving engine.
//!
//! A query runs in two layers:
//!
//! 1. **Boolean layer** — DFS over disjunctions of the NNF formula,
//!    producing conjunctions of atoms (with a branch budget);
//! 2. **String layer** — for each conjunction: union-find over variable
//!    aliases, per-variable DFA intersection of all regular constraints
//!    (including complements for negative ones), then a guided
//!    bounded search over word-equation assignments with dead-state
//!    pruning.
//!
//! Within its budgets the procedure is *refutation-sound* (`Unsat` is
//! definite: every variable's constraint DFA is exact, and enumeration
//! exhaustion is tracked) and *model-sound* (`Sat` models are checked
//! against every atom before being returned). Budget exhaustion yields
//! `Unknown`, which DSE treats like an SMT timeout (paper §5.3).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use automata::{Alphabet, CRegex, Dfa};

use crate::config::SolverConfig;
use crate::formula::{Atom, Formula};
use crate::model::Model;
use crate::stats::SolveStats;
use crate::vars::{BoolVar, StrVar, Term};

/// The verdict of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Satisfiable, with a witness assignment.
    Sat(Model),
    /// Definitely unsatisfiable (within exact reasoning).
    Unsat,
    /// A resource limit was hit before a verdict was reached.
    Unknown,
}

impl Outcome {
    /// True for `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat(_))
    }

    /// Extracts the model of a `Sat` outcome.
    pub fn model(self) -> Option<Model> {
        match self {
            Outcome::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// A short stable name for the verdict (`"sat"`, `"unsat"`,
    /// `"unknown"`) — the introspection hook used by verdict histograms
    /// and cross-layer comparisons, where two `Sat`s with different
    /// witnesses must still count as the same verdict.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Sat(_) => "sat",
            Outcome::Unsat => "unsat",
            Outcome::Unknown => "unknown",
        }
    }
}

/// A string-constraint solver with fixed resource limits.
///
/// # Examples
///
/// The §3.3 flavour of constraint — a word split into pieces with
/// regular constraints per piece:
///
/// ```
/// use strsolve::{Formula, Solver, Term, VarPool};
/// use automata::{CharSet, CRegex};
///
/// let mut pool = VarPool::new();
/// let w = pool.fresh_str("w");
/// let w1 = pool.fresh_str("w1");
/// let w2 = pool.fresh_str("w2");
/// let formula = Formula::and(vec![
///     Formula::eq_concat(w, vec![Term::Var(w1), Term::Var(w2)]),
///     Formula::in_re(w1, CRegex::plus(CRegex::set(CharSet::single('a')))),
///     Formula::in_re(w2, CRegex::lit("b")),
///     Formula::ne_lit(w, "ab"),
/// ]);
/// let (outcome, _stats) = Solver::default().solve(&formula);
/// let model = outcome.model().expect("satisfiable");
/// assert_eq!(model.get_str(w), Some("aab"));
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    config: SolverConfig,
    cache: Option<Arc<crate::cache::QueryCache>>,
    dfas: Arc<DfaCache>,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new(SolverConfig::default())
    }
}

impl Solver {
    /// Creates a solver with the given limits.
    pub fn new(config: SolverConfig) -> Solver {
        let dfas = Arc::new(DfaCache::new(config.dfa_cache_capacity));
        Solver {
            config,
            cache: None,
            dfas,
        }
    }

    /// Attaches a shared cross-query result cache: [`Solver::solve`]
    /// answers structurally repeated queries from it. See
    /// [`crate::cache`] for when this is sound (always, except inside
    /// lemma-learning loops, which must use [`Solver::solve_uncached`]).
    pub fn with_cache(mut self, cache: Arc<crate::cache::QueryCache>) -> Solver {
        self.cache = Some(cache);
        self
    }

    /// The attached result cache, if any.
    pub fn cache(&self) -> Option<&Arc<crate::cache::QueryCache>> {
        self.cache.as_ref()
    }

    /// Replaces the solver-private DFA cache with session-scoped
    /// [`DfaTables`]: compiled automata, interned alphabets and folded
    /// products are then shared with every other solver holding the
    /// same tables. The solver uses the shard matching its own
    /// `minimize_threshold`, so a hit is byte-identical to a fresh
    /// build (see [`DfaTables`]).
    pub fn with_dfa_tables(mut self, tables: &DfaTables) -> Solver {
        self.dfas = tables.for_threshold(self.config.minimize_threshold);
        self
    }

    /// The configured limits.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Decides a formula, returning the verdict and query statistics.
    /// Consults the attached result cache, when one is present.
    pub fn solve(&self, formula: &Formula) -> (Outcome, SolveStats) {
        match &self.cache {
            Some(cache) => cache.solve_through(formula, &self.config, |f| self.solve_uncached(f)),
            None => self.solve_uncached(formula),
        }
    }

    /// Decides a formula without touching the result cache — the
    /// correctness escape hatch for refinement loops whose learned
    /// lemmas make formulas context-dependent. (The compiled-DFA cache
    /// stays active: a DFA is a pure function of regex and alphabet,
    /// so reuse can never change a verdict.)
    pub fn solve_uncached(&self, formula: &Formula) -> (Outcome, SolveStats) {
        let start = Instant::now();
        let mut search = Search {
            config: &self.config,
            automata_cfg: automata::AutomataConfig {
                minimize_threshold: self.config.minimize_threshold,
            },
            dfas: &self.dfas,
            stats: SolveStats::default(),
            nodes_left: self.config.max_nodes,
            branches_left: self.config.max_bool_branches,
            word_dfa_memo: HashMap::new(),
            query_dfa_memo: HashMap::new(),
            sets_memo: HashMap::new(),
        };
        let mut atoms = Vec::new();
        let outcome = search.boolean_dfs(&[formula], &mut atoms);
        search.stats.duration = start.elapsed();
        (outcome, search.stats)
    }
}

/// Session-shareable DFA intern tables.
///
/// Every [`Solver`] owns a DFA cache (compiled DFAs, canonical
/// interning, alphabets, exact-word DFAs, intersection folds); by
/// default that cache is private to the solver. `DfaTables` lifts it to
/// session scope: hand one instance to every solver of a scheduler
/// session (via [`Solver::with_dfa_tables`]) and a regex determinized
/// for one job is free for every other job.
///
/// Stored automata depend on the automata pipeline configuration — with
/// minimization enabled entries are minimal and canonically numbered,
/// in eager mode (`minimize_threshold == 0`) they are the raw subset
/// construction — so the tables are internally sharded by
/// `minimize_threshold`: solvers with different pipelines never
/// exchange automata, and a hit is always byte-identical to what the
/// asking solver would have built itself. Sharing is therefore
/// verdict- and candidate-order-preserving, not just
/// language-preserving.
///
/// # Examples
///
/// ```
/// use strsolve::{DfaTables, Formula, Solver, VarPool};
/// use automata::{CharSet, CRegex};
///
/// let tables = DfaTables::new(256);
/// let a = Solver::default().with_dfa_tables(&tables);
/// let b = Solver::default().with_dfa_tables(&tables);
/// let mut pool = VarPool::new();
/// let v = pool.fresh_str("v");
/// let re = CRegex::plus(CRegex::set(CharSet::single('a')));
/// a.solve(&Formula::in_re(v, re.clone()));
/// let before = tables.hits();
/// b.solve(&Formula::in_re(v, re));
/// assert!(tables.hits() > before, "second solver reused the tables");
/// ```
#[derive(Debug, Clone)]
pub struct DfaTables {
    capacity: usize,
    shards: Arc<parking_lot::Mutex<HashMap<usize, Arc<DfaCache>>>>,
}

impl DfaTables {
    /// Creates tables whose per-pipeline shards each hold at most
    /// `capacity` entries per index (`0` disables storage, turning
    /// every lookup into a miss).
    pub fn new(capacity: usize) -> DfaTables {
        DfaTables {
            capacity,
            shards: Arc::new(parking_lot::Mutex::new(HashMap::new())),
        }
    }

    /// The per-shard capacity the tables were created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The cache shard for a `minimize_threshold` pipeline, created on
    /// first use.
    pub(crate) fn for_threshold(&self, threshold: usize) -> Arc<DfaCache> {
        Arc::clone(
            self.shards
                .lock()
                .entry(threshold)
                .or_insert_with(|| Arc::new(DfaCache::new(self.capacity))),
        )
    }

    /// Total lookups served from the tables, across all shards.
    pub fn hits(&self) -> u64 {
        self.shards.lock().values().map(|c| c.hit_count()).sum()
    }

    /// Total lookups that built a fresh automaton, across all shards.
    pub fn misses(&self) -> u64 {
        self.shards.lock().values().map(|c| c.miss_count()).sum()
    }

    /// Hit rate in `[0, 1]` (`0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Resident compiled-DFA entries, across all shards.
    pub fn len(&self) -> usize {
        self.shards.lock().values().map(|c| c.entry_count()).sum()
    }

    /// True when no compiled DFA is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A cache of compiled (and optionally complemented) DFAs, keyed by
/// structural `(regex, alphabet)` identity. Determinization is the
/// solver's single most repeated expense: the same membership
/// constraint is re-lowered for every boolean branch, every CEGAR
/// iteration, and every query that mentions the regex. Sharing the
/// compiled automaton is free of behavioral risk — the construction is
/// deterministic, so a hit is byte-identical to a rebuild.
///
/// When minimization is enabled, stored DFAs are *minimal and
/// canonically numbered*, and a second index keyed by the canonical
/// automaton structure interns them: structurally different but
/// language-equal regexes (under the same alphabet) resolve to one
/// shared entry instead of two duplicate automata.
#[derive(Debug)]
pub(crate) struct DfaCache {
    /// Lookups served from a shard (entries/words/products).
    hits: std::sync::atomic::AtomicU64,
    /// Lookups that fell through to a fresh construction.
    misses: std::sync::atomic::AtomicU64,
    entries: Shard<DfaKey, Arc<Dfa>>,
    /// Canonical (minimal, BFS-numbered) automaton → interned entry.
    canonical: Shard<CanonicalKey, Arc<Dfa>>,
    /// Interned minterm alphabets, keyed by the normalized problem
    /// (sorted deduped sets + literal characters). Building the
    /// partition is pure per-conjunction overhead, and interning also
    /// makes repeated conjunctions share one `Arc`.
    alphabets: Shard<Vec<automata::CharSet>, Arc<Alphabet>>,
    /// Exact-word DFAs for equality/disequality literals, keyed by
    /// word + alphabet pointer (the alphabet `Arc` is retained in the
    /// value, so a resident key's address cannot be recycled).
    words: Shard<(String, usize, bool), WordEntry>,
    /// Intersection folds, keyed by the sorted pointer set of their
    /// factors (each factor `Arc` retained in the value — same ABA
    /// argument). A conjunction repeated across boolean branches,
    /// CEGAR iterations, or queries reuses the folded product instead
    /// of re-multiplying the factors.
    products: Shard<Vec<usize>, ProductEntry>,
}

/// One locked LRU index of the [`DfaCache`].
type Shard<K, V> = parking_lot::Mutex<crate::cache::Lru<K, V>>;
/// A cached exact-word DFA plus the alphabet `Arc` that keeps its
/// pointer key valid.
type WordEntry = (Arc<Dfa>, Arc<Alphabet>);
/// A cached fold product plus its factor keep-alives.
type ProductEntry = (Arc<Dfa>, Vec<Arc<Dfa>>);

/// What a cached DFA was compiled from. Alphabets compare by content,
/// so structurally equal alphabets from different conjunctions share
/// entries — and a stale pointer can never alias a different partition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct DfaKey {
    re: Arc<CRegex>,
    alphabet: Arc<Alphabet>,
    complemented: bool,
}

/// Language identity of a minimized, canonically numbered DFA: the
/// alphabet (content compare) plus the canonical transition structure.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CanonicalKey {
    alphabet: Arc<Alphabet>,
    structure: (u32, Vec<u32>, Vec<bool>),
}

impl DfaCache {
    fn new(capacity: usize) -> DfaCache {
        DfaCache {
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
            entries: parking_lot::Mutex::new(crate::cache::Lru::new(capacity)),
            canonical: parking_lot::Mutex::new(crate::cache::Lru::new(capacity)),
            alphabets: parking_lot::Mutex::new(crate::cache::Lru::new(capacity)),
            words: parking_lot::Mutex::new(crate::cache::Lru::new(capacity)),
            products: parking_lot::Mutex::new(crate::cache::Lru::new(capacity)),
        }
    }

    /// Records a shard lookup on both the cache-level counters and the
    /// per-query stats.
    fn note(&self, stats: &mut SolveStats, hit: bool) {
        use std::sync::atomic::Ordering;
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            stats.dfa_cache_hits += 1;
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total lookups served from the tables.
    pub(crate) fn hit_count(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total lookups that built fresh.
    pub(crate) fn miss_count(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Resident compiled-DFA entries (the `entries` shard).
    pub(crate) fn entry_count(&self) -> usize {
        self.entries.lock().len()
    }

    /// The exact-word DFA (optionally complemented) of a literal under
    /// an interned alphabet.
    fn word_dfa(
        &self,
        word: &str,
        alphabet: &Arc<Alphabet>,
        complemented: bool,
        stats: &mut SolveStats,
    ) -> Arc<Dfa> {
        let key = (
            word.to_string(),
            Arc::as_ptr(alphabet) as usize,
            complemented,
        );
        if let Some((dfa, _)) = self.words.lock().get(&key) {
            self.note(stats, true);
            return Arc::clone(dfa);
        }
        self.note(stats, false);
        stats.dfas_built += 1;
        let mut dfa = Dfa::from_word(word, alphabet);
        if complemented {
            dfa = dfa.complement();
        }
        let dfa = Arc::new(dfa);
        self.words
            .lock()
            .insert(key, (Arc::clone(&dfa), Arc::clone(alphabet)));
        dfa
    }

    /// The intersection of `factors` (at least two, pre-sorted
    /// smallest-first by the caller), folded pairwise with thresholded
    /// minimization and cached by factor identity.
    fn product(
        &self,
        factors: Vec<Arc<Dfa>>,
        config: &automata::AutomataConfig,
        stats: &mut SolveStats,
    ) -> Arc<Dfa> {
        let mut key: Vec<usize> = factors.iter().map(|f| Arc::as_ptr(f) as usize).collect();
        key.sort_unstable();
        key.dedup(); // intersection is idempotent
        if let Some((dfa, _)) = self.products.lock().get(&key) {
            self.note(stats, true);
            return Arc::clone(dfa);
        }
        self.note(stats, false);
        let mut iter = factors.iter();
        let mut acc: Dfa = (**iter.next().expect("at least two factors")).clone();
        for factor in iter {
            let mut metrics = automata::BuildMetrics::default();
            acc = acc.intersect(factor).reduced(config, &mut metrics);
            stats.dfa_states_built += metrics.states_built;
            stats.states_after_minimize += metrics.states_after_minimize;
        }
        let product = Arc::new(acc);
        self.products
            .lock()
            .insert(key, (Arc::clone(&product), factors));
        product
    }

    /// The interned minterm alphabet of a conjunction's character sets
    /// and literal characters. The partition is order- and
    /// duplicate-independent, so the key is normalized (sorted,
    /// deduped) before lookup; a miss builds via
    /// [`Alphabet::from_sets`] on the normalized sets, which yields
    /// the same classes as the raw collection would.
    fn alphabet_for(&self, mut sets: Vec<automata::CharSet>, literal_chars: &str) -> Arc<Alphabet> {
        for c in literal_chars.chars() {
            sets.push(automata::CharSet::single(c));
        }
        sets.sort_unstable();
        sets.dedup();
        if let Some(alphabet) = self.alphabets.lock().get(&sets) {
            return Arc::clone(alphabet);
        }
        let alphabet = Arc::new(Alphabet::from_sets(&sets));
        self.alphabets.lock().insert(sets, Arc::clone(&alphabet));
        alphabet
    }

    /// The DFA of `re` (complemented when asked) under `alphabet`.
    /// `stats.dfas_built` counts only actual constructions.
    fn get_or_build(
        &self,
        re: &Arc<CRegex>,
        alphabet: &Arc<Alphabet>,
        complemented: bool,
        config: &automata::AutomataConfig,
        stats: &mut SolveStats,
    ) -> Arc<Dfa> {
        let key = DfaKey {
            re: Arc::clone(re),
            alphabet: Arc::clone(alphabet),
            complemented,
        };
        if let Some(dfa) = self.entries.lock().get(&key) {
            self.note(stats, true);
            return Arc::clone(dfa);
        }
        self.note(stats, false);
        stats.dfas_built += 1;
        let mut metrics = automata::BuildMetrics::default();
        let mut dfa = Dfa::from_cregex_with(re, alphabet, config, &mut metrics);
        if complemented {
            dfa = dfa.complement().reduced(config, &mut metrics);
        }
        let dfa = if config.minimize_threshold > 0 {
            // Cache entries must be canonical for the language-level
            // interning below to fire. A result at or above the
            // threshold is already minimal and canonically numbered
            // (the last `reduced()` produced it); only the small
            // automata the threshold skipped need a pass here. The
            // metric reports *retained* states, so a re-minimized
            // top-level automaton replaces its thresholded count.
            let minimal = if dfa.state_count() < config.minimize_threshold {
                let minimal = Arc::new(dfa.minimized());
                metrics.states_after_minimize = metrics.states_after_minimize
                    - dfa.state_count() as u64
                    + minimal.state_count() as u64;
                minimal
            } else {
                Arc::new(dfa)
            };
            let canon_key = CanonicalKey {
                alphabet: Arc::clone(alphabet),
                structure: minimal.canonical_key(),
            };
            let mut canonical = self.canonical.lock();
            match canonical.get(&canon_key) {
                Some(shared) => Arc::clone(shared),
                None => {
                    canonical.insert(canon_key, Arc::clone(&minimal));
                    minimal
                }
            }
        } else {
            Arc::new(dfa)
        };
        stats.dfa_states_built += metrics.states_built;
        stats.states_after_minimize += metrics.states_after_minimize;
        self.entries.lock().insert(key, Arc::clone(&dfa));
        dfa
    }
}

struct Search<'a> {
    config: &'a SolverConfig,
    automata_cfg: automata::AutomataConfig,
    dfas: &'a DfaCache,
    stats: SolveStats,
    nodes_left: u64,
    branches_left: u64,
    /// Per-conjunction memo of pinned-word guide DFAs (cleared when a
    /// new conjunction — and with it a new alphabet — starts).
    word_dfa_memo: HashMap<String, Arc<Dfa>>,
    /// Per-query memo in front of the shared [`DfaCache`], keyed by
    /// *pointer* identity of the regex and (interned) alphabet: the
    /// same `Arc`s recur across the conjunctions of one query, and a
    /// pointer hash skips the deep structural hash a [`DfaKey`] lookup
    /// pays. The value keeps both `Arc`s alive, so a resident key's
    /// addresses can never be recycled by another allocation.
    query_dfa_memo: QueryDfaMemo,
    /// Per-query memo of each regex's collected `CharSet`s (alphabet
    /// construction input), keyed by `Arc` pointer with the `Arc` kept
    /// alive in the value.
    sets_memo: HashMap<usize, (Arc<CRegex>, Vec<automata::CharSet>)>,
}

type QueryDfaMemo = HashMap<(usize, usize, bool), (Arc<Dfa>, Arc<CRegex>, Arc<Alphabet>)>;

impl Search<'_> {
    /// The constraint DFA of `re` under `alphabet`, through the
    /// per-query pointer memo and then the shared structural cache.
    fn constraint_dfa(
        &mut self,
        re: &Arc<CRegex>,
        alphabet: &Arc<Alphabet>,
        complemented: bool,
    ) -> Arc<Dfa> {
        let key = (
            Arc::as_ptr(re) as usize,
            Arc::as_ptr(alphabet) as usize,
            complemented,
        );
        if let Some((dfa, _, _)) = self.query_dfa_memo.get(&key) {
            return Arc::clone(dfa);
        }
        let dfa = self.dfas.get_or_build(
            re,
            alphabet,
            complemented,
            &self.automata_cfg,
            &mut self.stats,
        );
        self.query_dfa_memo.insert(
            key,
            (Arc::clone(&dfa), Arc::clone(re), Arc::clone(alphabet)),
        );
        dfa
    }

    /// The exact-word DFA of an equality/disequality literal, through
    /// the shared cache (the same pinned literals recur in every
    /// conjunction, every CEGAR iteration, and across queries). In
    /// eager mode alphabets are built per conjunction, so the
    /// pointer-keyed cache could never hit — build directly, as the
    /// seed did.
    fn exact_word_dfa(
        &mut self,
        word: &str,
        alphabet: &Arc<Alphabet>,
        complemented: bool,
    ) -> Arc<Dfa> {
        if self.config.minimize_threshold == 0 {
            self.stats.dfas_built += 1;
            let mut dfa = Dfa::from_word(word, alphabet);
            if complemented {
                dfa = dfa.complement();
            }
            return Arc::new(dfa);
        }
        self.dfas
            .word_dfa(word, alphabet, complemented, &mut self.stats)
    }

    /// Explores disjunctions; `pending` are formulas still to flatten,
    /// `atoms` the conjunction accumulated so far.
    fn boolean_dfs(&mut self, pending: &[&Formula], atoms: &mut Vec<Atom>) -> Outcome {
        // Flatten conjunctions and atoms until we hit a disjunction.
        let mut local: Vec<&Formula> = pending.to_vec();
        let mut pushed = 0usize;
        let result = loop {
            match local.pop() {
                None => break self.solve_conjunction(atoms),
                Some(Formula::Atom(a)) => {
                    if matches!(a, Atom::False) {
                        break Outcome::Unsat;
                    }
                    if !matches!(a, Atom::True) {
                        atoms.push(a.clone());
                        pushed += 1;
                    }
                }
                Some(Formula::And(items)) => {
                    for item in items {
                        local.push(item);
                    }
                }
                Some(Formula::Or(branches)) => {
                    let mut any_unknown = false;
                    let mut branch_result = Outcome::Unsat;
                    for branch in branches {
                        if self.branches_left == 0 {
                            any_unknown = true;
                            break;
                        }
                        self.branches_left -= 1;
                        self.stats.bool_branches += 1;
                        let mut sub_pending = local.clone();
                        sub_pending.push(branch);
                        let before = atoms.len();
                        let r = self.boolean_dfs(&sub_pending, atoms);
                        atoms.truncate(before);
                        match r {
                            Outcome::Sat(m) => {
                                branch_result = Outcome::Sat(m);
                                break;
                            }
                            Outcome::Unknown => any_unknown = true,
                            Outcome::Unsat => {}
                        }
                    }
                    if !branch_result.is_sat() && any_unknown {
                        branch_result = Outcome::Unknown;
                    }
                    break branch_result;
                }
            }
        };
        atoms.truncate(atoms.len() - pushed.min(atoms.len()));
        result
    }

    /// Decides a conjunction of atoms.
    fn solve_conjunction(&mut self, atoms: &[Atom]) -> Outcome {
        // --- Boolean flags ---------------------------------------------
        let mut bools: HashMap<BoolVar, bool> = HashMap::new();
        for atom in atoms {
            if let Atom::Bool(b, v) = atom {
                match bools.insert(*b, *v) {
                    Some(prev) if prev != *v => return Outcome::Unsat,
                    _ => {}
                }
            }
        }

        // --- Union-find over aliases ------------------------------------
        let mut uf = UnionFind::default();
        for atom in atoms {
            match atom {
                Atom::EqVar(a, b) => uf.union(*a, *b),
                // An equation `v = [u]` with a single variable part is an
                // alias: merging lets the DFAs intersect directly.
                Atom::EqConcat(v, parts)
                    if parts.len() == 1 && matches!(parts[0], Term::Var(_)) =>
                {
                    if let Term::Var(u) = &parts[0] {
                        uf.union(*v, *u);
                    }
                }
                Atom::NeVar(a, b) => {
                    uf.touch(*a);
                    uf.touch(*b);
                }
                Atom::InRe(v, _) | Atom::NotInRe(v, _) | Atom::EqLit(v, _) | Atom::NeLit(v, _) => {
                    uf.touch(*v)
                }
                Atom::EqConcat(v, parts) => {
                    uf.touch(*v);
                    for p in parts {
                        if let Term::Var(u) = p {
                            uf.touch(*u);
                        }
                    }
                }
                _ => {}
            }
        }

        // --- Congruence closure over word equations -----------------------
        // Two variables defined by the *same* concatenation are equal:
        // `x = t₁ ++ … ++ tₙ ∧ y = t₁ ++ … ++ tₙ ⟹ x = y`. Merging
        // them makes their regular constraints intersect in one root
        // DFA, so conflicts prune candidate enumeration instead of
        // surfacing after every equation completes. (The Algorithm 2
        // models produce exactly this shape: the wrapped word `⟨input⟩`
        // is re-derived for every regex applied to the same subject.)
        let eq_atoms: Vec<(&StrVar, &Vec<Term>)> = atoms
            .iter()
            .filter_map(|atom| match atom {
                Atom::EqConcat(v, parts) => Some((v, parts)),
                _ => None,
            })
            .collect();
        // With fewer than two equations there is nothing to merge, and
        // most conjunctions have none — skip the fixpoint entirely.
        while eq_atoms.len() >= 2 {
            let mut rhs_owner: HashMap<Vec<Part>, StrVar> = HashMap::new();
            let mut changed = false;
            for &(v, parts) in &eq_atoms {
                let key: Vec<Part> = parts
                    .iter()
                    .map(|t| match t {
                        Term::Var(u) => Part::Var(uf.find(*u)),
                        Term::Lit(s) => Part::Lit(s.clone()),
                    })
                    .collect();
                let root = uf.find(*v);
                match rhs_owner.get(&key) {
                    Some(&owner) if uf.find(owner) != root => {
                        uf.union(owner, root);
                        changed = true;
                    }
                    Some(_) => {}
                    None => {
                        rhs_owner.insert(key, root);
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // --- Per-root constraint collection ------------------------------
        #[derive(Default)]
        struct VarCons {
            pos: Vec<Arc<CRegex>>,
            neg: Vec<Arc<CRegex>>,
            eq: Option<String>,
            ne: Vec<String>,
        }
        let mut cons: HashMap<StrVar, VarCons> = HashMap::new();
        let mut equations: Vec<(StrVar, Vec<Part>)> = Vec::new();
        let mut ne_pairs: Vec<(StrVar, StrVar)> = Vec::new();
        for atom in atoms {
            match atom {
                Atom::InRe(v, re) => {
                    cons.entry(uf.find(*v))
                        .or_default()
                        .pos
                        .push(Arc::clone(re));
                }
                Atom::NotInRe(v, re) => {
                    cons.entry(uf.find(*v))
                        .or_default()
                        .neg
                        .push(Arc::clone(re));
                }
                Atom::EqLit(v, s) => {
                    let entry = cons.entry(uf.find(*v)).or_default();
                    match &entry.eq {
                        Some(prev) if prev != s => return Outcome::Unsat,
                        _ => entry.eq = Some(s.clone()),
                    }
                }
                Atom::NeLit(v, s) => {
                    cons.entry(uf.find(*v)).or_default().ne.push(s.clone());
                }
                Atom::NeVar(a, b) => {
                    let (ra, rb) = (uf.find(*a), uf.find(*b));
                    if ra == rb {
                        // x ≠ x is unsatisfiable.
                        return Outcome::Unsat;
                    }
                    ne_pairs.push((ra, rb));
                }
                Atom::EqConcat(v, parts) => {
                    let lhs = uf.find(*v);
                    let parts: Vec<Part> = parts
                        .iter()
                        .map(|t| match t {
                            Term::Var(u) => Part::Var(uf.find(*u)),
                            Term::Lit(s) => Part::Lit(s.clone()),
                        })
                        .collect();
                    // Single-variable equations were merged as aliases;
                    // after union-find they degenerate to `v = [v]`.
                    if parts.len() == 1 && parts[0] == Part::Var(lhs) {
                        continue;
                    }
                    let eq = (lhs, parts);
                    if !equations.contains(&eq) {
                        equations.push(eq);
                    }
                }
                _ => {}
            }
        }
        // Quick inconsistency: eq vs ne on the same root.
        for info in cons.values() {
            if let Some(eq) = &info.eq {
                if info.ne.iter().any(|ne| ne == eq) {
                    return Outcome::Unsat;
                }
            }
        }

        // --- Occurs check (cyclic equations are outside the fragment) ----
        if has_cycle(&equations) {
            return Outcome::Unknown;
        }
        let equations = topo_sort(equations);
        let equations = flatten_equations(equations);

        // --- Alphabet -----------------------------------------------------
        let mut sets = Vec::new();
        let mut literal_chars = String::new();
        for info in cons.values() {
            for re in info.pos.iter().chain(info.neg.iter()) {
                // Memoized per query: walking the regex clones every
                // `CharSet`, and the same `Arc`s recur in every
                // conjunction of a query.
                let key = Arc::as_ptr(re) as usize;
                match self.sets_memo.get(&key) {
                    Some((_, cached)) => sets.extend(cached.iter().cloned()),
                    None => {
                        let mut fresh = Vec::new();
                        re.collect_sets(&mut fresh);
                        sets.extend(fresh.iter().cloned());
                        self.sets_memo.insert(key, (Arc::clone(re), fresh));
                    }
                }
            }
            if let Some(eq) = &info.eq {
                literal_chars.push_str(eq);
            }
            for ne in &info.ne {
                literal_chars.push_str(ne);
            }
        }
        for (_, parts) in &equations {
            for p in parts {
                if let Part::Lit(s) = p {
                    literal_chars.push_str(s);
                }
            }
        }
        // The lazy pipeline normalizes (sorts + dedups) the sets and
        // interns the partition through the shared cache; eager mode
        // (`minimize_threshold == 0`) keeps the seed's construction
        // verbatim.
        let alphabet: Arc<Alphabet> = if self.config.minimize_threshold > 0 {
            self.dfas.alphabet_for(sets, &literal_chars)
        } else {
            Alphabet::for_problem(&sets, &[&literal_chars])
        };

        // --- Per-root DFAs -----------------------------------------------
        // The universal DFA is only needed for unconstrained roots;
        // build it lazily (most roots carry at least one constraint).
        let mut universal: Option<Arc<Dfa>> = None;
        let mut dfas: HashMap<StrVar, Arc<Dfa>> = HashMap::new();
        let mut roots: Vec<StrVar> = cons.keys().copied().collect();
        for (lhs, parts) in &equations {
            roots.push(*lhs);
            for p in parts {
                if let Part::Var(v) = p {
                    roots.push(*v);
                }
            }
        }
        for &(a, b) in &ne_pairs {
            roots.push(a);
            roots.push(b);
        }
        roots.sort_unstable();
        roots.dedup();
        // `minimize_threshold == 0` selects the seed's eager pipeline
        // (used as the bench baseline); otherwise products that can be
        // decided without materialization are skipped entirely.
        let lazy = self.config.minimize_threshold > 0;
        for &root in &roots {
            let dfa: Arc<Dfa> = match cons.get(&root) {
                // Pinned root, lazy pipeline: the language is `{eq}`
                // or `∅`, so *run the word* through each constraint
                // instead of building any product — and never build
                // the complement DFAs of negative constraints at all.
                // (`ne ≠ eq` was already checked above.) The verdict
                // is identical to the eager fold's: the fold's
                // language is exactly `{eq}` when every membership
                // holds and empty otherwise.
                Some(info) if lazy && info.eq.is_some() => {
                    let eq = info.eq.as_deref().expect("checked is_some");
                    for re in &info.pos {
                        if !self.constraint_dfa(re, &alphabet, false).contains(eq) {
                            return Outcome::Unsat;
                        }
                    }
                    for re in &info.neg {
                        if self.constraint_dfa(re, &alphabet, false).contains(eq) {
                            return Outcome::Unsat;
                        }
                    }
                    self.exact_word_dfa(eq, &alphabet, false)
                }
                // Otherwise collect every constraint automaton and
                // fold the intersection smallest-first: the product
                // worklist only materializes reachable pairs, so a
                // small accumulator bounds every intermediate, and the
                // thresholded minimization after each product keeps it
                // small.
                info => {
                    let mut factors: Vec<Arc<Dfa>> = Vec::new();
                    if let Some(info) = info {
                        for re in &info.pos {
                            factors.push(self.constraint_dfa(re, &alphabet, false));
                        }
                        for re in &info.neg {
                            factors.push(self.constraint_dfa(re, &alphabet, true));
                        }
                        if let Some(eq) = &info.eq {
                            factors.push(self.exact_word_dfa(eq, &alphabet, false));
                        }
                        for ne in &info.ne {
                            factors.push(self.exact_word_dfa(ne, &alphabet, true));
                        }
                    }
                    factors.sort_by_key(|d| d.state_count());
                    match factors.len() {
                        0 => match &universal {
                            Some(u) => Arc::clone(u),
                            None => {
                                let u = Arc::new(Dfa::universal(&alphabet));
                                universal = Some(Arc::clone(&u));
                                u
                            }
                        },
                        1 => factors.into_iter().next().expect("one factor"),
                        _ => {
                            // Per-conjunction fold products are built
                            // far more often than cache-resident DFAs,
                            // so only run Hopcroft on them when they
                            // get genuinely large — small intermediates
                            // cost more to minimize than they save.
                            let fold_cfg = automata::AutomataConfig {
                                minimize_threshold: match self.automata_cfg.minimize_threshold {
                                    0 => 0,
                                    t => t.max(64),
                                },
                            };
                            self.dfas.product(factors, &fold_cfg, &mut self.stats)
                        }
                    }
                }
            };
            if dfa.is_empty() {
                return Outcome::Unsat;
            }
            dfas.insert(root, dfa);
        }

        // --- Length abstraction -------------------------------------------
        // Propagate `[lo, hi]` accepted-length intervals through the
        // concat equations as integer arithmetic. An empty interval
        // refutes the conjunction before any word search; the surviving
        // intervals bound per-variable candidate lengths below.
        let intervals = if self.config.length_abstraction {
            match length_intervals(&dfas, &equations) {
                Ok(intervals) => intervals,
                Err(()) => {
                    self.stats.length_prunes += 1;
                    return Outcome::Unsat;
                }
            }
        } else {
            HashMap::new()
        };

        // --- Assignment search --------------------------------------------
        let mut assignment: HashMap<StrVar, String> = HashMap::new();
        // Pin equality literals immediately.
        for (&root, info) in &cons {
            if let Some(eq) = &info.eq {
                assignment.insert(root, eq.clone());
            }
        }

        // Free variables in first-occurrence order across equations,
        // stably sorted so the most constrained languages enumerate
        // first: finite, then infinite-nonempty, then near-universal
        // (the latter are best derived by propagation/unit slicing).
        let lhs_set: std::collections::HashSet<StrVar> =
            equations.iter().map(|(l, _)| *l).collect();
        let mut order: Vec<StrVar> = Vec::new();
        for (_, parts) in &equations {
            for p in parts {
                if let Part::Var(v) = p {
                    if !lhs_set.contains(v) && !assignment.contains_key(v) && !order.contains(v) {
                        order.push(*v);
                    }
                }
            }
        }
        // Nesting depth: equations whose lhs feeds other equations are
        // "inner"; their free variables should be assigned first so the
        // outer words become derivable by propagation/unit slicing.
        let mut eq_depth: HashMap<StrVar, u32> = HashMap::new();
        for _ in 0..equations.len() {
            let mut changed = false;
            for (lhs, _) in &equations {
                let depth = equations
                    .iter()
                    .filter(|(_, parts)| {
                        parts.iter().any(|p| matches!(p, Part::Var(v) if v == lhs))
                    })
                    .map(|(outer, _)| eq_depth.get(outer).copied().unwrap_or(0) + 1)
                    .max()
                    .unwrap_or(0);
                if eq_depth.get(lhs) != Some(&depth) {
                    eq_depth.insert(*lhs, depth);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let var_depth = |v: &StrVar| -> u32 {
            equations
                .iter()
                .filter(|(_, parts)| parts.iter().any(|p| matches!(p, Part::Var(u) if u == v)))
                .map(|(lhs, _)| eq_depth.get(lhs).copied().unwrap_or(0))
                .max()
                .unwrap_or(0)
        };
        order.sort_by_key(|v| {
            let dfa = &dfas[v];
            let class = if !dfa.is_infinite() {
                0u8
            } else if !dfa.accepts_empty() {
                1
            } else {
                2
            };
            (class, std::cmp::Reverse(var_depth(v)))
        });

        let mut ctx = StringCtx {
            alphabet,
            dfas,
            equations,
            order,
            bools,
            roots,
            uf,
            ne_pairs,
            intervals,
        };

        // Membership-only variables (not in any equation, not pinned)
        // get their shortest accepted word directly.
        for &root in &ctx.roots {
            let in_equations = ctx.equations.iter().any(|(l, parts)| {
                *l == root
                    || parts
                        .iter()
                        .any(|p| matches!(p, Part::Var(v) if *v == root))
            });
            if !in_equations && !assignment.contains_key(&root) {
                let word = ctx.dfas[&root]
                    .shortest_word()
                    .expect("nonempty language checked above");
                assignment.insert(root, word);
            }
        }

        // The pinned-lhs guide DFAs of the word-equation search are
        // word-valued and alphabet-specific; a pinned value stays
        // pinned for a whole search subtree, so memoize the built DFAs
        // for the duration of this conjunction (the alphabet is fixed
        // here, and the memo is thread-local to the search — no lock).
        self.word_dfa_memo.clear();
        match self.assign(&mut ctx, &mut assignment) {
            StepResult::Sat => {
                let mut model = Model::new();
                for (&b, &v) in &ctx.bools {
                    model.set_bool(b, v);
                }
                // Map every variable through its root.
                let all_vars = ctx.uf.all_vars();
                for v in all_vars {
                    let root = ctx.uf.find(v);
                    let value = assignment.get(&root).cloned().unwrap_or_default();
                    model.set_str(v, value);
                }
                Outcome::Sat(model)
            }
            StepResult::Exhausted => Outcome::Unsat,
            StepResult::Truncated => Outcome::Unknown,
        }
    }

    /// Depth-first assignment of free variables.
    fn assign(
        &mut self,
        ctx: &mut StringCtx,
        assignment: &mut HashMap<StrVar, String>,
    ) -> StepResult {
        if self.nodes_left == 0 {
            self.stats.truncated = true;
            return StepResult::Truncated;
        }
        self.nodes_left -= 1;
        self.stats.nodes += 1;

        // Propagate equations to fixpoint; collect newly assigned lhs so
        // we can undo on backtrack. Variables whose enumeration yields
        // exactly one candidate are forced, not decision points: they
        // are assigned in place (like unit slices) and the loop selects
        // again, so a search node is only ever spent on a real branch.
        let mut trail: Vec<StrVar> = Vec::new();
        let mut units: Vec<StrVar> = Vec::new();
        loop {
            if propagate(ctx, assignment, &mut trail).is_err() {
                retract(assignment, &trail, &units);
                return StepResult::Exhausted;
            }

            // Pick the next unassigned free variable dynamically,
            // preferring the strongest available guide (fail-first): a
            // variable whose equation lhs is already a concrete word
            // enumerates a handful of slices, while an unguided
            // near-universal variable floods the budget.
            let Some(var) = select_var(ctx, assignment) else {
                // Everything assigned: final verification.
                if final_check(ctx, assignment) {
                    return StepResult::Sat;
                }
                retract(assignment, &trail, &units);
                return StepResult::Exhausted;
            };
            let (mut candidates, truncated) = self.generate_candidates(ctx, assignment, var);
            if truncated {
                self.stats.truncated = true;
            }
            if candidates.len() == 1 && !truncated {
                // A complete enumeration with a single word: committing
                // it is the only way forward, so no branch is opened.
                assignment.insert(var, candidates.pop().expect("len checked"));
                units.push(var);
                continue;
            }
            let mut any_truncated = truncated;
            for cand in candidates {
                assignment.insert(var, cand);
                match self.assign(ctx, assignment) {
                    StepResult::Sat => return StepResult::Sat,
                    StepResult::Truncated => any_truncated = true,
                    StepResult::Exhausted => {}
                }
                assignment.remove(&var);
            }
            retract(assignment, &trail, &units);
            return if any_truncated {
                StepResult::Truncated
            } else {
                StepResult::Exhausted
            };
        }
    }

    /// Enumerates candidate words for `var`, guided by the residual
    /// states of the equations it participates in.
    fn generate_candidates(
        &mut self,
        ctx: &StringCtx,
        assignment: &HashMap<StrVar, String>,
        var: StrVar,
    ) -> (Vec<String>, bool) {
        let var_dfa = &ctx.dfas[&var];
        /// A literal run of the forced tail, or a repeated occurrence
        /// of the searched variable (which takes the candidate's own
        /// value once one is proposed).
        enum TailPiece {
            Str(String),
            Own,
        }
        /// One residual guide: the lhs DFA after running the assigned
        /// prefix, plus — when every part after the first occurrence of
        /// the searched variable is concrete or the variable itself —
        /// the forced tail. A candidate that cannot run that tail to
        /// acceptance would complete the equation and be rejected by
        /// the very next `propagate`, so it is filtered here instead of
        /// burning a search node (the surviving candidates and their
        /// order are unchanged, so the found model is identical).
        struct Guide {
            dfa: Arc<Dfa>,
            state: u32,
            tail: Option<Vec<TailPiece>>,
        }
        // Guides are collected for every equation where all parts
        // before the first occurrence of `var` are assigned. When the
        // lhs value is already pinned, the guide is the exact-word DFA
        // of that value — the strongest possible residual constraint.
        let mut guides: Vec<Guide> = Vec::new();
        'eqs: for (lhs, parts) in &ctx.equations {
            let lhs_dfa: Arc<Dfa> = match assignment.get(lhs) {
                // Class-granularity word DFA: the pinned value may
                // contain characters that are not singleton classes.
                // Memoized per conjunction — the same pinned value is
                // requested at every node of the subtree below the pin.
                Some(value) => match self.word_dfa_memo.get(value) {
                    Some(dfa) => Arc::clone(dfa),
                    None => {
                        self.stats.dfas_built += 1;
                        let dfa = Arc::new(Dfa::from_word_classes(value, &ctx.alphabet));
                        self.word_dfa_memo.insert(value.clone(), Arc::clone(&dfa));
                        dfa
                    }
                },
                None => Arc::clone(&ctx.dfas[lhs]),
            };
            let mut state = lhs_dfa.start_state();
            let mut first_at = None;
            for (i, p) in parts.iter().enumerate() {
                match p {
                    Part::Var(v) if *v == var => {
                        first_at = Some(i);
                        break;
                    }
                    Part::Var(v) => match assignment.get(v) {
                        Some(w) => state = lhs_dfa.run(state, w),
                        None => continue 'eqs,
                    },
                    Part::Lit(s) => state = lhs_dfa.run(state, s),
                }
            }
            let Some(first_at) = first_at else { continue };
            // The forced tail: known iff every part after the first
            // occurrence is a literal, an assigned variable, or `var`
            // itself (a repeated occurrence echoes the candidate).
            let mut tail = Some(Vec::new());
            for p in &parts[first_at + 1..] {
                let piece = match p {
                    Part::Var(v) if *v == var => Some(TailPiece::Own),
                    Part::Var(v) => assignment.get(v).map(|w| TailPiece::Str(w.clone())),
                    Part::Lit(s) => Some(TailPiece::Str(s.clone())),
                };
                match (piece, &mut tail) {
                    (Some(piece), Some(pieces)) => pieces.push(piece),
                    _ => {
                        tail = None;
                        break;
                    }
                }
            }
            guides.push(Guide {
                dfa: lhs_dfa,
                state,
                tail,
            });
        }
        // Disequalities that become decidable the moment `var` is
        // assigned: candidates equal to the other side's pinned value
        // are rejected by the next `propagate` unconditionally.
        let banned: Vec<&str> = ctx
            .ne_pairs
            .iter()
            .filter_map(|&(a, b)| {
                if a == var {
                    assignment.get(&b).map(String::as_str)
                } else if b == var {
                    assignment.get(&a).map(String::as_str)
                } else {
                    None
                }
            })
            .collect();

        // Best-first (A*-style) search over (var state, guide states):
        // priority = word length + residual distances to acceptance in
        // the variable DFA and every guide. This finds words that
        // *complete* the surrounding equations early, instead of
        // flooding the budget with short irrelevant words.
        //
        // Heap entries are indices into a parent-pointer arena — the
        // class-word and guide-state vectors live once per *node*
        // (shared-prefix via parent links, guide states in one flat
        // buffer) instead of being cloned on every heap push; the word
        // is only reconstructed when a candidate is accepted.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut out = Vec::new();
        let mut truncated = false;
        let max_expansions = self
            .config
            .max_candidates_per_var
            .saturating_mul(64)
            .max(4_096);
        let mut expansions = 0usize;
        let class_count = ctx.alphabet.class_count();
        let guide_count = guides.len();
        let g0: Vec<u32> = guides.iter().map(|g| g.state).collect();
        if guides
            .iter()
            .any(|g| g.dfa.distance_to_accept(g.state).is_none())
        {
            return (out, false);
        }
        // The variable's length window from the abstraction pass.
        // Cutting at the interval's upper bound is *exact* — no longer
        // word can be part of any solution — so only a cut at the
        // configured limit marks the enumeration as truncated.
        let bounds = ctx
            .intervals
            .get(&var)
            .copied()
            .unwrap_or_else(LenInterval::full);
        let hard_cap = self.config.max_word_len as u64;
        let cap = bounds.hi.map_or(hard_cap, |h| h.min(hard_cap));
        let cap_is_exact = bounds.hi.is_some_and(|h| h <= hard_cap);
        let priority = |len: u64, vs: u32, gs: &[u32]| -> u64 {
            let mut p = len;
            p += u64::from(var_dfa.distance_to_accept(vs).unwrap_or(0));
            for (i, g) in guides.iter().enumerate() {
                p += u64::from(g.dfa.distance_to_accept(gs[i]).unwrap_or(0));
            }
            p
        };

        /// One prefix in the arena; `parent == u32::MAX` marks the root.
        struct Node {
            parent: u32,
            class: u16,
            len: u32,
            vs: u32,
        }
        let reconstruct = |nodes: &[Node], mut idx: u32| -> Vec<u16> {
            let mut word = Vec::with_capacity(nodes[idx as usize].len as usize);
            while nodes[idx as usize].parent != u32::MAX {
                word.push(nodes[idx as usize].class);
                idx = nodes[idx as usize].parent;
            }
            word.reverse();
            word
        };
        let mut nodes: Vec<Node> = vec![Node {
            parent: u32::MAX,
            class: 0,
            len: 0,
            vs: var_dfa.start_state(),
        }];
        // Node i's guide states live at `i * guide_count ..`.
        let mut guide_states: Vec<u32> = g0.clone();

        let mut counter = 0u64; // FIFO tiebreak → length order among ties
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        heap.push(Reverse((
            priority(0, var_dfa.start_state(), &g0),
            counter,
            0,
        )));
        while let Some(Reverse((_, _, idx))) = heap.pop() {
            if out.len() >= self.config.max_candidates_per_var || expansions >= max_expansions {
                truncated = true;
                break;
            }
            let (vs, len) = {
                let node = &nodes[idx as usize];
                (node.vs, u64::from(node.len))
            };
            if var_dfa.is_accepting(vs) && len >= bounds.lo {
                // A candidate only reaches the output if no equation it
                // completes (guides with a fully concrete tail) rejects
                // it and no decidable disequality pins it to a banned
                // word — `propagate` would refute such a child at the
                // cost of a search node. Survivors keep their order, so
                // the first model found is unchanged.
                let gs = &guide_states[idx as usize * guide_count..][..guide_count];
                let word = ctx.alphabet.realize(&reconstruct(&nodes, idx));
                let viable = guides.iter().enumerate().all(|(i, g)| match &g.tail {
                    Some(pieces) => {
                        let end = pieces.iter().fold(gs[i], |st, p| match p {
                            TailPiece::Str(s) => g.dfa.run(st, s),
                            TailPiece::Own => g.dfa.run(st, &word),
                        });
                        g.dfa.is_accepting(end)
                    }
                    None => true,
                });
                if viable && !banned.iter().any(|b| *b == word) {
                    self.stats.candidates += 1;
                    out.push(word);
                }
            }
            if len >= cap {
                if !cap_is_exact {
                    truncated = true;
                }
                continue;
            }
            let gs_base = idx as usize * guide_count;
            for class in 0..class_count {
                expansions += 1;
                let nvs = var_dfa.step(vs, class as u16);
                if var_dfa.distance_to_accept(nvs).is_none() {
                    continue;
                }
                // Step the guides into the tail of the flat buffer; on
                // a dead guide the partial segment is rolled back.
                let segment = guide_states.len();
                let mut live = true;
                for (i, g) in guides.iter().enumerate() {
                    let next = g.dfa.step(guide_states[gs_base + i], class as u16);
                    if g.dfa.distance_to_accept(next).is_none() {
                        live = false;
                        break;
                    }
                    guide_states.push(next);
                }
                if !live {
                    guide_states.truncate(segment);
                    continue;
                }
                let new_idx = nodes.len() as u32;
                nodes.push(Node {
                    parent: idx,
                    class: class as u16,
                    len: (len + 1) as u32,
                    vs: nvs,
                });
                counter += 1;
                let p = priority(len + 1, nvs, &guide_states[segment..]);
                heap.push(Reverse((p, counter, new_idx)));
            }
        }
        (out, truncated)
    }
}

enum StepResult {
    Sat,
    Exhausted,
    Truncated,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Part {
    Var(StrVar),
    Lit(String),
}

struct StringCtx {
    alphabet: Arc<Alphabet>,
    dfas: HashMap<StrVar, Arc<Dfa>>,
    equations: Vec<(StrVar, Vec<Part>)>,
    order: Vec<StrVar>,
    bools: HashMap<BoolVar, bool>,
    roots: Vec<StrVar>,
    uf: UnionFind,
    ne_pairs: Vec<(StrVar, StrVar)>,
    /// Accepted-length windows per root from the length-abstraction
    /// pass (empty when the pass is disabled).
    intervals: HashMap<StrVar, LenInterval>,
}

/// An inclusive interval of word lengths; `hi = None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LenInterval {
    lo: u64,
    hi: Option<u64>,
}

impl LenInterval {
    /// The interval constraining nothing.
    fn full() -> LenInterval {
        LenInterval { lo: 0, hi: None }
    }

    /// The singleton interval `[n, n]`.
    fn exact(n: u64) -> LenInterval {
        LenInterval { lo: n, hi: Some(n) }
    }

    /// Intersection; `None` when empty.
    fn meet(self, other: LenInterval) -> Option<LenInterval> {
        let lo = self.lo.max(other.lo);
        let hi = match (self.hi, other.hi) {
            (None, h) | (h, None) => h,
            (Some(a), Some(b)) => Some(a.min(b)),
        };
        match hi {
            Some(h) if h < lo => None,
            _ => Some(LenInterval { lo, hi }),
        }
    }

    /// Minkowski sum: the lengths of a concatenation.
    fn add(self, other: LenInterval) -> LenInterval {
        LenInterval {
            lo: self.lo.saturating_add(other.lo),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            },
        }
    }

    /// The lengths `x` with `x + y ∈ self` possible for some
    /// `y ∈ other`; `None` when no such `x` exists.
    fn minus(self, other: LenInterval) -> Option<LenInterval> {
        let lo = match other.hi {
            Some(h) => self.lo.saturating_sub(h),
            None => 0,
        };
        let hi = match self.hi {
            None => None,
            Some(h) => Some(h.checked_sub(other.lo)?),
        };
        match hi {
            Some(h) if h < lo => None,
            _ => Some(LenInterval { lo, hi }),
        }
    }
}

/// Computes per-root length intervals and propagates them through the
/// concat equations to a fixpoint (bounded rounds). `Err` means some
/// interval became empty — the conjunction has no solution.
fn length_intervals(
    dfas: &HashMap<StrVar, Arc<Dfa>>,
    equations: &[(StrVar, Vec<Part>)],
) -> Result<HashMap<StrVar, LenInterval>, ()> {
    let mut intervals: HashMap<StrVar, LenInterval> = HashMap::new();
    for (&var, dfa) in dfas {
        // Empty languages were refuted before this pass runs.
        let bounds = dfa.length_bounds().ok_or(())?;
        intervals.insert(
            var,
            LenInterval {
                lo: bounds.min as u64,
                hi: bounds.max.map(|m| m as u64),
            },
        );
    }
    let part_interval = |p: &Part, intervals: &HashMap<StrVar, LenInterval>| -> LenInterval {
        match p {
            Part::Var(v) => intervals.get(v).copied().unwrap_or_else(LenInterval::full),
            Part::Lit(s) => LenInterval::exact(s.chars().count() as u64),
        }
    };
    // Interval refinement is monotone, so a fixpoint exists; the round
    // cap only bounds time on pathological chains.
    let max_rounds = 4 * equations.len() + 4;
    for _ in 0..max_rounds {
        let mut changed = false;
        for (lhs, parts) in equations {
            // Forward: len(lhs) ∈ Σ len(part).
            let mut sum = LenInterval::exact(0);
            for p in parts {
                sum = sum.add(part_interval(p, &intervals));
            }
            let current = intervals
                .get(lhs)
                .copied()
                .unwrap_or_else(LenInterval::full);
            let refined = current.meet(sum).ok_or(())?;
            if refined != current {
                intervals.insert(*lhs, refined);
                changed = true;
            }
            // Backward: each variable occurrence fits in what the lhs
            // leaves after the other parts.
            for (i, p) in parts.iter().enumerate() {
                let Part::Var(v) = p else { continue };
                let mut others = LenInterval::exact(0);
                for (j, q) in parts.iter().enumerate() {
                    if j != i {
                        others = others.add(part_interval(q, &intervals));
                    }
                }
                let derived = refined.minus(others).ok_or(())?;
                let current = intervals.get(v).copied().unwrap_or_else(LenInterval::full);
                let met = current.meet(derived).ok_or(())?;
                if met != current {
                    intervals.insert(*v, met);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(intervals)
}

/// Propagates fully-determined equations (computing lhs values) and
/// prefix-prunes partially determined ones. Returns `Err` on conflict.
fn propagate(
    ctx: &StringCtx,
    assignment: &mut HashMap<StrVar, String>,
    trail: &mut Vec<StrVar>,
) -> Result<(), ()> {
    let mut changed = true;
    while changed {
        changed = false;
        for (lhs, parts) in &ctx.equations {
            let mut value = String::new();
            let mut complete = true;
            let lhs_dfa = &ctx.dfas[lhs];
            let mut state = lhs_dfa.start_state();
            for p in parts {
                let piece: Option<&str> = match p {
                    Part::Var(v) => assignment.get(v).map(String::as_str),
                    Part::Lit(s) => Some(s.as_str()),
                };
                match piece {
                    Some(s) => {
                        value.push_str(s);
                        state = lhs_dfa.run(state, s);
                        if lhs_dfa.distance_to_accept(state).is_none() {
                            // The lhs DFA can never accept any extension
                            // of this prefix.
                            return Err(());
                        }
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                match assignment.get(lhs) {
                    Some(existing) => {
                        if *existing != value {
                            return Err(());
                        }
                    }
                    None => {
                        if !lhs_dfa.is_accepting(state) {
                            return Err(());
                        }
                        assignment.insert(*lhs, value);
                        trail.push(*lhs);
                        changed = true;
                    }
                }
            } else if let Some(existing) = assignment.get(lhs) {
                // lhs pinned: the assigned prefix must be a prefix of it.
                if !existing.starts_with(&value) {
                    return Err(());
                }
                // Unit slicing: with exactly one unassigned variable part
                // (occurring once), its value is forced by the pinned lhs.
                let unassigned: Vec<&StrVar> = parts
                    .iter()
                    .filter_map(|p| match p {
                        Part::Var(v) if !assignment.contains_key(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                if unassigned.len() == 1 {
                    let var = *unassigned[0];
                    let mut prefix = String::new();
                    let mut suffix = String::new();
                    let mut before = true;
                    for p in parts {
                        let piece: Option<&str> = match p {
                            Part::Var(v) if *v == var => {
                                before = false;
                                continue;
                            }
                            Part::Var(v) => assignment.get(v).map(String::as_str),
                            Part::Lit(s) => Some(s.as_str()),
                        };
                        let piece = piece.expect("only `var` is unassigned");
                        if before {
                            prefix.push_str(piece);
                        } else {
                            suffix.push_str(piece);
                        }
                    }
                    let existing_chars: Vec<char> = existing.chars().collect();
                    let prefix_chars: Vec<char> = prefix.chars().collect();
                    let suffix_chars: Vec<char> = suffix.chars().collect();
                    if existing_chars.len() < prefix_chars.len() + suffix_chars.len()
                        || !existing.starts_with(&prefix)
                        || !existing.ends_with(&suffix)
                    {
                        return Err(());
                    }
                    let middle: String = existing_chars
                        [prefix_chars.len()..existing_chars.len() - suffix_chars.len()]
                        .iter()
                        .collect();
                    if let Some(dfa) = ctx.dfas.get(&var) {
                        if !dfa.contains(&middle) {
                            return Err(());
                        }
                    }
                    assignment.insert(var, middle);
                    trail.push(var);
                    changed = true;
                }
            }
        }
    }
    // Variable disequalities fail as soon as both sides are assigned.
    // Without this, a doomed pair pinned near the root of the search
    // tree is only rediscovered by `final_check` at every leaf below
    // it — an exponential blowup observed in the wild (a §4.4 negated
    // capture binding burned 27k nodes on one flip query).
    for &(a, b) in &ctx.ne_pairs {
        if let (Some(va), Some(vb)) = (assignment.get(&a), assignment.get(&b)) {
            if va == vb {
                return Err(());
            }
        }
    }
    Ok(())
}

/// Picks the unassigned free variable with the strongest guide:
/// 0 — some equation has it first-unassigned with a concrete lhs word;
/// 1 — same but the lhs language is finite;
/// 2 — same but the lhs language is infinite (weak guide);
/// 3 — no equation ready to guide it.
/// Static order position breaks ties, keeping the search deterministic.
fn select_var(ctx: &StringCtx, assignment: &HashMap<StrVar, String>) -> Option<StrVar> {
    let mut best: Option<(u8, usize)> = None;
    for (pos, &var) in ctx.order.iter().enumerate() {
        if assignment.contains_key(&var) {
            continue;
        }
        let mut score = 3u8;
        for (lhs, parts) in &ctx.equations {
            let mut preceding_assigned = true;
            let mut found = false;
            for part in parts {
                match part {
                    Part::Var(v) if *v == var => {
                        found = true;
                        break;
                    }
                    Part::Var(v) => {
                        if !assignment.contains_key(v) {
                            preceding_assigned = false;
                            break;
                        }
                    }
                    Part::Lit(_) => {}
                }
            }
            if !found || !preceding_assigned {
                continue;
            }
            let strength = if assignment.contains_key(lhs) {
                0
            } else if !ctx.dfas[lhs].is_infinite() {
                1
            } else {
                2
            };
            score = score.min(strength);
            if score == 0 {
                break;
            }
        }
        if best.is_none_or(|(s, p)| (score, pos) < (s, p)) {
            best = Some((score, pos));
        }
    }
    best.map(|(_, pos)| ctx.order[pos])
}

fn undo(assignment: &mut HashMap<StrVar, String>, trail: &[StrVar]) {
    for v in trail {
        assignment.remove(v);
    }
}

/// Backtracks one search node: drops both the propagation trail and the
/// unit (single-candidate) assignments committed at that node.
fn retract(assignment: &mut HashMap<StrVar, String>, trail: &[StrVar], units: &[StrVar]) {
    undo(assignment, trail);
    undo(assignment, units);
}

fn final_check(ctx: &StringCtx, assignment: &HashMap<StrVar, String>) -> bool {
    for (lhs, parts) in &ctx.equations {
        let Some(lhs_val) = assignment.get(lhs) else {
            return false;
        };
        let mut value = String::new();
        for p in parts {
            match p {
                Part::Var(v) => match assignment.get(v) {
                    Some(s) => value.push_str(s),
                    None => return false,
                },
                Part::Lit(s) => value.push_str(s),
            }
        }
        if *lhs_val != value {
            return false;
        }
    }
    for (&root, dfa) in &ctx.dfas {
        if let Some(value) = assignment.get(&root) {
            if !dfa.contains(value) {
                return false;
            }
        }
    }
    for &(a, b) in &ctx.ne_pairs {
        match (assignment.get(&a), assignment.get(&b)) {
            (Some(va), Some(vb)) if va == vb => return false,
            _ => {}
        }
    }
    true
}

fn has_cycle(equations: &[(StrVar, Vec<Part>)]) -> bool {
    // DFS from each lhs through parts that are themselves lhs.
    let lhs_parts: HashMap<StrVar, &Vec<Part>> = equations.iter().map(|(l, p)| (*l, p)).collect();
    fn visit(
        v: StrVar,
        lhs_parts: &HashMap<StrVar, &Vec<Part>>,
        visiting: &mut Vec<StrVar>,
        done: &mut Vec<StrVar>,
    ) -> bool {
        if done.contains(&v) {
            return false;
        }
        if visiting.contains(&v) {
            return true;
        }
        visiting.push(v);
        if let Some(parts) = lhs_parts.get(&v) {
            for p in *parts {
                if let Part::Var(u) = p {
                    if visit(*u, lhs_parts, visiting, done) {
                        return true;
                    }
                }
            }
        }
        visiting.pop();
        done.push(v);
        false
    }
    let mut done = Vec::new();
    for &(lhs, _) in equations {
        let mut visiting = Vec::new();
        if visit(lhs, &lhs_parts, &mut visiting, &mut done) {
            return true;
        }
    }
    false
}

/// Adds the transitive closures of nested equations: when the lhs of
/// one equation occurs as a part of another, the substituted (implied)
/// equation is appended alongside the originals. The originals keep
/// intermediate variables derivable by propagation; the flattened
/// copies relate *base* variables directly to outer words, so a pinned
/// outer word guides candidate enumeration for inner variables instead
/// of leaving them near-universal (which floods the node budget).
fn flatten_equations(equations: Vec<(StrVar, Vec<Part>)>) -> Vec<(StrVar, Vec<Part>)> {
    // First definition wins for variables with several equations; the
    // others still get checked via their own (flattened) equations.
    let mut defs: HashMap<StrVar, Vec<Part>> = HashMap::new();
    for (lhs, parts) in &equations {
        defs.entry(*lhs).or_insert_with(|| parts.clone());
    }
    let mut out = equations.clone();
    for (lhs, parts) in &equations {
        let mut current = parts.clone();
        // The occurs check ran on ONE definition per variable; with
        // several definitions the substitution graph can still cycle
        // (e.g. x = [y,"a"], y = [x,"c"] alongside an acyclic x
        // definition). In an acyclic system the substitution depth is
        // bounded by the number of equations, so fuel exhaustion means
        // a cycle: abandon the flattened copy (it is only a redundant
        // search guide) and keep the original equation.
        let mut fuel = equations.len() + 1;
        let mut diverged = false;
        loop {
            let mut next = Vec::with_capacity(current.len());
            let mut changed = false;
            for part in &current {
                match part {
                    Part::Var(v) if *v != *lhs && defs.contains_key(v) => {
                        next.extend(defs[v].iter().cloned());
                        changed = true;
                    }
                    other => next.push(other.clone()),
                }
            }
            current = next;
            if !changed {
                break;
            }
            fuel -= 1;
            if fuel == 0 {
                diverged = true;
                break;
            }
        }
        if diverged {
            continue;
        }
        let flattened = (*lhs, current);
        if !out.contains(&flattened) {
            out.push(flattened);
        }
    }
    out
}

/// Orders equations so that inner (dependency) equations come first.
fn topo_sort(equations: Vec<(StrVar, Vec<Part>)>) -> Vec<(StrVar, Vec<Part>)> {
    let mut out: Vec<(StrVar, Vec<Part>)> = Vec::with_capacity(equations.len());
    let mut remaining = equations;
    while !remaining.is_empty() {
        let lhs_pending: std::collections::HashSet<StrVar> =
            remaining.iter().map(|(l, _)| *l).collect();
        let (ready, rest): (Vec<_>, Vec<_>) = remaining.into_iter().partition(|(lhs, parts)| {
            parts.iter().all(|p| match p {
                Part::Var(v) => !lhs_pending.contains(v) || v == lhs,
                Part::Lit(_) => true,
            })
        });
        if ready.is_empty() {
            // Cycle was excluded earlier; defensive fallback.
            out.extend(rest);
            break;
        }
        out.extend(ready);
        remaining = rest;
    }
    out
}

#[derive(Debug, Default)]
struct UnionFind {
    parent: HashMap<StrVar, StrVar>,
}

impl UnionFind {
    fn touch(&mut self, v: StrVar) {
        self.parent.entry(v).or_insert(v);
    }

    fn find(&mut self, v: StrVar) -> StrVar {
        self.touch(v);
        let mut root = v;
        while self.parent[&root] != root {
            root = self.parent[&root];
        }
        // Path compression.
        let mut cur = v;
        while self.parent[&cur] != root {
            let next = self.parent[&cur];
            self.parent.insert(cur, root);
            cur = next;
        }
        root
    }

    fn union(&mut self, a: StrVar, b: StrVar) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn all_vars(&self) -> Vec<StrVar> {
        self.parent.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::VarPool;
    use automata::CharSet;

    fn solve(f: &Formula) -> Outcome {
        Solver::default().solve(f).0
    }

    fn re_char(c: char) -> CRegex {
        CRegex::set(CharSet::single(c))
    }

    #[test]
    fn trivial_sat_and_unsat() {
        assert!(solve(&Formula::top()).is_sat());
        assert_eq!(solve(&Formula::bottom()), Outcome::Unsat);
    }

    #[test]
    fn membership_witness() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let re = CRegex::plus(re_char('a'));
        let outcome = solve(&Formula::in_re(v, re));
        let model = outcome.model().expect("sat");
        assert_eq!(model.get_str(v), Some("a"));
    }

    #[test]
    fn membership_conflict_is_unsat() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::and(vec![
            Formula::in_re(v, CRegex::plus(re_char('a'))),
            Formula::in_re(v, CRegex::plus(re_char('b'))),
        ]);
        assert_eq!(solve(&f), Outcome::Unsat);
    }

    #[test]
    fn eq_lit_checked_against_membership() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::and(vec![
            Formula::in_re(v, CRegex::plus(re_char('a'))),
            Formula::eq_lit(v, "aaa"),
        ]);
        let model = solve(&f).model().expect("sat");
        assert_eq!(model.get_str(v), Some("aaa"));
        let f = Formula::and(vec![
            Formula::in_re(v, CRegex::plus(re_char('a'))),
            Formula::eq_lit(v, "ab"),
        ]);
        assert_eq!(solve(&f), Outcome::Unsat);
    }

    #[test]
    fn concat_equation() {
        let mut pool = VarPool::new();
        let w = pool.fresh_str("w");
        let a = pool.fresh_str("a");
        let b = pool.fresh_str("b");
        let f = Formula::and(vec![
            Formula::eq_concat(w, vec![Term::Var(a), Term::Var(b)]),
            Formula::in_re(a, CRegex::plus(re_char('x'))),
            Formula::in_re(b, CRegex::plus(re_char('y'))),
            Formula::eq_lit(w, "xxyy"),
        ]);
        let model = solve(&f).model().expect("sat");
        assert_eq!(model.get_str(a), Some("xx"));
        assert_eq!(model.get_str(b), Some("yy"));
    }

    #[test]
    fn concat_equation_unsat() {
        let mut pool = VarPool::new();
        let w = pool.fresh_str("w");
        let a = pool.fresh_str("a");
        let b = pool.fresh_str("b");
        let f = Formula::and(vec![
            Formula::eq_concat(w, vec![Term::Var(a), Term::Var(b)]),
            Formula::in_re(a, CRegex::plus(re_char('x'))),
            Formula::in_re(b, CRegex::plus(re_char('y'))),
            Formula::eq_lit(w, "yx"),
        ]);
        assert_eq!(solve(&f), Outcome::Unsat);
    }

    #[test]
    fn negative_membership() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::and(vec![
            Formula::in_re(v, CRegex::star(re_char('a'))),
            Formula::not_in_re(v, CRegex::Epsilon),
            Formula::ne_lit(v, "a"),
        ]);
        let model = solve(&f).model().expect("sat");
        assert_eq!(model.get_str(v), Some("aa"));
    }

    #[test]
    fn alias_merging() {
        let mut pool = VarPool::new();
        let a = pool.fresh_str("a");
        let b = pool.fresh_str("b");
        let f = Formula::and(vec![Formula::eq_var(a, b), Formula::eq_lit(b, "shared")]);
        let model = solve(&f).model().expect("sat");
        assert_eq!(model.get_str(a), Some("shared"));
    }

    #[test]
    fn alias_conflict() {
        let mut pool = VarPool::new();
        let a = pool.fresh_str("a");
        let b = pool.fresh_str("b");
        let f = Formula::and(vec![
            Formula::eq_var(a, b),
            Formula::eq_lit(a, "x"),
            Formula::eq_lit(b, "y"),
        ]);
        assert_eq!(solve(&f), Outcome::Unsat);
    }

    #[test]
    fn disjunction_explores_branches() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::or(vec![
            Formula::and(vec![
                Formula::eq_lit(v, "a"),
                Formula::ne_lit(v, "a"), // contradiction
            ]),
            Formula::eq_lit(v, "b"),
        ]);
        let model = solve(&f).model().expect("sat");
        assert_eq!(model.get_str(v), Some("b"));
    }

    #[test]
    fn bool_flags() {
        let mut pool = VarPool::new();
        let b = pool.fresh_bool("defined");
        let f = Formula::and(vec![Formula::bool_is(b, true)]);
        let model = solve(&f).model().expect("sat");
        assert!(model.get_bool(b));
        let f = Formula::and(vec![Formula::bool_is(b, true), Formula::bool_is(b, false)]);
        assert_eq!(solve(&f), Outcome::Unsat);
    }

    #[test]
    fn nested_equations() {
        // w = u ++ "c", u = a ++ b — two-level nesting.
        let mut pool = VarPool::new();
        let w = pool.fresh_str("w");
        let u = pool.fresh_str("u");
        let a = pool.fresh_str("a");
        let b = pool.fresh_str("b");
        let f = Formula::and(vec![
            Formula::eq_concat(w, vec![Term::Var(u), Term::lit("c")]),
            Formula::eq_concat(u, vec![Term::Var(a), Term::Var(b)]),
            Formula::in_re(a, re_char('x')),
            Formula::in_re(b, re_char('y')),
        ]);
        let model = solve(&f).model().expect("sat");
        assert_eq!(model.get_str(w), Some("xyc"));
        assert_eq!(model.get_str(u), Some("xy"));
    }

    #[test]
    fn refinement_shape() {
        // The CEGAR clause shape: (w = "aa" ⟹ c = "") ∧ w = "aa".
        let mut pool = VarPool::new();
        let w = pool.fresh_str("w");
        let c = pool.fresh_str("c");
        let f = Formula::and(vec![
            Formula::eq_lit(w, "aa"),
            Formula::implies_eq_lit(w, "aa", Formula::eq_lit(c, "")),
        ]);
        let model = solve(&f).model().expect("sat");
        assert_eq!(model.get_str(c), Some(""));
    }

    #[test]
    fn cyclic_equation_is_unknown() {
        let mut pool = VarPool::new();
        let a = pool.fresh_str("a");
        let b = pool.fresh_str("b");
        let f = Formula::and(vec![
            Formula::eq_concat(a, vec![Term::Var(b), Term::lit("x")]),
            Formula::eq_concat(b, vec![Term::Var(a)]),
        ]);
        assert_eq!(solve(&f), Outcome::Unknown);
    }

    #[test]
    fn shared_var_multiple_occurrences() {
        // w = v ++ v (backreference shape): both halves equal.
        let mut pool = VarPool::new();
        let w = pool.fresh_str("w");
        let v = pool.fresh_str("v");
        let f = Formula::and(vec![
            Formula::eq_concat(w, vec![Term::Var(v), Term::Var(v)]),
            Formula::in_re(v, CRegex::alt(vec![CRegex::lit("ab"), CRegex::lit("c")])),
            Formula::ne_lit(w, "cc"),
        ]);
        let model = solve(&f).model().expect("sat");
        assert_eq!(model.get_str(w), Some("abab"));
    }

    #[test]
    fn unsat_exhaustive_finite_language() {
        // v ∈ {a, b} and w = v ++ v and w = "ab" — impossible.
        let mut pool = VarPool::new();
        let w = pool.fresh_str("w");
        let v = pool.fresh_str("v");
        let f = Formula::and(vec![
            Formula::eq_concat(w, vec![Term::Var(v), Term::Var(v)]),
            Formula::in_re(v, CRegex::alt(vec![CRegex::lit("a"), CRegex::lit("b")])),
            Formula::eq_lit(w, "ab"),
        ]);
        assert_eq!(solve(&f), Outcome::Unsat);
    }

    #[test]
    fn length_abstraction_refutes_doomed_conjunction() {
        // w ∈ a{5}, v ∈ a{3}, w = v ++ v: |w| would have to be 6 ≠ 5.
        // The interval pass must refute this before any word search.
        let mut pool = VarPool::new();
        let w = pool.fresh_str("w");
        let v = pool.fresh_str("v");
        let f = Formula::and(vec![
            Formula::eq_concat(w, vec![Term::Var(v), Term::Var(v)]),
            Formula::in_re(v, CRegex::repeat(re_char('a'), 3, Some(3))),
            Formula::in_re(w, CRegex::repeat(re_char('a'), 5, Some(5))),
        ]);
        let (outcome, stats) = Solver::default().solve(&f);
        assert_eq!(outcome, Outcome::Unsat);
        assert!(stats.length_prunes >= 1, "pass did not fire: {stats:?}");
        // Disabled, the verdict is the same but found by search.
        let eager = Solver::new(SolverConfig {
            length_abstraction: false,
            ..SolverConfig::default()
        });
        let (outcome, stats) = eager.solve(&f);
        assert_eq!(outcome, Outcome::Unsat);
        assert_eq!(stats.length_prunes, 0);
    }

    #[test]
    fn stats_are_recorded() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let (outcome, stats) =
            Solver::default().solve(&Formula::in_re(v, CRegex::plus(re_char('z'))));
        assert!(outcome.is_sat());
        assert!(stats.nodes >= 1);
        assert!(stats.duration.as_nanos() > 0);
    }

    #[test]
    fn multiply_defined_variable_cycle_terminates() {
        // Regression: x has an acyclic definition (the one the occurs
        // check happens to follow) AND a definition that cycles through
        // y. Equation flattening must not diverge substituting the
        // cyclic pair; the solver has to return within its budgets.
        let mut pool = VarPool::new();
        let x = pool.fresh_str("x");
        let y = pool.fresh_str("y");
        let p = pool.fresh_str("p");
        let w = pool.fresh_str("w");
        let f = Formula::and(vec![
            Formula::eq_concat(x, vec![Term::Var(p), Term::lit("b")]),
            Formula::eq_concat(p, vec![Term::lit("e")]),
            Formula::eq_concat(x, vec![Term::Var(y), Term::lit("a")]),
            Formula::eq_concat(y, vec![Term::Var(x), Term::lit("c")]),
            Formula::eq_concat(p, vec![Term::Var(x), Term::lit("d")]),
            Formula::eq_concat(w, vec![Term::Var(x), Term::Var(x)]),
        ]);
        // Any verdict is acceptable; the point is termination.
        let (_outcome, stats) = Solver::default().solve(&f);
        assert!(stats.duration.as_secs() < 30);
    }
}

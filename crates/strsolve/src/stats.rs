//! Query statistics, feeding the Table 8 reproduction.

use std::time::Duration;

/// Statistics for one solver query.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Wall-clock time spent in the query.
    pub duration: Duration,
    /// Search-tree nodes visited.
    pub nodes: u64,
    /// Boolean branches explored.
    pub bool_branches: u64,
    /// Candidate words generated across all variables.
    pub candidates: u64,
    /// True when any enumeration was cut short by a limit (the query
    /// outcome can then be `Unknown` instead of `Unsat`).
    pub truncated: bool,
    /// Number of DFA products/complements built.
    pub dfas_built: u64,
    /// DFA states produced by subset constructions and boolean
    /// operations, before minimization.
    pub dfa_states_built: u64,
    /// DFA states remaining after the thresholded Hopcroft pass
    /// (equals `dfa_states_built` when minimization is disabled).
    pub states_after_minimize: u64,
    /// Conjunctions refuted by the length-abstraction pass before any
    /// word search started.
    pub length_prunes: u64,
    /// DFA-cache lookups (compiled regexes, exact words, folded
    /// products) served from resident entries — shared-table reuse
    /// when the solver holds session [`crate::DfaTables`].
    pub dfa_cache_hits: u64,
    /// Queries answered from the cross-query result cache.
    pub cache_hits: u64,
    /// Queries that missed the result cache (or ran uncached).
    pub cache_misses: u64,
    /// Assumption-stack frames whose canonical form was reused from a
    /// [`crate::session::SolveSession`] when assembling this query —
    /// prefix work the query did *not* repeat.
    pub prefix_reuse_hits: u64,
}

impl SolveStats {
    /// Merges another query's statistics into this one (used by the
    /// per-package aggregation of Table 8).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.duration += other.duration;
        self.nodes += other.nodes;
        self.bool_branches += other.bool_branches;
        self.candidates += other.candidates;
        self.truncated |= other.truncated;
        self.dfas_built += other.dfas_built;
        self.dfa_states_built += other.dfa_states_built;
        self.states_after_minimize += other.states_after_minimize;
        self.length_prunes += other.length_prunes;
        self.dfa_cache_hits += other.dfa_cache_hits;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.prefix_reuse_hits += other.prefix_reuse_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = SolveStats {
            nodes: 10,
            candidates: 5,
            ..SolveStats::default()
        };
        let b = SolveStats {
            nodes: 7,
            truncated: true,
            cache_hits: 2,
            cache_misses: 1,
            ..SolveStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.nodes, 17);
        assert!(a.truncated);
        assert_eq!(a.candidates, 5);
        assert_eq!(a.cache_hits, 2);
        assert_eq!(a.cache_misses, 1);
    }
}

//! A string constraint solver for the fragment emitted by the
//! capturing-language models: word equations, classical regular
//! (non-)membership, literal (dis)equalities, variable aliases and
//! boolean definedness flags.
//!
//! This crate is the workspace's substitute for Z3's string/regex theory
//! (the paper solves its models with Z3, §6.2): the constraint fragment
//! is the same shape, and the solver is refutation-sound and model-sound
//! within configurable budgets, answering [`Outcome::Unknown`] otherwise
//! — exactly how DSE treats SMT timeouts (paper §5.3).
//!
//! # Examples
//!
//! The running §3.3 constraint shape — split a word into pieces with
//! regular constraints on the pieces:
//!
//! ```
//! use strsolve::{Formula, Solver, Term, VarPool};
//! use automata::{CharSet, CRegex};
//!
//! let mut pool = VarPool::new();
//! let w = pool.fresh_str("w");
//! let tag = pool.fresh_str("C1");
//! // w = "<" ++ tag ++ ">"  ∧  tag ∈ [a-z]+
//! let formula = Formula::and(vec![
//!     Formula::eq_concat(w, vec![Term::lit("<"), Term::Var(tag), Term::lit(">")]),
//!     Formula::in_re(tag, CRegex::plus(CRegex::set(CharSet::range('a', 'z')))),
//! ]);
//! let (outcome, _) = Solver::default().solve(&formula);
//! let model = outcome.model().expect("satisfiable");
//! assert_eq!(model.get_str(w), Some("<a>"));
//! ```

pub mod cache;
pub mod config;
pub mod formula;
pub mod model;
pub mod session;
pub mod solver;
pub mod stats;
pub mod vars;

pub use cache::{canonical_query, CanonicalQuery, Canonicalizer, Lru, QueryCache};
pub use config::SolverConfig;
pub use formula::{Atom, Formula};
pub use model::Model;
pub use session::{SessionQuery, SessionStats, SolveSession};
pub use solver::{DfaTables, Outcome, Solver};
pub use stats::SolveStats;
pub use vars::{BoolVar, StrVar, Term, VarPool};

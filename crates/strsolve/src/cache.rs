//! Cross-query solver result caching.
//!
//! DSE traces re-encounter near-identical path conditions thousands of
//! times: a child trace shares its path prefix with the parent, so the
//! flip queries along that prefix are *exactly* the queries the parent
//! already solved — up to variable numbering, which differs because
//! every [`crate::solver::Solver::solve`] call works against a fresh
//! [`crate::VarPool`]. [`QueryCache`] closes that gap by keying results on a
//! *canonicalized* formula (variables renumbered in first-occurrence
//! order) plus a [`SolverConfig`] fingerprint, and storing verdicts with
//! models in canonical variable space so a hit can be rehydrated into
//! any pool's numbering.
//!
//! Caching is sound here because the solver is deterministic: for a
//! given formula and limits it always returns the same verdict and the
//! same model, so a hit returns exactly what a fresh solve would. The
//! one place that must *not* consult the cache is the CEGAR refinement
//! loop after lemmas have been learned — see
//! `expose_core::cegar::CegarSolver`, which solves refined problems
//! through [`crate::solver::Solver::solve_uncached`].

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::config::SolverConfig;
use crate::formula::{Atom, Formula};
use crate::model::Model;
use crate::solver::Outcome;
use crate::stats::SolveStats;
use crate::vars::{BoolVar, StrVar, Term};

/// A capacity-bounded map with least-recently-used eviction.
///
/// Recency is tracked with a monotonic tick; eviction scans for the
/// minimum (capacities are small and evictions rare, so the linear scan
/// beats the bookkeeping of an intrusive list). A capacity of `0`
/// disables the map: inserts are dropped and lookups always miss.
#[derive(Debug)]
pub struct Lru<K, V> {
    capacity: usize,
    tick: u64,
    entries: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// Creates a map holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Lru<K, V> {
        Lru {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key, refreshing its recency.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(value, last)| {
            *last = tick;
            &*value
        })
    }

    /// Inserts an entry, evicting the least-recently-used one when at
    /// capacity. No-op when the capacity is `0`.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (value, self.tick));
    }
}

/// A formula renumbered into canonical variable space, with the maps
/// back to the original variables.
struct Canonical {
    formula: Formula,
    /// Canonical string index → original variable.
    strs: Vec<StrVar>,
    /// Canonical boolean index → original variable.
    bools: Vec<BoolVar>,
}

fn canonicalize(formula: &Formula) -> Canonical {
    struct Renumber {
        str_map: HashMap<StrVar, u32>,
        bool_map: HashMap<BoolVar, u32>,
        strs: Vec<StrVar>,
        bools: Vec<BoolVar>,
    }
    impl Renumber {
        fn str_var(&mut self, v: StrVar) -> StrVar {
            if let Some(&id) = self.str_map.get(&v) {
                return StrVar(id);
            }
            let id = self.strs.len() as u32;
            self.str_map.insert(v, id);
            self.strs.push(v);
            StrVar(id)
        }
        fn bool_var(&mut self, v: BoolVar) -> BoolVar {
            if let Some(&id) = self.bool_map.get(&v) {
                return BoolVar(id);
            }
            let id = self.bools.len() as u32;
            self.bool_map.insert(v, id);
            self.bools.push(v);
            BoolVar(id)
        }
        fn term(&mut self, t: &Term) -> Term {
            match t {
                Term::Var(v) => Term::Var(self.str_var(*v)),
                Term::Lit(s) => Term::Lit(s.clone()),
            }
        }
        fn formula(&mut self, f: &Formula) -> Formula {
            match f {
                Formula::Atom(a) => Formula::Atom(self.atom(a)),
                Formula::And(items) => {
                    Formula::And(items.iter().map(|f| self.formula(f)).collect())
                }
                Formula::Or(items) => Formula::Or(items.iter().map(|f| self.formula(f)).collect()),
            }
        }
        fn atom(&mut self, a: &Atom) -> Atom {
            match a {
                Atom::InRe(v, re) => Atom::InRe(self.str_var(*v), re.clone()),
                Atom::NotInRe(v, re) => Atom::NotInRe(self.str_var(*v), re.clone()),
                Atom::EqLit(v, lit) => Atom::EqLit(self.str_var(*v), lit.clone()),
                Atom::NeLit(v, lit) => Atom::NeLit(self.str_var(*v), lit.clone()),
                Atom::EqVar(v, u) => Atom::EqVar(self.str_var(*v), self.str_var(*u)),
                Atom::NeVar(v, u) => Atom::NeVar(self.str_var(*v), self.str_var(*u)),
                Atom::EqConcat(v, parts) => Atom::EqConcat(
                    self.str_var(*v),
                    parts.iter().map(|t| self.term(t)).collect(),
                ),
                Atom::Bool(flag, value) => Atom::Bool(self.bool_var(*flag), *value),
                Atom::True => Atom::True,
                Atom::False => Atom::False,
            }
        }
    }
    let mut renumber = Renumber {
        str_map: HashMap::new(),
        bool_map: HashMap::new(),
        strs: Vec::new(),
        bools: Vec::new(),
    };
    let formula = renumber.formula(formula);
    Canonical {
        formula,
        strs: renumber.strs,
        bools: renumber.bools,
    }
}

/// A verdict stored in canonical variable space.
#[derive(Debug, Clone)]
enum CachedVerdict {
    /// Satisfiable; assignments keyed by canonical variable index.
    Sat {
        strs: Vec<(u32, String)>,
        bools: Vec<(u32, bool)>,
    },
    Unsat,
    Unknown,
}

/// A shared, thread-safe, capacity-bounded solver result cache.
///
/// Hand one instance (behind an `Arc`) to every [`crate::Solver`] whose
/// queries should share verdicts — across clause flips, traces, and
/// batch jobs. See the module docs for the soundness argument.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use strsolve::{cache::QueryCache, Formula, Solver, VarPool};
///
/// let cache = Arc::new(QueryCache::new(128));
/// let solver = Solver::default().with_cache(cache.clone());
/// let mut pool = VarPool::new();
/// let v = pool.fresh_str("v");
/// let formula = Formula::eq_lit(v, "hello");
/// let (first, _) = solver.solve(&formula);
/// let (second, _) = solver.solve(&formula);
/// assert_eq!(first, second);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Debug)]
pub struct QueryCache {
    entries: Mutex<Lru<(Formula, u64), CachedVerdict>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` verdicts
    /// (`0` disables caching).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            entries: Mutex::new(Lru::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured capacity (`0` = disabled).
    pub fn capacity(&self) -> usize {
        self.entries.lock().capacity()
    }

    /// Total lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that fell through to the solver.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate in `[0, 1]` (`0` when no lookup happened yet).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Answers `formula` from the cache, or runs `solve` and stores the
    /// verdict. The returned stats carry `cache_hits`/`cache_misses` so
    /// callers can aggregate hit rates per query.
    pub(crate) fn solve_through(
        &self,
        formula: &Formula,
        config: &SolverConfig,
        solve: impl FnOnce(&Formula) -> (Outcome, SolveStats),
    ) -> (Outcome, SolveStats) {
        let started = Instant::now();
        let Canonical {
            formula: canon_formula,
            strs: str_vars,
            bools: bool_vars,
        } = canonicalize(formula);
        let key = (canon_formula, config.fingerprint());
        let cached = self.entries.lock().get(&key).cloned();
        if let Some(verdict) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let outcome = match verdict {
                CachedVerdict::Sat { strs, bools } => {
                    let mut model = Model::new();
                    for (canon, value) in strs {
                        model.set_str(str_vars[canon as usize], value);
                    }
                    for (canon, value) in bools {
                        model.set_bool(bool_vars[canon as usize], value);
                    }
                    Outcome::Sat(model)
                }
                CachedVerdict::Unsat => Outcome::Unsat,
                CachedVerdict::Unknown => Outcome::Unknown,
            };
            let stats = SolveStats {
                duration: started.elapsed(),
                cache_hits: 1,
                ..SolveStats::default()
            };
            return (outcome, stats);
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let (outcome, mut stats) = solve(formula);
        stats.cache_misses += 1;
        let verdict = match &outcome {
            Outcome::Sat(model) => {
                // Store the model in canonical space. Every assigned
                // variable appears in the formula (the solver only sees
                // the formula), so the reverse maps are total.
                let strs = str_vars
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| model.get_str(*v).map(|s| (i as u32, s.to_string())))
                    .collect();
                // Only what the solver assigned — storing `get_bool`'s
                // `false` default for untouched variables would make a
                // rehydrated model differ from a fresh solve's.
                let bools = bool_vars
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| model.try_get_bool(*v).map(|b| (i as u32, b)))
                    .collect();
                CachedVerdict::Sat { strs, bools }
            }
            Outcome::Unsat => CachedVerdict::Unsat,
            Outcome::Unknown => CachedVerdict::Unknown,
        };
        self.entries.lock().insert(key, verdict);
        (outcome, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use crate::vars::VarPool;
    use std::sync::Arc;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: Lru<u32, &str> = Lru::new(2);
        lru.insert(1, "one");
        lru.insert(2, "two");
        assert_eq!(lru.get(&1), Some(&"one")); // refresh 1
        lru.insert(3, "three"); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&"one"));
        assert_eq!(lru.get(&3), Some(&"three"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut lru: Lru<u32, &str> = Lru::new(0);
        lru.insert(1, "one");
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
    }

    #[test]
    fn hit_across_distinct_pools() {
        // The same structural query from two different pools (different
        // raw indices) must share one cache entry, and the hit's model
        // must be expressed in the asking pool's variables.
        let cache = Arc::new(QueryCache::new(16));
        let solver = Solver::default().with_cache(cache.clone());

        let mut pool_a = VarPool::new();
        let a = pool_a.fresh_str("a");
        let (first, stats_a) = solver.solve(&Formula::eq_lit(a, "x"));
        assert_eq!(stats_a.cache_misses, 1);

        let mut pool_b = VarPool::new();
        let _padding = pool_b.fresh_str("pad");
        let b = pool_b.fresh_str("b");
        let (second, stats_b) = solver.solve(&Formula::eq_lit(b, "x"));
        assert_eq!(stats_b.cache_hits, 1);

        assert_eq!(first.model().unwrap().get_str(a), Some("x"));
        assert_eq!(second.model().unwrap().get_str(b), Some("x"));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn different_limits_do_not_share_verdicts() {
        let cache = Arc::new(QueryCache::new(16));
        let fast = Solver::new(SolverConfig::fast()).with_cache(cache.clone());
        let thorough = Solver::new(SolverConfig::thorough()).with_cache(cache.clone());
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::eq_lit(v, "x");
        fast.solve(&f);
        thorough.solve(&f);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }
}

//! Cross-query solver result caching.
//!
//! DSE traces re-encounter near-identical path conditions thousands of
//! times: a child trace shares its path prefix with the parent, so the
//! flip queries along that prefix are *exactly* the queries the parent
//! already solved — up to variable numbering, which differs because
//! every [`crate::solver::Solver::solve`] call works against a fresh
//! [`crate::VarPool`]. [`QueryCache`] closes that gap by keying results on a
//! *canonicalized* formula (variables renumbered in first-occurrence
//! order) plus a [`SolverConfig`] fingerprint, and storing verdicts with
//! models in canonical variable space so a hit can be rehydrated into
//! any pool's numbering.
//!
//! Caching is sound here because the solver is deterministic: for a
//! given formula and limits it always returns the same verdict and the
//! same model, so a hit returns exactly what a fresh solve would. The
//! one place that must *not* consult the cache is the CEGAR refinement
//! loop after lemmas have been learned — see
//! `expose_core::cegar::CegarSolver`, which solves refined problems
//! through [`crate::solver::Solver::solve_uncached`].

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::config::SolverConfig;
use crate::formula::{Atom, Formula};
use crate::model::Model;
use crate::solver::Outcome;
use crate::stats::SolveStats;
use crate::vars::{BoolVar, StrVar, Term};

/// A capacity- and byte-bounded map with least-recently-used eviction.
///
/// Recency is tracked with a monotonic tick; eviction scans for the
/// minimum (capacities are small and evictions rare, so the linear scan
/// beats the bookkeeping of an intrusive list). A capacity of `0`
/// disables the map: inserts are dropped and lookups always miss.
///
/// Besides the entry-count capacity, a map can carry an *approximate
/// byte budget* ([`Lru::with_byte_budget`]): entries inserted through
/// [`Lru::insert_weighted`] declare an approximate resident size, and
/// eviction also runs while the weighted total exceeds the budget —
/// the backstop that keeps long-lived session caches (models, verdicts,
/// automata) from growing without bound on entry counts alone.
#[derive(Debug)]
pub struct Lru<K, V> {
    capacity: usize,
    byte_budget: usize,
    bytes: usize,
    evictions: u64,
    tick: u64,
    entries: HashMap<K, (V, u64, usize)>,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// Creates a map holding at most `capacity` entries, with no byte
    /// budget.
    pub fn new(capacity: usize) -> Lru<K, V> {
        Lru::with_byte_budget(capacity, 0)
    }

    /// Creates a map holding at most `capacity` entries and (when
    /// `byte_budget > 0`) at most roughly `byte_budget` bytes of
    /// weighted entries.
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> Lru<K, V> {
        Lru {
            capacity,
            byte_budget,
            bytes: 0,
            evictions: 0,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured byte budget (`0` = unlimited).
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Approximate bytes held by resident weighted entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Entries evicted so far (capacity- or budget-driven).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key, refreshing its recency.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(value, last, _)| {
            *last = tick;
            &*value
        })
    }

    /// Inserts an entry with zero weight (entry-count bounding only).
    pub fn insert(&mut self, key: K, value: V) {
        self.insert_weighted(key, value, 0);
    }

    /// Inserts an entry weighing approximately `weight` bytes, evicting
    /// least-recently-used entries while over the entry capacity or the
    /// byte budget. No-op when the capacity is `0`.
    pub fn insert_weighted(&mut self, key: K, value: V, weight: usize) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some((_, _, old)) = self.entries.remove(&key) {
            self.bytes -= old;
        }
        self.entries.insert(key, (value, self.tick, weight));
        self.bytes += weight;
        // The fresh entry carries the maximal tick, so it is evicted
        // only when it alone exceeds the budget — an oversized entry is
        // not retained.
        while self.entries.len() > self.capacity
            || (self.byte_budget > 0 && self.bytes > self.byte_budget)
        {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last, _))| *last)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some((_, _, w)) = self.entries.remove(&oldest) {
                self.bytes -= w;
                self.evictions += 1;
            }
        }
    }
}

/// An incremental first-occurrence variable renumberer.
///
/// Feeding formulas through [`Canonicalizer::formula`] assigns each
/// distinct variable the next canonical index the first time it is
/// seen, exactly like a one-shot [`canonical_query`] over the
/// concatenation of everything fed so far. [`crate::session::SolveSession`]
/// exploits this to canonicalize a trace's shared prefix once and
/// extend the numbering per flip; [`Canonicalizer::seeded`] rebuilds
/// the state at a frame watermark from the recorded variable order.
#[derive(Debug, Clone, Default)]
pub struct Canonicalizer {
    str_map: HashMap<StrVar, u32>,
    bool_map: HashMap<BoolVar, u32>,
    strs: Vec<StrVar>,
    bools: Vec<BoolVar>,
}

impl Canonicalizer {
    /// An empty renumbering.
    pub fn new() -> Canonicalizer {
        Canonicalizer::default()
    }

    /// Rebuilds the state reached after first-occurrence numbering
    /// assigned exactly `strs` and `bools`, in order.
    pub fn seeded(strs: &[StrVar], bools: &[BoolVar]) -> Canonicalizer {
        let mut canon = Canonicalizer::new();
        for &v in strs {
            canon.str_var(v);
        }
        for &v in bools {
            canon.bool_var(v);
        }
        canon
    }

    /// Canonical string index → original variable, in assignment order.
    pub fn str_vars(&self) -> &[StrVar] {
        &self.strs
    }

    /// Canonical boolean index → original variable, in assignment order.
    pub fn bool_vars(&self) -> &[BoolVar] {
        &self.bools
    }

    /// The canonical index assigned to an original string variable.
    pub fn str_id(&self, v: StrVar) -> Option<u32> {
        self.str_map.get(&v).copied()
    }

    /// The canonical index assigned to an original boolean variable.
    pub fn bool_id(&self, v: BoolVar) -> Option<u32> {
        self.bool_map.get(&v).copied()
    }

    /// Maps one string variable, assigning the next canonical index on
    /// first occurrence — for callers extending a query's canonical
    /// space with variables that may not occur in the formula itself
    /// (e.g. capture variables of an approximate constraint model).
    pub fn map_str(&mut self, v: StrVar) -> StrVar {
        self.str_var(v)
    }

    /// Maps one boolean variable, assigning the next canonical index on
    /// first occurrence (see [`Canonicalizer::map_str`]).
    pub fn map_bool(&mut self, v: BoolVar) -> BoolVar {
        self.bool_var(v)
    }

    fn str_var(&mut self, v: StrVar) -> StrVar {
        if let Some(&id) = self.str_map.get(&v) {
            return StrVar(id);
        }
        let id = self.strs.len() as u32;
        self.str_map.insert(v, id);
        self.strs.push(v);
        StrVar(id)
    }

    fn bool_var(&mut self, v: BoolVar) -> BoolVar {
        if let Some(&id) = self.bool_map.get(&v) {
            return BoolVar(id);
        }
        let id = self.bools.len() as u32;
        self.bool_map.insert(v, id);
        self.bools.push(v);
        BoolVar(id)
    }

    fn term(&mut self, t: &Term) -> Term {
        match t {
            Term::Var(v) => Term::Var(self.str_var(*v)),
            Term::Lit(s) => Term::Lit(s.clone()),
        }
    }

    /// Renumbers a formula, extending the state with any new variables.
    pub fn formula(&mut self, f: &Formula) -> Formula {
        match f {
            Formula::Atom(a) => Formula::Atom(self.atom(a)),
            Formula::And(items) => Formula::And(items.iter().map(|f| self.formula(f)).collect()),
            Formula::Or(items) => Formula::Or(items.iter().map(|f| self.formula(f)).collect()),
        }
    }

    fn atom(&mut self, a: &Atom) -> Atom {
        match a {
            Atom::InRe(v, re) => Atom::InRe(self.str_var(*v), re.clone()),
            Atom::NotInRe(v, re) => Atom::NotInRe(self.str_var(*v), re.clone()),
            Atom::EqLit(v, lit) => Atom::EqLit(self.str_var(*v), lit.clone()),
            Atom::NeLit(v, lit) => Atom::NeLit(self.str_var(*v), lit.clone()),
            Atom::EqVar(v, u) => Atom::EqVar(self.str_var(*v), self.str_var(*u)),
            Atom::NeVar(v, u) => Atom::NeVar(self.str_var(*v), self.str_var(*u)),
            Atom::EqConcat(v, parts) => Atom::EqConcat(
                self.str_var(*v),
                parts.iter().map(|t| self.term(t)).collect(),
            ),
            Atom::Bool(flag, value) => Atom::Bool(self.bool_var(*flag), *value),
            Atom::True => Atom::True,
            Atom::False => Atom::False,
        }
    }
}

/// A formula renumbered into canonical variable space, with the maps
/// back to the original variables.
#[derive(Debug, Clone)]
pub struct CanonicalQuery {
    /// The renumbered formula (the cache key, together with the solver
    /// fingerprint).
    pub formula: Formula,
    pub(crate) canon: Canonicalizer,
}

impl CanonicalQuery {
    /// Canonical string index → original variable.
    pub fn str_vars(&self) -> &[StrVar] {
        self.canon.str_vars()
    }

    /// Canonical boolean index → original variable.
    pub fn bool_vars(&self) -> &[BoolVar] {
        self.canon.bool_vars()
    }

    /// The canonical index of an original string variable, if it
    /// occurs in the query.
    pub fn str_id(&self, v: StrVar) -> Option<u32> {
        self.canon.str_id(v)
    }

    /// The canonical index of an original boolean variable, if it
    /// occurs in the query.
    pub fn bool_id(&self, v: BoolVar) -> Option<u32> {
        self.canon.bool_id(v)
    }

    /// A clone of the renumbering state, for callers that need to
    /// extend the canonical space deterministically beyond the
    /// formula's own variables.
    pub fn canonicalizer(&self) -> Canonicalizer {
        self.canon.clone()
    }
}

/// Renumbers a formula's variables in first-occurrence order — the
/// normal form under which structurally identical queries from
/// different [`crate::VarPool`]s collide.
pub fn canonical_query(formula: &Formula) -> CanonicalQuery {
    let mut canon = Canonicalizer::new();
    let formula = canon.formula(formula);
    CanonicalQuery { formula, canon }
}

/// A verdict stored in canonical variable space.
#[derive(Debug, Clone)]
enum CachedVerdict {
    /// Satisfiable; assignments keyed by canonical variable index.
    Sat {
        strs: Vec<(u32, String)>,
        bools: Vec<(u32, bool)>,
    },
    Unsat,
    Unknown,
}

/// A shared, thread-safe, capacity-bounded solver result cache.
///
/// Hand one instance (behind an `Arc`) to every [`crate::Solver`] whose
/// queries should share verdicts — across clause flips, traces, and
/// batch jobs. See the module docs for the soundness argument.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use strsolve::{cache::QueryCache, Formula, Solver, VarPool};
///
/// let cache = Arc::new(QueryCache::new(128));
/// let solver = Solver::default().with_cache(cache.clone());
/// let mut pool = VarPool::new();
/// let v = pool.fresh_str("v");
/// let formula = Formula::eq_lit(v, "hello");
/// let (first, _) = solver.solve(&formula);
/// let (second, _) = solver.solve(&formula);
/// assert_eq!(first, second);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Debug)]
pub struct QueryCache {
    entries: Mutex<Lru<(Formula, u64), CachedVerdict>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` verdicts
    /// (`0` disables caching).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache::with_byte_budget(capacity, 0)
    }

    /// Creates a cache bounded by entry count *and* (when nonzero) an
    /// approximate byte budget over key formulas and stored models.
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> QueryCache {
        QueryCache {
            entries: Mutex::new(Lru::with_byte_budget(capacity, byte_budget)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured capacity (`0` = disabled).
    pub fn capacity(&self) -> usize {
        self.entries.lock().capacity()
    }

    /// The configured byte budget (`0` = unlimited).
    pub fn byte_budget(&self) -> usize {
        self.entries.lock().byte_budget()
    }

    /// Approximate bytes held by resident entries.
    pub fn bytes(&self) -> usize {
        self.entries.lock().bytes()
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.entries.lock().evictions()
    }

    /// Total lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that fell through to the solver.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate in `[0, 1]` (`0` when no lookup happened yet).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Answers `formula` from the cache, or runs `solve` and stores the
    /// verdict. The returned stats carry `cache_hits`/`cache_misses` so
    /// callers can aggregate hit rates per query.
    pub(crate) fn solve_through(
        &self,
        formula: &Formula,
        config: &SolverConfig,
        solve: impl FnOnce(&Formula) -> (Outcome, SolveStats),
    ) -> (Outcome, SolveStats) {
        let query = canonical_query(formula);
        self.solve_through_canonical(&query, formula, config, solve)
    }

    /// The pre-keyed variant of [`QueryCache::solve_through`]: the
    /// caller already canonicalized the conjunction (e.g. a
    /// [`crate::session::SolveSession`] reusing a frame prefix), so the
    /// renumbering pass is not repeated. `original` is the formula in
    /// the caller's variable space, handed to `solve` on a miss;
    /// `query` MUST be its canonicalization (exactly what
    /// [`canonical_query`] would return) or hits would rehydrate into
    /// the wrong variables.
    pub(crate) fn solve_through_canonical(
        &self,
        query: &CanonicalQuery,
        original: &Formula,
        config: &SolverConfig,
        solve: impl FnOnce(&Formula) -> (Outcome, SolveStats),
    ) -> (Outcome, SolveStats) {
        let started = Instant::now();
        let key = (query.formula.clone(), config.fingerprint());
        let cached = self.entries.lock().get(&key).cloned();
        if let Some(verdict) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let outcome = match verdict {
                CachedVerdict::Sat { strs, bools } => {
                    let mut model = Model::new();
                    for (canon, value) in strs {
                        model.set_str(query.str_vars()[canon as usize], value);
                    }
                    for (canon, value) in bools {
                        model.set_bool(query.bool_vars()[canon as usize], value);
                    }
                    Outcome::Sat(model)
                }
                CachedVerdict::Unsat => Outcome::Unsat,
                CachedVerdict::Unknown => Outcome::Unknown,
            };
            let stats = SolveStats {
                duration: started.elapsed(),
                cache_hits: 1,
                ..SolveStats::default()
            };
            return (outcome, stats);
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let (outcome, mut stats) = solve(original);
        stats.cache_misses += 1;
        let verdict = match &outcome {
            Outcome::Sat(model) => {
                // Store the model in canonical space. Every assigned
                // variable appears in the formula (the solver only sees
                // the formula), so the reverse maps are total.
                let strs: Vec<(u32, String)> = query
                    .str_vars()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| model.get_str(*v).map(|s| (i as u32, s.to_string())))
                    .collect();
                // Only what the solver assigned — storing `get_bool`'s
                // `false` default for untouched variables would make a
                // rehydrated model differ from a fresh solve's.
                let bools: Vec<(u32, bool)> = query
                    .bool_vars()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| model.try_get_bool(*v).map(|b| (i as u32, b)))
                    .collect();
                CachedVerdict::Sat { strs, bools }
            }
            Outcome::Unsat => CachedVerdict::Unsat,
            Outcome::Unknown => CachedVerdict::Unknown,
        };
        let weight = key.0.approx_bytes() + verdict_bytes(&verdict);
        self.entries.lock().insert_weighted(key, verdict, weight);
        (outcome, stats)
    }
}

/// Approximate resident bytes of a stored verdict.
fn verdict_bytes(verdict: &CachedVerdict) -> usize {
    match verdict {
        CachedVerdict::Sat { strs, bools } => {
            strs.iter()
                .map(|(_, s)| std::mem::size_of::<(u32, String)>() + s.len())
                .sum::<usize>()
                + bools.len() * std::mem::size_of::<(u32, bool)>()
        }
        CachedVerdict::Unsat | CachedVerdict::Unknown => std::mem::size_of::<CachedVerdict>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use crate::vars::VarPool;
    use std::sync::Arc;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: Lru<u32, &str> = Lru::new(2);
        lru.insert(1, "one");
        lru.insert(2, "two");
        assert_eq!(lru.get(&1), Some(&"one")); // refresh 1
        lru.insert(3, "three"); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&"one"));
        assert_eq!(lru.get(&3), Some(&"three"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut lru: Lru<u32, &str> = Lru::new(0);
        lru.insert(1, "one");
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
    }

    #[test]
    fn byte_budget_evicts_weighted_entries() {
        let mut lru: Lru<u32, &str> = Lru::with_byte_budget(16, 100);
        lru.insert_weighted(1, "one", 60);
        assert_eq!(lru.bytes(), 60);
        lru.insert_weighted(2, "two", 60); // 120 > 100 → evicts 1
        assert_eq!(lru.get(&1), None);
        assert_eq!(lru.get(&2), Some(&"two"));
        assert_eq!(lru.bytes(), 60);
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn oversized_entry_is_not_retained() {
        let mut lru: Lru<u32, &str> = Lru::with_byte_budget(16, 100);
        lru.insert_weighted(1, "big", 200);
        assert!(lru.is_empty());
        assert_eq!(lru.bytes(), 0);
    }

    #[test]
    fn replacing_an_entry_updates_bytes() {
        let mut lru: Lru<u32, &str> = Lru::with_byte_budget(16, 100);
        lru.insert_weighted(1, "one", 40);
        lru.insert_weighted(1, "uno", 70);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.bytes(), 70);
        assert_eq!(lru.evictions(), 0);
    }

    #[test]
    fn incremental_canonicalization_matches_one_shot() {
        // A Canonicalizer fed the prefix then the suffix — including a
        // reseed from the watermark slices in between, as SolveSession
        // does per flip — must produce byte-identical canonical output
        // to canonicalizing the whole conjunction at once.
        let mut pool = VarPool::new();
        let _pad = pool.fresh_str("pad"); // skew raw indices
        let a = pool.fresh_str("a");
        let b = pool.fresh_str("b");
        let prefix = Formula::eq_concat(a, vec![Term::Var(b), Term::lit("x")]);
        let suffix = Formula::eq_lit(b, "y");
        let whole = Formula::and(vec![prefix.clone(), suffix.clone()]);
        let one_shot = canonical_query(&whole);

        let mut canon = Canonicalizer::new();
        let c_prefix = canon.formula(&prefix);
        let mut reseeded = Canonicalizer::seeded(canon.str_vars(), canon.bool_vars());
        let c_suffix = reseeded.formula(&suffix);
        let assembled = Formula::and(vec![c_prefix, c_suffix]);
        assert_eq!(assembled, one_shot.formula);
        assert_eq!(reseeded.str_vars(), one_shot.str_vars());
        assert_eq!(reseeded.bool_vars(), one_shot.bool_vars());
    }

    #[test]
    fn hit_across_distinct_pools() {
        // The same structural query from two different pools (different
        // raw indices) must share one cache entry, and the hit's model
        // must be expressed in the asking pool's variables.
        let cache = Arc::new(QueryCache::new(16));
        let solver = Solver::default().with_cache(cache.clone());

        let mut pool_a = VarPool::new();
        let a = pool_a.fresh_str("a");
        let (first, stats_a) = solver.solve(&Formula::eq_lit(a, "x"));
        assert_eq!(stats_a.cache_misses, 1);

        let mut pool_b = VarPool::new();
        let _padding = pool_b.fresh_str("pad");
        let b = pool_b.fresh_str("b");
        let (second, stats_b) = solver.solve(&Formula::eq_lit(b, "x"));
        assert_eq!(stats_b.cache_hits, 1);

        assert_eq!(first.model().unwrap().get_str(a), Some("x"));
        assert_eq!(second.model().unwrap().get_str(b), Some("x"));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn different_limits_do_not_share_verdicts() {
        let cache = Arc::new(QueryCache::new(16));
        let fast = Solver::new(SolverConfig::fast()).with_cache(cache.clone());
        let thorough = Solver::new(SolverConfig::thorough()).with_cache(cache.clone());
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::eq_lit(v, "x");
        fast.solve(&f);
        thorough.solve(&f);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }
}

//! The constraint language: atoms and negation-normal-form formulas.
//!
//! The capturing-language models of the paper (§4) compile to exactly
//! this fragment: classical regular (non-)membership, word equations of
//! the shape `x = t₁ ++ … ++ tₙ`, (dis)equality with literals, variable
//! aliasing, and boolean definedness flags for capture variables.
//! Formulas are built in negation normal form — negation only appears
//! baked into atoms (`NotInRe`, `NeLit`, `Bool(_, false)`), mirroring
//! how §4.4 pushes negation through the models.

use std::fmt;
use std::sync::Arc;

use automata::CRegex;

use crate::vars::{BoolVar, StrVar, Term};

/// An atomic constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// `v ∈ L(re)`.
    InRe(StrVar, Arc<CRegex>),
    /// `v ∉ L(re)`.
    NotInRe(StrVar, Arc<CRegex>),
    /// `v = "lit"`.
    EqLit(StrVar, String),
    /// `v ≠ "lit"`.
    NeLit(StrVar, String),
    /// `v = u` (aliasing).
    EqVar(StrVar, StrVar),
    /// `v ≠ u` (variable disequality, produced by the §4.4 negated
    /// models of backreference bindings).
    NeVar(StrVar, StrVar),
    /// `v = t₁ ++ t₂ ++ … ++ tₙ` (word equation).
    EqConcat(StrVar, Vec<Term>),
    /// `b = value` (capture definedness flags).
    Bool(BoolVar, bool),
    /// The constant true.
    True,
    /// The constant false.
    False,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::InRe(v, re) => write!(f, "{v} ∈ L({re})"),
            Atom::NotInRe(v, re) => write!(f, "{v} ∉ L({re})"),
            Atom::EqLit(v, s) => write!(f, "{v} = {s:?}"),
            Atom::NeLit(v, s) => write!(f, "{v} ≠ {s:?}"),
            Atom::EqVar(v, u) => write!(f, "{v} = {u}"),
            Atom::NeVar(v, u) => write!(f, "{v} ≠ {u}"),
            Atom::EqConcat(v, parts) => {
                write!(f, "{v} = ")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ++ ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Atom::Bool(b, val) => write!(f, "{b} = {val}"),
            Atom::True => write!(f, "⊤"),
            Atom::False => write!(f, "⊥"),
        }
    }
}

/// A formula in negation normal form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// An atomic constraint.
    Atom(Atom),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
}

impl Formula {
    /// The constant true.
    pub fn top() -> Formula {
        Formula::Atom(Atom::True)
    }

    /// The constant false.
    pub fn bottom() -> Formula {
        Formula::Atom(Atom::False)
    }

    /// Smart conjunction: flattens and prunes constants.
    pub fn and(items: Vec<Formula>) -> Formula {
        let mut flat = Vec::with_capacity(items.len());
        for item in items {
            match item {
                Formula::Atom(Atom::True) => {}
                Formula::Atom(Atom::False) => return Formula::bottom(),
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::top(),
            1 => flat.pop().expect("one item"),
            _ => Formula::And(flat),
        }
    }

    /// Smart disjunction: flattens and prunes constants.
    pub fn or(items: Vec<Formula>) -> Formula {
        let mut flat = Vec::with_capacity(items.len());
        for item in items {
            match item {
                Formula::Atom(Atom::False) => {}
                Formula::Atom(Atom::True) => return Formula::top(),
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::bottom(),
            1 => flat.pop().expect("one item"),
            _ => Formula::Or(flat),
        }
    }

    /// `guard ⟹ body` encoded as `¬guard ∨ body` for a literal guard
    /// `v = lit` (the shape produced by CEGAR refinements, Algorithm 1
    /// line 15).
    pub fn implies_eq_lit(v: StrVar, lit: impl Into<String>, body: Formula) -> Formula {
        let lit = lit.into();
        Formula::or(vec![Formula::Atom(Atom::NeLit(v, lit)), body])
    }

    /// Atom shortcut.
    pub fn atom(a: Atom) -> Formula {
        Formula::Atom(a)
    }

    /// `v ∈ L(re)`.
    pub fn in_re(v: StrVar, re: impl Into<Arc<CRegex>>) -> Formula {
        Formula::Atom(Atom::InRe(v, re.into()))
    }

    /// `v ∉ L(re)`.
    pub fn not_in_re(v: StrVar, re: impl Into<Arc<CRegex>>) -> Formula {
        Formula::Atom(Atom::NotInRe(v, re.into()))
    }

    /// `v = "lit"`.
    pub fn eq_lit(v: StrVar, lit: impl Into<String>) -> Formula {
        Formula::Atom(Atom::EqLit(v, lit.into()))
    }

    /// `v ≠ "lit"`.
    pub fn ne_lit(v: StrVar, lit: impl Into<String>) -> Formula {
        Formula::Atom(Atom::NeLit(v, lit.into()))
    }

    /// `v = u`.
    pub fn eq_var(v: StrVar, u: StrVar) -> Formula {
        Formula::Atom(Atom::EqVar(v, u))
    }

    /// `v ≠ u`.
    pub fn ne_var(v: StrVar, u: StrVar) -> Formula {
        Formula::Atom(Atom::NeVar(v, u))
    }

    /// `v = t₁ ++ … ++ tₙ`.
    pub fn eq_concat(v: StrVar, parts: Vec<Term>) -> Formula {
        Formula::Atom(Atom::EqConcat(v, parts))
    }

    /// `b = value`.
    pub fn bool_is(b: BoolVar, value: bool) -> Formula {
        Formula::Atom(Atom::Bool(b, value))
    }

    /// Counts atoms (for statistics and budgeting).
    pub fn atom_count(&self) -> usize {
        match self {
            Formula::Atom(_) => 1,
            Formula::And(items) | Formula::Or(items) => items.iter().map(Formula::atom_count).sum(),
        }
    }

    /// Approximate resident size in bytes, for cache byte budgets.
    ///
    /// Counts per-node overhead plus owned literal text; `Arc`'d
    /// regexes count only as a pointer since the automata behind them
    /// are shared (and budgeted by their own caches).
    pub fn approx_bytes(&self) -> usize {
        fn term_bytes(t: &Term) -> usize {
            match t {
                Term::Var(_) => std::mem::size_of::<Term>(),
                Term::Lit(s) => std::mem::size_of::<Term>() + s.len(),
            }
        }
        let node = std::mem::size_of::<Formula>();
        match self {
            Formula::Atom(a) => {
                node + match a {
                    Atom::EqLit(_, s) | Atom::NeLit(_, s) => s.len(),
                    Atom::EqConcat(_, parts) => parts.iter().map(term_bytes).sum(),
                    _ => 0,
                }
            }
            Formula::And(items) | Formula::Or(items) => {
                node + items.iter().map(Formula::approx_bytes).sum::<usize>()
            }
        }
    }

    /// The formula with every variable shifted by the given offsets —
    /// the counterpart of [`crate::VarPool::absorb`] for rebasing a
    /// formula built against a private pool into another pool.
    pub fn offset_vars(&self, str_offset: u32, bool_offset: u32) -> Formula {
        match self {
            Formula::Atom(a) => Formula::Atom(offset_atom(a, str_offset, bool_offset)),
            Formula::And(items) => Formula::And(
                items
                    .iter()
                    .map(|f| f.offset_vars(str_offset, bool_offset))
                    .collect(),
            ),
            Formula::Or(items) => Formula::Or(
                items
                    .iter()
                    .map(|f| f.offset_vars(str_offset, bool_offset))
                    .collect(),
            ),
        }
    }

    /// Counts `Or` nodes (proxy for boolean search breadth).
    pub fn or_count(&self) -> usize {
        match self {
            Formula::Atom(_) => 0,
            Formula::And(items) => items.iter().map(Formula::or_count).sum(),
            Formula::Or(items) => 1 + items.iter().map(Formula::or_count).sum::<usize>(),
        }
    }
}

fn offset_atom(atom: &Atom, s: u32, b: u32) -> Atom {
    let term = |t: &Term| match t {
        Term::Var(v) => Term::Var(v.offset_by(s)),
        Term::Lit(lit) => Term::Lit(lit.clone()),
    };
    match atom {
        Atom::InRe(v, re) => Atom::InRe(v.offset_by(s), re.clone()),
        Atom::NotInRe(v, re) => Atom::NotInRe(v.offset_by(s), re.clone()),
        Atom::EqLit(v, lit) => Atom::EqLit(v.offset_by(s), lit.clone()),
        Atom::NeLit(v, lit) => Atom::NeLit(v.offset_by(s), lit.clone()),
        Atom::EqVar(v, u) => Atom::EqVar(v.offset_by(s), u.offset_by(s)),
        Atom::NeVar(v, u) => Atom::NeVar(v.offset_by(s), u.offset_by(s)),
        Atom::EqConcat(v, parts) => {
            Atom::EqConcat(v.offset_by(s), parts.iter().map(term).collect())
        }
        Atom::Bool(flag, value) => Atom::Bool(flag.offset_by(b), *value),
        Atom::True => Atom::True,
        Atom::False => Atom::False,
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::And(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Formula::Or(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::VarPool;

    #[test]
    fn and_simplifies_constants() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::and(vec![Formula::top(), Formula::eq_lit(v, "x")]);
        assert_eq!(f, Formula::eq_lit(v, "x"));
        let f = Formula::and(vec![Formula::bottom(), Formula::eq_lit(v, "x")]);
        assert_eq!(f, Formula::bottom());
    }

    #[test]
    fn or_simplifies_constants() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::or(vec![Formula::bottom(), Formula::eq_lit(v, "x")]);
        assert_eq!(f, Formula::eq_lit(v, "x"));
        let f = Formula::or(vec![Formula::top(), Formula::eq_lit(v, "x")]);
        assert_eq!(f, Formula::top());
    }

    #[test]
    fn nested_flattening() {
        let mut pool = VarPool::new();
        let a = pool.fresh_str("a");
        let b = pool.fresh_str("b");
        let f = Formula::and(vec![
            Formula::and(vec![Formula::eq_lit(a, "1"), Formula::eq_lit(b, "2")]),
            Formula::eq_var(a, b),
        ]);
        match f {
            Formula::And(items) => assert_eq!(items.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn atom_and_or_counts() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::or(vec![
            Formula::eq_lit(v, "a"),
            Formula::and(vec![Formula::eq_lit(v, "b"), Formula::ne_lit(v, "c")]),
        ]);
        assert_eq!(f.atom_count(), 3);
        assert_eq!(f.or_count(), 1);
    }

    #[test]
    fn offset_vars_shifts_every_variable_kind() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let u = pool.fresh_str("u");
        let b = pool.fresh_bool("b");
        let f = Formula::and(vec![
            Formula::eq_concat(v, vec![Term::lit("a"), Term::Var(u)]),
            Formula::bool_is(b, true),
            Formula::ne_var(v, u),
        ]);
        let shifted = f.offset_vars(10, 3);
        let expected = Formula::and(vec![
            Formula::eq_concat(
                v.offset_by(10),
                vec![Term::lit("a"), Term::Var(u.offset_by(10))],
            ),
            Formula::bool_is(b.offset_by(3), true),
            Formula::ne_var(v.offset_by(10), u.offset_by(10)),
        ]);
        assert_eq!(shifted, expected);
    }

    #[test]
    fn display_is_readable() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::eq_concat(v, vec![Term::lit("a"), Term::Var(v)]);
        assert_eq!(f.to_string(), "s0 = \"a\" ++ s0");
    }
}

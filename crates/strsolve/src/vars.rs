//! Variables and terms of the string constraint language.

use std::fmt;

/// A string variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrVar(pub(crate) u32);

/// A boolean variable (used for capture-definedness flags, the paper's
/// `C ≠ ⊥` tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoolVar(pub(crate) u32);

impl StrVar {
    /// Raw index (stable within one [`VarPool`]).
    pub fn index(self) -> u32 {
        self.0
    }

    /// The variable shifted by `by` indices — the pool-rebasing
    /// primitive used when a formula built against one pool is grafted
    /// onto another (see [`VarPool::absorb`]).
    pub fn offset_by(self, by: u32) -> StrVar {
        StrVar(self.0 + by)
    }
}

impl BoolVar {
    /// Raw index (stable within one [`VarPool`]).
    pub fn index(self) -> u32 {
        self.0
    }

    /// The variable shifted by `by` indices (see [`StrVar::offset_by`]).
    pub fn offset_by(self, by: u32) -> BoolVar {
        BoolVar(self.0 + by)
    }
}

impl fmt::Display for StrVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for BoolVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// One element of a concatenation: a variable or a literal string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A string variable.
    Var(StrVar),
    /// A constant string.
    Lit(String),
}

impl Term {
    /// Convenience constructor for literal terms.
    pub fn lit(s: impl Into<String>) -> Term {
        Term::Lit(s.into())
    }
}

impl From<StrVar> for Term {
    fn from(v: StrVar) -> Term {
        Term::Var(v)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Lit(s) => write!(f, "{s:?}"),
        }
    }
}

/// Allocator for fresh variables, with debug names.
///
/// # Examples
///
/// ```
/// use strsolve::VarPool;
///
/// let mut pool = VarPool::new();
/// let w = pool.fresh_str("w");
/// let c1 = pool.fresh_str("C1");
/// assert_ne!(w, c1);
/// assert_eq!(pool.name(w), "w");
/// ```
#[derive(Debug, Default, Clone)]
pub struct VarPool {
    str_names: Vec<String>,
    bool_names: Vec<String>,
}

impl VarPool {
    /// Creates an empty pool.
    pub fn new() -> VarPool {
        VarPool::default()
    }

    /// Allocates a fresh string variable.
    pub fn fresh_str(&mut self, name: impl Into<String>) -> StrVar {
        self.str_names.push(name.into());
        StrVar((self.str_names.len() - 1) as u32)
    }

    /// Allocates a fresh boolean variable.
    pub fn fresh_bool(&mut self, name: impl Into<String>) -> BoolVar {
        self.bool_names.push(name.into());
        BoolVar((self.bool_names.len() - 1) as u32)
    }

    /// Debug name of a string variable.
    pub fn name(&self, v: StrVar) -> &str {
        &self.str_names[v.0 as usize]
    }

    /// Debug name of a boolean variable.
    pub fn bool_name(&self, v: BoolVar) -> &str {
        &self.bool_names[v.0 as usize]
    }

    /// Number of string variables allocated.
    pub fn str_count(&self) -> usize {
        self.str_names.len()
    }

    /// Number of boolean variables allocated.
    pub fn bool_count(&self) -> usize {
        self.bool_names.len()
    }

    /// Appends every variable of `other` to this pool, returning the
    /// `(string, boolean)` index offsets at which they were grafted.
    ///
    /// A formula built against `other` refers to this pool's copies
    /// after [`crate::Formula::offset_vars`] with the same offsets —
    /// this is how cached models built in a private pool are rebased
    /// into a query's pool.
    pub fn absorb(&mut self, other: &VarPool) -> (u32, u32) {
        let str_offset = self.str_names.len() as u32;
        let bool_offset = self.bool_names.len() as u32;
        self.str_names.extend(other.str_names.iter().cloned());
        self.bool_names.extend(other.bool_names.iter().cloned());
        (str_offset, bool_offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_are_distinct() {
        let mut pool = VarPool::new();
        let a = pool.fresh_str("a");
        let b = pool.fresh_str("b");
        assert_ne!(a, b);
        assert_eq!(pool.str_count(), 2);
    }

    #[test]
    fn names_preserved() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("input");
        let b = pool.fresh_bool("C1.defined");
        assert_eq!(pool.name(v), "input");
        assert_eq!(pool.bool_name(b), "C1.defined");
    }

    #[test]
    fn absorb_rebases_names() {
        let mut a = VarPool::new();
        a.fresh_str("x");
        let mut b = VarPool::new();
        let v = b.fresh_str("y");
        let flag = b.fresh_bool("y.defined");
        let (s, bo) = a.absorb(&b);
        assert_eq!((s, bo), (1, 0));
        assert_eq!(a.name(v.offset_by(s)), "y");
        assert_eq!(a.bool_name(flag.offset_by(bo)), "y.defined");
        assert_eq!(a.str_count(), 2);
    }

    #[test]
    fn term_display() {
        assert_eq!(Term::lit("ab").to_string(), "\"ab\"");
        assert_eq!(Term::Var(StrVar(3)).to_string(), "s3");
    }
}

//! Satisfying assignments.

use std::collections::HashMap;

use crate::vars::{BoolVar, StrVar};

/// A satisfying assignment returned by the solver.
///
/// Every string variable mentioned in the formula is mapped to a
/// concrete string; boolean (definedness) variables to `bool`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    strings: HashMap<StrVar, String>,
    bools: HashMap<BoolVar, bool>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Model {
        Model::default()
    }

    /// The value of a string variable.
    pub fn get_str(&self, v: StrVar) -> Option<&str> {
        self.strings.get(&v).map(String::as_str)
    }

    /// The value of a boolean variable (defaults to `false` when the
    /// variable was unconstrained).
    pub fn get_bool(&self, v: BoolVar) -> bool {
        self.bools.get(&v).copied().unwrap_or(false)
    }

    /// Sets a string variable.
    pub fn set_str(&mut self, v: StrVar, value: impl Into<String>) {
        self.strings.insert(v, value.into());
    }

    /// Sets a boolean variable.
    pub fn set_bool(&mut self, v: BoolVar, value: bool) {
        self.bools.insert(v, value);
    }

    /// Number of assigned string variables.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty() && self.bools.is_empty()
    }

    /// Iterates over string assignments.
    pub fn iter_strings(&self) -> impl Iterator<Item = (StrVar, &str)> + '_ {
        self.strings.iter().map(|(&v, s)| (v, s.as_str()))
    }

    /// The value of a boolean variable, `None` when unassigned
    /// (distinct from [`Model::get_bool`]'s `false` default — used by
    /// the result cache to store exactly what the solver assigned).
    pub fn try_get_bool(&self, v: BoolVar) -> Option<bool> {
        self.bools.get(&v).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::VarPool;

    #[test]
    fn set_and_get() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let b = pool.fresh_bool("b");
        let mut m = Model::new();
        m.set_str(v, "hello");
        m.set_bool(b, true);
        assert_eq!(m.get_str(v), Some("hello"));
        assert!(m.get_bool(b));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn unconstrained_bool_defaults_false() {
        let mut pool = VarPool::new();
        let b = pool.fresh_bool("b");
        let m = Model::new();
        assert!(!m.get_bool(b));
    }
}

//! Satisfying assignments, and the independent model evaluator.

use std::collections::HashMap;
use std::sync::Arc;

use automata::{Alphabet, CRegex, CharSet, Dfa};

use crate::formula::{Atom, Formula};
use crate::vars::{BoolVar, StrVar, Term};

/// A satisfying assignment returned by the solver.
///
/// Every string variable mentioned in the formula is mapped to a
/// concrete string; boolean (definedness) variables to `bool`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    strings: HashMap<StrVar, String>,
    bools: HashMap<BoolVar, bool>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Model {
        Model::default()
    }

    /// The value of a string variable.
    pub fn get_str(&self, v: StrVar) -> Option<&str> {
        self.strings.get(&v).map(String::as_str)
    }

    /// The value of a boolean variable (defaults to `false` when the
    /// variable was unconstrained).
    pub fn get_bool(&self, v: BoolVar) -> bool {
        self.bools.get(&v).copied().unwrap_or(false)
    }

    /// Sets a string variable.
    pub fn set_str(&mut self, v: StrVar, value: impl Into<String>) {
        self.strings.insert(v, value.into());
    }

    /// Sets a boolean variable.
    pub fn set_bool(&mut self, v: BoolVar, value: bool) {
        self.bools.insert(v, value);
    }

    /// Number of assigned string variables.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty() && self.bools.is_empty()
    }

    /// Iterates over string assignments.
    pub fn iter_strings(&self) -> impl Iterator<Item = (StrVar, &str)> + '_ {
        self.strings.iter().map(|(&v, s)| (v, s.as_str()))
    }

    /// The value of a boolean variable, `None` when unassigned
    /// (distinct from [`Model::get_bool`]'s `false` default — used by
    /// the result cache to store exactly what the solver assigned).
    pub fn try_get_bool(&self, v: BoolVar) -> Option<bool> {
        self.bools.get(&v).copied()
    }

    /// Evaluates `formula` directly against this model, independently
    /// of the solver's propagation machinery: word equations by string
    /// concatenation, regular membership by a freshly built DFA.
    ///
    /// Every `Sat` the solver returns must pass this check — it is the
    /// model-soundness oracle the property tests and the differential
    /// fuzzer verify against. String atoms over *unassigned* variables
    /// evaluate pessimistically to `false`, so a model that forgot an
    /// assignment fails rather than vacuously passes.
    pub fn satisfies(&self, formula: &Formula) -> bool {
        match formula {
            Formula::And(items) => items.iter().all(|f| self.satisfies(f)),
            Formula::Or(items) => items.iter().any(|f| self.satisfies(f)),
            Formula::Atom(atom) => self.satisfies_atom(atom),
        }
    }

    fn satisfies_atom(&self, atom: &Atom) -> bool {
        let term_value = |t: &Term| match t {
            Term::Var(v) => self.get_str(*v).map(str::to_string),
            Term::Lit(s) => Some(s.clone()),
        };
        match atom {
            Atom::True => true,
            Atom::False => false,
            Atom::Bool(b, value) => self.get_bool(*b) == *value,
            Atom::EqLit(v, lit) => self.get_str(*v) == Some(lit.as_str()),
            Atom::NeLit(v, lit) => self.get_str(*v).is_some_and(|value| value != lit.as_str()),
            Atom::EqVar(v, u) => self.get_str(*v).is_some() && self.get_str(*v) == self.get_str(*u),
            Atom::NeVar(v, u) => match (self.get_str(*v), self.get_str(*u)) {
                (Some(a), Some(b)) => a != b,
                _ => false,
            },
            Atom::InRe(v, re) => self.get_str(*v).is_some_and(|value| re_contains(re, value)),
            Atom::NotInRe(v, re) => self
                .get_str(*v)
                .is_some_and(|value| !re_contains(re, value)),
            Atom::EqConcat(v, parts) => {
                let Some(lhs) = self.get_str(*v) else {
                    return false;
                };
                let mut rhs = String::new();
                for part in parts {
                    match term_value(part) {
                        Some(value) => rhs.push_str(&value),
                        None => return false,
                    }
                }
                lhs == rhs
            }
        }
    }
}

/// Direct DFA-based membership check over an alphabet refined with the
/// word's own characters — independent of any solver-held automata.
/// Public so the property tests and the differential fuzzer share the
/// exact evaluator [`Model::satisfies`] uses, rather than re-deriving
/// their own copies of the alphabet-refinement recipe.
pub fn re_contains(re: &CRegex, word: &str) -> bool {
    let mut sets = Vec::new();
    re.collect_sets(&mut sets);
    for c in word.chars() {
        sets.push(CharSet::single(c));
    }
    let alphabet = Arc::new(Alphabet::from_sets(&sets));
    Dfa::from_cregex(re, &alphabet).contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::VarPool;

    #[test]
    fn set_and_get() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let b = pool.fresh_bool("b");
        let mut m = Model::new();
        m.set_str(v, "hello");
        m.set_bool(b, true);
        assert_eq!(m.get_str(v), Some("hello"));
        assert!(m.get_bool(b));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn unconstrained_bool_defaults_false() {
        let mut pool = VarPool::new();
        let b = pool.fresh_bool("b");
        let m = Model::new();
        assert!(!m.get_bool(b));
    }
}

//! Assumption-stack (push/pop) solving for trace flip families.
//!
//! The flip queries of one DSE trace share long conjunction prefixes:
//! flip `k` asks `tie₀ ∧ … ∧ tieₖ₋₁ ∧ ¬tieₖ`, so siblings differ only
//! in their final assumption. A [`SolveSession`] holds that shared
//! prefix as a stack of *frames* — one per taken clause — and
//! canonicalizes each frame's conjuncts exactly once. Solving a flip
//! then assembles the query from the cached canonical prefix plus a
//! per-flip *assumption* (the flipped tie and its constraint models),
//! skipping the repeated renumbering pass and producing a
//! [`CanonicalQuery`] that is **byte-identical** to what a from-scratch
//! [`crate::cache::canonical_query`] over the whole conjunction would
//! return. Identical keys mean the session shares the
//! [`crate::cache::QueryCache`] with scratch solves and with sibling
//! sessions — a
//! child trace re-posing its parent's prefix flips hits the same
//! entries either way.
//!
//! # Retraction rules
//!
//! Everything carried across sibling flips is either immutable or
//! scoped to a frame:
//!
//! 1. **Canonical prefix frames** — [`SolveSession::pop`] truncates the
//!    conjunct list, the canonical conjunct list, and the renumbering
//!    state to the previous frame's watermarks; nothing pushed after
//!    that watermark survives.
//! 2. **Compiled DFAs, alphabets, folded products** — pure functions of
//!    regex and alphabet, shared via the solver's
//!    [`crate::DfaTables`]/DFA cache; reuse can never change a verdict,
//!    so no retraction is needed.
//! 3. **Cached verdicts** (including whole CEGAR refinement chains, see
//!    `expose_core::cegar::CegarCache`) are keyed by the *complete*
//!    canonical problem plus the solver fingerprint, so they can never
//!    be replayed for a different assumption — retraction-free by
//!    construction.
//! 4. **Learned length intervals** are *not* carried: a flip's
//!    conjunction is a superset of the prefix, so intervals recomputed
//!    from the full conjunction are always at least as tight as any
//!    prefix-derived ones — carrying them would add bookkeeping and no
//!    pruning. The length-abstraction pass therefore runs per query,
//!    inside the solve.
//!
//! The per-flip *assumption* (flipped tie, constraint model formulas,
//! CEGAR lemmas learned during its refinement loop) lives only in the
//! assembled query and dies with it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cache::{canonical_query, CanonicalQuery, Canonicalizer};
use crate::formula::{Atom, Formula};
use crate::solver::{Outcome, Solver};
use crate::stats::SolveStats;

/// Cumulative counters for one session's lifetime, snapshot via
/// [`SolveSession::session_stats`]. Unlike [`SolveStats`] (per solve),
/// these accumulate across every query assembled against the session —
/// the numbers a service `stats` probe reports for an active wire
/// session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries assembled against this session (one per posed flip,
    /// counting CEGAR verdict replays but not refinement iterations).
    pub solves: u64,
    /// Total prefix frames reused across those assemblies.
    pub prefix_reuse_hits: u64,
}

#[derive(Debug, Default)]
struct SessionCounters {
    solves: AtomicU64,
    prefix_reuse_hits: AtomicU64,
}

/// Watermarks recorded after one pushed frame.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Conjunct count after this frame.
    conjuncts: usize,
    /// Canonical string variables assigned after this frame.
    strs: usize,
    /// Canonical boolean variables assigned after this frame.
    bools: usize,
    /// True when a top-level `⊥` was pushed at or before this frame
    /// (the whole conjunction is then `⊥` at any deeper depth, exactly
    /// like [`Formula::and`]'s short-circuit).
    has_false: bool,
}

const ROOT: Frame = Frame {
    conjuncts: 0,
    strs: 0,
    bools: 0,
    has_false: false,
};

/// One flip query assembled against a session prefix: the conjunction
/// in the caller's variable space plus its canonicalization, ready for
/// a pre-keyed cache lookup.
#[derive(Debug, Clone)]
pub struct SessionQuery {
    /// The assembled conjunction in the caller's variable space —
    /// exactly what `Formula::and(prefix ++ assumption)` returns.
    pub original: Formula,
    /// Its canonicalization — exactly what
    /// [`crate::cache::canonical_query`] on [`SessionQuery::original`]
    /// returns, assembled without re-renumbering the prefix.
    pub canonical: CanonicalQuery,
    reused_frames: u64,
}

impl SessionQuery {
    /// Prefix frames whose canonical form was reused (not re-derived)
    /// when assembling this query.
    pub fn reused_frames(&self) -> u64 {
        self.reused_frames
    }
}

/// An incremental solver over a stack of shared conjunction frames.
///
/// Build the stack with [`SolveSession::push`] (one frame per taken
/// trace clause), then solve each flip with [`SolveSession::solve_at`]:
/// the query at depth `d` is the conjunction of frames `0..d` plus the
/// flip's assumption formulas. Assembly reuses the canonical prefix;
/// solving routes through the solver's [`crate::QueryCache`] (when
/// attached) under the same key a from-scratch solve would use. See the
/// module docs for the retraction rules.
///
/// Solving takes `&self`, so once the stack is built the session can be
/// shared across flip worker threads.
///
/// # Examples
///
/// ```
/// use strsolve::{session::SolveSession, Formula, Solver, VarPool};
///
/// let mut pool = VarPool::new();
/// let v = pool.fresh_str("v");
/// let mut session = SolveSession::new(Solver::default());
/// session.push(vec![Formula::eq_lit(v, "hello")]);
/// // Flip query at depth 1: prefix ∧ assumption.
/// let (outcome, stats) = session.solve_at(1, &[Formula::ne_lit(v, "world")]);
/// assert!(outcome.is_sat());
/// assert_eq!(stats.prefix_reuse_hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SolveSession {
    solver: Solver,
    /// The flattened conjunct stream in caller variable space.
    conjuncts: Vec<Formula>,
    /// Canonical counterparts, 1:1 with `conjuncts`.
    canon_conjuncts: Vec<Formula>,
    /// Renumbering state after all pushed frames.
    canon: Canonicalizer,
    frames: Vec<Frame>,
    /// Lifetime counters, shared by clones of this session (a clone is
    /// the same logical session viewed from another worker thread).
    counters: Arc<SessionCounters>,
}

impl SolveSession {
    /// Creates an empty session around a solver (typically a clone
    /// sharing the run's caches).
    pub fn new(solver: Solver) -> SolveSession {
        SolveSession {
            solver,
            conjuncts: Vec::new(),
            canon_conjuncts: Vec::new(),
            canon: Canonicalizer::new(),
            frames: Vec::new(),
            counters: Arc::new(SessionCounters::default()),
        }
    }

    /// Snapshot of the session's cumulative counters: queries assembled
    /// and prefix frames reused, across the session's whole lifetime
    /// (pops do not rewind them).
    pub fn session_stats(&self) -> SessionStats {
        SessionStats {
            solves: self.counters.solves.load(Ordering::Relaxed),
            prefix_reuse_hits: self.counters.prefix_reuse_hits.load(Ordering::Relaxed),
        }
    }

    /// The underlying solver (for refinement solves that must bypass
    /// the result cache).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Number of pushed frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Pushes one frame of conjuncts onto the stack.
    ///
    /// The items are folded into the conjunct stream with
    /// [`Formula::and`]'s exact semantics — `⊤` dropped, a top-level
    /// `⊥` poisoning every deeper depth, one level of `And` flattening
    /// — and canonicalized against the state left by earlier frames.
    pub fn push(&mut self, items: Vec<Formula>) {
        let mut has_false = self.frames.last().is_some_and(|f| f.has_false);
        for item in items {
            match item {
                Formula::Atom(Atom::True) => {}
                Formula::Atom(Atom::False) => has_false = true,
                Formula::And(inner) => {
                    for f in inner {
                        let c = self.canon.formula(&f);
                        self.conjuncts.push(f);
                        self.canon_conjuncts.push(c);
                    }
                }
                other => {
                    let c = self.canon.formula(&other);
                    self.conjuncts.push(other);
                    self.canon_conjuncts.push(c);
                }
            }
        }
        self.frames.push(Frame {
            conjuncts: self.conjuncts.len(),
            strs: self.canon.str_vars().len(),
            bools: self.canon.bool_vars().len(),
            has_false,
        });
    }

    /// Retracts the top frame: conjuncts, canonical conjuncts and
    /// renumbering state are truncated to the previous frame's
    /// watermarks (retraction rule 1).
    ///
    /// # Panics
    ///
    /// Panics when no frame is pushed.
    pub fn pop(&mut self) {
        self.frames.pop().expect("pop on an empty session");
        let prev = self.frames.last().copied().unwrap_or(ROOT);
        self.conjuncts.truncate(prev.conjuncts);
        self.canon_conjuncts.truncate(prev.conjuncts);
        self.canon = Canonicalizer::seeded(
            &self.canon.str_vars()[..prev.strs],
            &self.canon.bool_vars()[..prev.bools],
        );
    }

    /// Assembles the query "frames `0..depth` plus `assumption`".
    ///
    /// Both the original-space conjunction and its canonicalization are
    /// byte-identical to what a from-scratch
    /// `canonical_query(&Formula::and(...))` over the same conjuncts
    /// would produce; only the prefix renumbering work is skipped.
    ///
    /// # Panics
    ///
    /// Panics when `depth` exceeds [`SolveSession::depth`].
    pub fn assemble(&self, depth: usize, assumption: &[Formula]) -> SessionQuery {
        assert!(depth <= self.frames.len(), "assemble beyond session depth");
        self.counters.solves.fetch_add(1, Ordering::Relaxed);
        self.counters
            .prefix_reuse_hits
            .fetch_add(depth as u64, Ordering::Relaxed);
        let frame = if depth == 0 {
            ROOT
        } else {
            self.frames[depth - 1]
        };
        // Flatten the assumption with Formula::and's semantics.
        let mut extra: Vec<&Formula> = Vec::new();
        let mut has_false = frame.has_false;
        for item in assumption {
            match item {
                Formula::Atom(Atom::True) => {}
                Formula::Atom(Atom::False) => has_false = true,
                Formula::And(inner) => extra.extend(inner.iter()),
                other => extra.push(other),
            }
        }
        if has_false {
            return SessionQuery {
                original: Formula::bottom(),
                canonical: canonical_query(&Formula::bottom()),
                reused_frames: depth as u64,
            };
        }

        let prefix = &self.conjuncts[..frame.conjuncts];
        let canon_prefix = &self.canon_conjuncts[..frame.conjuncts];
        let mut canon = Canonicalizer::seeded(
            &self.canon.str_vars()[..frame.strs],
            &self.canon.bool_vars()[..frame.bools],
        );
        let canon_extra: Vec<Formula> = extra.iter().map(|f| canon.formula(f)).collect();

        let total = prefix.len() + extra.len();
        let (original, formula) = match total {
            0 => (Formula::top(), Formula::top()),
            1 => match prefix.first() {
                Some(single) => (single.clone(), canon_prefix[0].clone()),
                None => (extra[0].clone(), canon_extra[0].clone()),
            },
            _ => (
                Formula::And(
                    prefix
                        .iter()
                        .cloned()
                        .chain(extra.iter().map(|f| (*f).clone()))
                        .collect(),
                ),
                Formula::And(canon_prefix.iter().cloned().chain(canon_extra).collect()),
            ),
        };
        SessionQuery {
            original,
            canonical: CanonicalQuery { formula, canon },
            reused_frames: depth as u64,
        }
    }

    /// Solves an assembled query: a pre-keyed [`crate::QueryCache`]
    /// lookup when the solver carries a cache, a plain uncached solve
    /// otherwise. The returned stats count the reused prefix frames as
    /// [`SolveStats::prefix_reuse_hits`].
    pub fn solve_assembled(&self, query: &SessionQuery) -> (Outcome, SolveStats) {
        let (outcome, mut stats) = match self.solver.cache() {
            Some(cache) => cache.solve_through_canonical(
                &query.canonical,
                &query.original,
                self.solver.config(),
                |f| self.solver.solve_uncached(f),
            ),
            None => self.solver.solve_uncached(&query.original),
        };
        stats.prefix_reuse_hits += query.reused_frames;
        (outcome, stats)
    }

    /// [`SolveSession::assemble`] followed by
    /// [`SolveSession::solve_assembled`].
    pub fn solve_at(&self, depth: usize, assumption: &[Formula]) -> (Outcome, SolveStats) {
        let query = self.assemble(depth, assumption);
        self.solve_assembled(&query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::QueryCache;
    use crate::config::SolverConfig;
    use crate::vars::{Term, VarPool};
    use automata::{CRegex, CharSet};
    use std::sync::Arc;

    /// A small structured corpus: prefix frames + assumptions built
    /// from one pool, exercising concat equations, regex membership
    /// and literal (dis)equalities.
    fn corpus() -> (Vec<Vec<Formula>>, Vec<Vec<Formula>>) {
        let mut pool = VarPool::new();
        let w = pool.fresh_str("w");
        let p1 = pool.fresh_str("p1");
        let p2 = pool.fresh_str("p2");
        let q = pool.fresh_str("q");
        let frames = vec![
            vec![Formula::eq_concat(
                w,
                vec![Term::Var(p1), Term::lit("-"), Term::Var(p2)],
            )],
            vec![
                Formula::in_re(p1, CRegex::plus(CRegex::set(CharSet::range('a', 'c')))),
                Formula::top(), // dropped by and()
            ],
            vec![Formula::and(vec![
                Formula::in_re(p2, CRegex::plus(CRegex::set(CharSet::range('0', '9')))),
                Formula::ne_lit(p2, "0"),
            ])],
        ];
        let assumptions = vec![
            vec![Formula::ne_lit(w, "a-1")],
            vec![Formula::eq_lit(q, "z"), Formula::eq_var(q, p1)],
            vec![Formula::not_in_re(p1, CRegex::lit("a"))],
        ];
        (frames, assumptions)
    }

    fn scratch_conjunction(
        frames: &[Vec<Formula>],
        depth: usize,
        assumption: &[Formula],
    ) -> Formula {
        let mut items: Vec<Formula> = frames[..depth].iter().flatten().cloned().collect();
        items.extend(assumption.iter().cloned());
        Formula::and(items)
    }

    #[test]
    fn assembled_queries_match_scratch_bytes() {
        let (frames, assumptions) = corpus();
        let mut session = SolveSession::new(Solver::default());
        for frame in &frames {
            session.push(frame.clone());
        }
        for depth in 0..=frames.len() {
            for assumption in &assumptions {
                let scratch = scratch_conjunction(&frames, depth, assumption);
                let scratch_canon = canonical_query(&scratch);
                let q = session.assemble(depth, assumption);
                assert_eq!(q.original, scratch, "original at depth {depth}");
                assert_eq!(
                    q.canonical.formula, scratch_canon.formula,
                    "canonical formula at depth {depth}"
                );
                assert_eq!(q.canonical.str_vars(), scratch_canon.str_vars());
                assert_eq!(q.canonical.bool_vars(), scratch_canon.bool_vars());
            }
        }
    }

    #[test]
    fn session_and_scratch_share_cache_entries() {
        // A scratch solve primes the cache; the session's pre-keyed
        // lookup must hit the very same entry (identical canonical
        // keys), and vice versa.
        let (frames, assumptions) = corpus();
        let cache = Arc::new(QueryCache::new(64));
        let solver = Solver::default().with_cache(cache.clone());
        let mut session = SolveSession::new(solver.clone());
        for frame in &frames {
            session.push(frame.clone());
        }

        let scratch = scratch_conjunction(&frames, 3, &assumptions[0]);
        let (scratch_outcome, _) = solver.solve(&scratch);
        let misses_after_prime = cache.misses();

        let (session_outcome, stats) = session.solve_at(3, &assumptions[0]);
        assert_eq!(cache.misses(), misses_after_prime, "session must hit");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.prefix_reuse_hits, 3);
        assert_eq!(session_outcome, scratch_outcome);
    }

    #[test]
    fn verdicts_and_models_match_scratch() {
        let (frames, assumptions) = corpus();
        let uncached = Solver::new(SolverConfig::default());
        let mut session = SolveSession::new(uncached.clone());
        for frame in &frames {
            session.push(frame.clone());
        }
        for depth in 0..=frames.len() {
            for assumption in &assumptions {
                let scratch = scratch_conjunction(&frames, depth, assumption);
                let (expected, _) = uncached.solve(&scratch);
                let (got, _) = session.solve_at(depth, assumption);
                assert_eq!(got, expected, "depth {depth}");
            }
        }
    }

    #[test]
    fn pop_retracts_to_previous_watermark() {
        let (frames, assumptions) = corpus();
        let mut session = SolveSession::new(Solver::default());
        session.push(frames[0].clone());
        let baseline = session.assemble(1, &assumptions[0]);

        session.push(frames[1].clone());
        session.push(frames[2].clone());
        session.pop();
        session.pop();
        assert_eq!(session.depth(), 1);
        let retracted = session.assemble(1, &assumptions[0]);
        assert_eq!(retracted.original, baseline.original);
        assert_eq!(retracted.canonical.formula, baseline.canonical.formula);

        // The retracted slot can be refilled with different content.
        session.push(vec![Formula::eq_lit(
            VarPool::new().fresh_str("fresh"),
            "x",
        )]);
        assert_eq!(session.depth(), 2);
    }

    #[test]
    fn session_stats_accumulate_across_solves_and_clones() {
        let (frames, assumptions) = corpus();
        let mut session = SolveSession::new(Solver::default());
        for frame in &frames {
            session.push(frame.clone());
        }
        assert_eq!(session.session_stats(), SessionStats::default());

        session.solve_at(3, &assumptions[0]);
        session.solve_at(1, &assumptions[1]);
        let stats = session.session_stats();
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.prefix_reuse_hits, 4);

        // A clone is the same logical session: its solves land in the
        // shared counters, and pops do not rewind them.
        let clone = session.clone();
        clone.solve_at(2, &assumptions[2]);
        session.pop();
        let stats = session.session_stats();
        assert_eq!(stats.solves, 3);
        assert_eq!(stats.prefix_reuse_hits, 6);
    }

    #[test]
    fn top_level_false_poisons_deeper_depths() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let mut session = SolveSession::new(Solver::default());
        session.push(vec![Formula::eq_lit(v, "a")]);
        session.push(vec![Formula::bottom()]);
        let clean = session.assemble(1, &[]);
        assert_eq!(clean.original, Formula::eq_lit(v, "a"));
        let poisoned = session.assemble(2, &[Formula::ne_lit(v, "b")]);
        assert_eq!(poisoned.original, Formula::bottom());
        let (outcome, _) = session.solve_at(2, &[]);
        assert_eq!(outcome, Outcome::Unsat);
    }
}

//! Differential suite for the assumption-stack session: over a seeded
//! random-formula corpus (the same constraint families the
//! capturing-language models emit), every split of a conjunction into
//! prefix frames plus an assumption must assemble to the byte-identical
//! formula and canonicalization a from-scratch solve would use, yield
//! the identical verdict **and model**, and share query-cache entries
//! with scratch solves.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use automata::{CRegex, CharSet};
use strsolve::{
    canonical_query, Formula, QueryCache, SolveSession, Solver, SolverConfig, StrVar, Term, VarPool,
};

/// A small random classical regex over {a, b, c}.
fn random_regex(rng: &mut StdRng, depth: usize) -> CRegex {
    let leaf = |rng: &mut StdRng| {
        let options = [
            CRegex::set(CharSet::single('a')),
            CRegex::set(CharSet::single('b')),
            CRegex::set(CharSet::range('a', 'c')),
            CRegex::lit("ab"),
            CRegex::lit("c"),
        ];
        options.choose(rng).expect("nonempty").clone()
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.random_range(0usize..6) {
        0 => CRegex::star(random_regex(rng, depth - 1)),
        1 => CRegex::plus(random_regex(rng, depth - 1)),
        2 => CRegex::opt(random_regex(rng, depth - 1)),
        3 => CRegex::concat(vec![
            random_regex(rng, depth - 1),
            random_regex(rng, depth - 1),
        ]),
        4 => CRegex::alt(vec![
            random_regex(rng, depth - 1),
            random_regex(rng, depth - 1),
        ]),
        _ => leaf(rng),
    }
}

/// A random conjunct list shaped like a DSE flip family: concat
/// equations, memberships, negations, literal (dis)equalities, plus
/// the occasional `⊤`/nested-`And` to exercise the flattening rules.
fn random_conjuncts(rng: &mut StdRng, pool: &mut VarPool) -> Vec<Formula> {
    let vars: Vec<StrVar> = (0..4).map(|i| pool.fresh_str(format!("v{i}"))).collect();
    let literals = ["", "a", "b", "ab", "abc", "cc", "abab"];
    let n = 2 + rng.random_range(0usize..5);
    let mut conjuncts = Vec::new();
    for _ in 0..n {
        let v = *vars.choose(rng).expect("nonempty");
        let u = *vars.choose(rng).expect("nonempty");
        let w = *vars.choose(rng).expect("nonempty");
        let lit = *literals.choose(rng).expect("nonempty");
        conjuncts.push(match rng.random_range(0usize..9) {
            0 => Formula::eq_concat(v, vec![Term::Var(u), Term::lit(lit)]),
            1 => Formula::eq_concat(v, vec![Term::lit(lit), Term::Var(u), Term::Var(u)]),
            2 => Formula::eq_concat(v, vec![Term::Var(u), Term::Var(w)]),
            3 => Formula::in_re(v, random_regex(rng, 2)),
            4 => Formula::not_in_re(v, random_regex(rng, 2)),
            5 => Formula::ne_lit(v, lit),
            6 => Formula::top(),
            7 => Formula::and(vec![Formula::ne_lit(v, lit), Formula::ne_lit(u, "zz")]),
            _ => Formula::eq_lit(v, lit),
        });
    }
    conjuncts
}

/// Builds the session at a random frame split and returns
/// `(session, split, assumption)`.
fn split_into_session<'a>(
    rng: &mut StdRng,
    solver: &Solver,
    conjuncts: &'a [Formula],
) -> (SolveSession, usize, &'a [Formula]) {
    let split = rng.random_range(0usize..=conjuncts.len());
    let mut session = SolveSession::new(solver.clone());
    for c in &conjuncts[..split] {
        session.push(vec![c.clone()]);
    }
    (session, split, &conjuncts[split..])
}

#[test]
fn assembled_queries_match_scratch_over_random_corpus() {
    let solver = Solver::new(SolverConfig::default());
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(0x1c4e ^ seed);
        let mut pool = VarPool::new();
        let conjuncts = random_conjuncts(&mut rng, &mut pool);
        let (session, split, assumption) = split_into_session(&mut rng, &solver, &conjuncts);

        let scratch = Formula::and(conjuncts.clone());
        let scratch_canon = canonical_query(&scratch);
        let q = session.assemble(split, assumption);
        assert_eq!(q.original, scratch, "seed {seed}: original diverged");
        assert_eq!(
            q.canonical.formula, scratch_canon.formula,
            "seed {seed}: canonical formula diverged at split {split}"
        );
        assert_eq!(q.canonical.str_vars(), scratch_canon.str_vars());
        assert_eq!(q.canonical.bool_vars(), scratch_canon.bool_vars());
    }
}

#[test]
fn verdicts_and_models_match_scratch_over_random_corpus() {
    let solver = Solver::new(SolverConfig::default());
    let mut sat = 0usize;
    let mut unsat = 0usize;
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(0x5e55 ^ seed);
        let mut pool = VarPool::new();
        let conjuncts = random_conjuncts(&mut rng, &mut pool);
        let (session, split, assumption) = split_into_session(&mut rng, &solver, &conjuncts);

        let (expected, _) = solver.solve(&Formula::and(conjuncts.clone()));
        let (got, stats) = session.solve_at(split, assumption);
        // Outcome equality covers the model byte-for-byte, not just the
        // sat/unsat verdict.
        assert_eq!(got, expected, "seed {seed}: split {split} diverged");
        assert_eq!(stats.prefix_reuse_hits, split as u64);
        match got {
            strsolve::Outcome::Sat(_) => sat += 1,
            strsolve::Outcome::Unsat => unsat += 1,
            strsolve::Outcome::Unknown => {}
        }
    }
    // The corpus must exercise both verdicts for the diff to mean much.
    assert!(sat >= 50, "only {sat} Sat instances");
    assert!(unsat >= 25, "only {unsat} Unsat instances");
}

#[test]
fn sessions_share_cache_entries_with_scratch_over_random_corpus() {
    let cache = Arc::new(QueryCache::new(4096));
    let solver = Solver::default().with_cache(cache.clone());
    let mut hits_checked = 0usize;
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(0xcac4e ^ seed);
        let mut pool = VarPool::new();
        let conjuncts = random_conjuncts(&mut rng, &mut pool);
        let (session, split, assumption) = split_into_session(&mut rng, &solver, &conjuncts);

        // Scratch primes the cache; the session's pre-keyed lookup must
        // hit the same entry — no new misses.
        let (expected, _) = solver.solve(&Formula::and(conjuncts.clone()));
        let misses_after_prime = cache.misses();
        let (got, stats) = session.solve_at(split, assumption);
        assert_eq!(
            cache.misses(),
            misses_after_prime,
            "seed {seed}: session missed an entry scratch just primed"
        );
        assert_eq!(got, expected, "seed {seed}");
        if stats.cache_hits > 0 {
            hits_checked += 1;
        }
    }
    assert!(hits_checked >= 100, "only {hits_checked} cache hits");
}

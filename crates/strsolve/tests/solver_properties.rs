//! Property tests for the string solver: model soundness (every SAT
//! model satisfies the formula under direct evaluation) and agreement
//! with brute-force enumeration on small finite instances.

use automata::{CRegex, CharSet};
use proptest::prelude::*;
use strsolve::{Formula, Outcome, Solver, Term, VarPool};

/// Evaluates a membership constraint directly via the DFA layer.
fn re_contains(re: &CRegex, word: &str) -> bool {
    use automata::{Alphabet, Dfa};
    use std::sync::Arc;
    let mut sets = Vec::new();
    re.collect_sets(&mut sets);
    for c in word.chars() {
        sets.push(CharSet::single(c));
    }
    let alphabet = Arc::new(Alphabet::from_sets(&sets));
    Dfa::from_cregex(re, &alphabet).contains(word)
}

fn small_re(i: usize) -> CRegex {
    match i % 5 {
        0 => CRegex::plus(CRegex::set(CharSet::single('a'))),
        1 => CRegex::star(CRegex::set(CharSet::range('a', 'b'))),
        2 => CRegex::alt(vec![CRegex::lit("ab"), CRegex::lit("ba")]),
        3 => CRegex::concat(vec![CRegex::lit("x"), CRegex::opt(CRegex::lit("y"))]),
        _ => CRegex::repeat(CRegex::set(CharSet::single('c')), 1, Some(3)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SAT models satisfy every constraint under direct evaluation.
    #[test]
    fn models_satisfy_constraints(re_idx in 0usize..5, lit in "[abcxy]{0,4}") {
        let mut pool = VarPool::new();
        let w = pool.fresh_str("w");
        let a = pool.fresh_str("a");
        let re = small_re(re_idx);
        let f = Formula::and(vec![
            Formula::eq_concat(w, vec![Term::Var(a), Term::lit(lit.clone())]),
            Formula::in_re(a, re.clone()),
        ]);
        let (outcome, _) = Solver::default().solve(&f);
        if let Outcome::Sat(model) = outcome {
            let wv = model.get_str(w).expect("assigned").to_string();
            let av = model.get_str(a).expect("assigned").to_string();
            prop_assert_eq!(wv, format!("{av}{lit}"));
            prop_assert!(re_contains(&re, &av));
        }
    }

    /// Disequalities are honoured by SAT models.
    #[test]
    fn ne_lit_respected(re_idx in 0usize..5, banned in "[ab]{0,3}") {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::and(vec![
            Formula::in_re(v, small_re(re_idx)),
            Formula::ne_lit(v, banned.clone()),
        ]);
        let (outcome, _) = Solver::default().solve(&f);
        if let Outcome::Sat(model) = outcome {
            prop_assert_ne!(model.get_str(v).expect("assigned"), banned.as_str());
        }
    }

    /// UNSAT answers agree with brute-force over finite languages.
    #[test]
    fn unsat_agrees_with_bruteforce(target in "[ab]{0,3}") {
        // v ∈ {ab, ba} ∧ v = target: SAT iff target ∈ {ab, ba}.
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::and(vec![
            Formula::in_re(v, small_re(2)),
            Formula::eq_lit(v, target.clone()),
        ]);
        let (outcome, _) = Solver::default().solve(&f);
        let expected = target == "ab" || target == "ba";
        match outcome {
            Outcome::Sat(_) => prop_assert!(expected),
            Outcome::Unsat => prop_assert!(!expected),
            Outcome::Unknown => {} // allowed, but should not occur here
        }
    }
}

#[test]
fn backref_shape_equation() {
    // w = v ++ "-" ++ v, v ∈ a+ : solver must duplicate correctly.
    let mut pool = VarPool::new();
    let w = pool.fresh_str("w");
    let v = pool.fresh_str("v");
    let f = Formula::and(vec![
        Formula::eq_concat(w, vec![Term::Var(v), Term::lit("-"), Term::Var(v)]),
        Formula::in_re(v, CRegex::plus(CRegex::set(CharSet::single('a')))),
        Formula::ne_lit(w, "a-a"),
    ]);
    let model = Solver::default().solve(&f).0.model().expect("sat");
    assert_eq!(model.get_str(w), Some("aa-aa"));
}

#[test]
fn deep_nesting_resolves() {
    // Four levels of nested equations.
    let mut pool = VarPool::new();
    let vars: Vec<_> = (0..5).map(|i| pool.fresh_str(format!("v{i}"))).collect();
    let mut conjuncts = Vec::new();
    for i in 0..4 {
        conjuncts.push(Formula::eq_concat(
            vars[i],
            vec![Term::Var(vars[i + 1]), Term::lit("x")],
        ));
    }
    conjuncts.push(Formula::eq_lit(vars[4], "seed"));
    let model = Solver::default()
        .solve(&Formula::and(conjuncts))
        .0
        .model()
        .expect("sat");
    assert_eq!(model.get_str(vars[0]), Some("seedxxxx"));
}

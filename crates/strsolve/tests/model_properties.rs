//! Seeded random-formula property tests: every `Sat` model the solver
//! produces must satisfy the formula it was produced from, under the
//! independent, direct evaluator ([`Model::satisfies`] — DFA membership
//! plus string concatenation, no solver machinery). Covers the three
//! constraint families the capturing-language models emit — word
//! equations (concat), regular membership, and negation (`∉`, `≠`).

use automata::{CRegex, CharSet};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use strsolve::model::re_contains;
use strsolve::{Formula, Model, Outcome, Solver, StrVar, Term, VarPool};

/// The independent evaluator: now a library hook ([`Model::satisfies`])
/// so the differential fuzzer shares one implementation with these
/// property tests.
fn eval(formula: &Formula, model: &Model) -> bool {
    model.satisfies(formula)
}

/// A small random classical regex over {a, b, c}.
fn random_regex(rng: &mut StdRng, depth: usize) -> CRegex {
    let leaf = |rng: &mut StdRng| {
        let options = [
            CRegex::set(CharSet::single('a')),
            CRegex::set(CharSet::single('b')),
            CRegex::set(CharSet::range('a', 'c')),
            CRegex::lit("ab"),
            CRegex::lit("c"),
        ];
        options.choose(rng).expect("nonempty").clone()
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.random_range(0usize..6) {
        0 => CRegex::star(random_regex(rng, depth - 1)),
        1 => CRegex::plus(random_regex(rng, depth - 1)),
        2 => CRegex::opt(random_regex(rng, depth - 1)),
        3 => CRegex::concat(vec![
            random_regex(rng, depth - 1),
            random_regex(rng, depth - 1),
        ]),
        4 => CRegex::alt(vec![
            random_regex(rng, depth - 1),
            random_regex(rng, depth - 1),
        ]),
        _ => leaf(rng),
    }
}

/// A random conjunction of concat equations, memberships and negations
/// over a small variable pool.
fn random_formula(rng: &mut StdRng, pool: &mut VarPool) -> Formula {
    let vars: Vec<StrVar> = (0..4).map(|i| pool.fresh_str(format!("v{i}"))).collect();
    let literals = ["", "a", "b", "ab", "abc", "cc"];
    let n = 1 + rng.random_range(0usize..4);
    let mut conjuncts = Vec::new();
    for _ in 0..n {
        let v = *vars.choose(rng).expect("nonempty");
        let u = *vars.choose(rng).expect("nonempty");
        let lit = *literals.choose(rng).expect("nonempty");
        conjuncts.push(match rng.random_range(0usize..6) {
            // Word equations.
            0 => Formula::eq_concat(v, vec![Term::Var(u), Term::lit(lit)]),
            1 => Formula::eq_concat(v, vec![Term::lit(lit), Term::Var(u), Term::Var(u)]),
            // Membership.
            2 => Formula::in_re(v, random_regex(rng, 2)),
            // Negation family.
            3 => Formula::not_in_re(v, random_regex(rng, 2)),
            4 => Formula::ne_lit(v, lit),
            _ => Formula::eq_lit(v, lit),
        });
    }
    Formula::and(conjuncts)
}

#[test]
fn random_sat_models_satisfy_their_formula() {
    let mut sat = 0usize;
    let mut total = 0usize;
    for seed in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool = VarPool::new();
        let formula = random_formula(&mut rng, &mut pool);
        total += 1;
        let (outcome, _) = Solver::default().solve(&formula);
        if let Outcome::Sat(model) = outcome {
            sat += 1;
            assert!(
                eval(&formula, &model),
                "seed {seed}: model {model:?} does not satisfy {formula}"
            );
        }
    }
    // The generator must actually exercise the solver.
    assert!(sat >= total / 4, "only {sat}/{total} instances were Sat");
}

#[test]
fn membership_witnesses_are_members() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0x5eed ^ seed);
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let re = random_regex(&mut rng, 3);
        let formula = Formula::in_re(v, re.clone());
        if let (Outcome::Sat(model), _) = Solver::default().solve(&formula) {
            let value = model.get_str(v).expect("assigned");
            assert!(
                re_contains(&re, value),
                "seed {seed}: witness {value:?} not in L({re})"
            );
        }
    }
}

#[test]
fn negation_witnesses_are_non_members() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0xbad ^ seed);
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let re = random_regex(&mut rng, 3);
        let formula = Formula::not_in_re(v, re.clone());
        if let (Outcome::Sat(model), _) = Solver::default().solve(&formula) {
            let value = model.get_str(v).expect("assigned");
            assert!(
                !re_contains(&re, value),
                "seed {seed}: witness {value:?} unexpectedly in L({re})"
            );
        }
    }
}

#[test]
fn concat_with_duplicated_variable_is_consistent() {
    // The backreference shape: w = u ++ u ++ "x", u ∈ (ab)+.
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37));
        let mut pool = VarPool::new();
        let w = pool.fresh_str("w");
        let u = pool.fresh_str("u");
        let re = CRegex::plus(random_regex(&mut rng, 1));
        let formula = Formula::and(vec![
            Formula::eq_concat(w, vec![Term::Var(u), Term::Var(u), Term::lit("x")]),
            Formula::in_re(u, re.clone()),
        ]);
        if let (Outcome::Sat(model), _) = Solver::default().solve(&formula) {
            let wv = model.get_str(w).expect("assigned");
            let uv = model.get_str(u).expect("assigned");
            assert_eq!(wv, format!("{uv}{uv}x"), "seed {seed}");
            assert!(re_contains(&re, uv), "seed {seed}");
        }
    }
}

//! Differential suite for the length-abstraction pass: over a seeded
//! random-formula corpus (the same constraint families the
//! capturing-language models emit), solving with the pass enabled and
//! disabled must yield identical verdicts, and every `Sat` model from
//! the enabled solver must satisfy its formula. The lazy/minimizing
//! automata pipeline is exercised on top: verdicts must also match the
//! fully eager configuration.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use automata::{CRegex, CharSet};
use strsolve::{Formula, Outcome, Solver, SolverConfig, StrVar, Term, VarPool};

/// A small random classical regex over {a, b, c}.
fn random_regex(rng: &mut StdRng, depth: usize) -> CRegex {
    let leaf = |rng: &mut StdRng| {
        let options = [
            CRegex::set(CharSet::single('a')),
            CRegex::set(CharSet::single('b')),
            CRegex::set(CharSet::range('a', 'c')),
            CRegex::lit("ab"),
            CRegex::lit("c"),
        ];
        options.choose(rng).expect("nonempty").clone()
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.random_range(0usize..6) {
        0 => CRegex::star(random_regex(rng, depth - 1)),
        1 => CRegex::plus(random_regex(rng, depth - 1)),
        2 => CRegex::opt(random_regex(rng, depth - 1)),
        3 => CRegex::concat(vec![
            random_regex(rng, depth - 1),
            random_regex(rng, depth - 1),
        ]),
        4 => CRegex::alt(vec![
            random_regex(rng, depth - 1),
            random_regex(rng, depth - 1),
        ]),
        _ => leaf(rng),
    }
}

/// A random conjunction of concat equations, memberships, negations
/// and literal (dis)equalities — the shapes the length intervals
/// propagate through.
fn random_formula(rng: &mut StdRng, pool: &mut VarPool) -> Formula {
    let vars: Vec<StrVar> = (0..4).map(|i| pool.fresh_str(format!("v{i}"))).collect();
    let literals = ["", "a", "b", "ab", "abc", "cc", "abab"];
    let n = 1 + rng.random_range(0usize..5);
    let mut conjuncts = Vec::new();
    for _ in 0..n {
        let v = *vars.choose(rng).expect("nonempty");
        let u = *vars.choose(rng).expect("nonempty");
        let w = *vars.choose(rng).expect("nonempty");
        let lit = *literals.choose(rng).expect("nonempty");
        conjuncts.push(match rng.random_range(0usize..7) {
            0 => Formula::eq_concat(v, vec![Term::Var(u), Term::lit(lit)]),
            1 => Formula::eq_concat(v, vec![Term::lit(lit), Term::Var(u), Term::Var(u)]),
            2 => Formula::eq_concat(v, vec![Term::Var(u), Term::Var(w)]),
            3 => Formula::in_re(v, random_regex(rng, 2)),
            4 => Formula::not_in_re(v, random_regex(rng, 2)),
            5 => Formula::ne_lit(v, lit),
            _ => Formula::eq_lit(v, lit),
        });
    }
    Formula::and(conjuncts)
}

fn verdict(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Sat(_) => "sat",
        Outcome::Unsat => "unsat",
        Outcome::Unknown => "unknown",
    }
}

#[test]
fn verdicts_identical_with_length_abstraction_on_and_off() {
    let with = Solver::new(SolverConfig {
        length_abstraction: true,
        ..SolverConfig::default()
    });
    let without = Solver::new(SolverConfig {
        length_abstraction: false,
        ..SolverConfig::default()
    });
    let mut sat = 0usize;
    let mut unsat = 0usize;
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(0x1e57 ^ seed);
        let mut pool = VarPool::new();
        let formula = random_formula(&mut rng, &mut pool);
        let (on, _) = with.solve(&formula);
        let (off, _) = without.solve(&formula);
        assert_eq!(
            verdict(&on),
            verdict(&off),
            "seed {seed}: verdict changed by length abstraction on {formula}"
        );
        match on {
            Outcome::Sat(_) => sat += 1,
            Outcome::Unsat => unsat += 1,
            Outcome::Unknown => {}
        }
    }
    // The corpus must exercise both verdicts for the diff to mean much.
    assert!(sat >= 50, "only {sat} Sat instances");
    assert!(unsat >= 25, "only {unsat} Unsat instances");
}

#[test]
fn verdicts_identical_between_eager_and_lazy_pipelines() {
    // The full tentpole stack — minimization, canonical interning,
    // lazy pinned-root products, length abstraction — against the
    // seed's eager configuration.
    let lazy = Solver::new(SolverConfig::default());
    let eager = Solver::new(SolverConfig {
        minimize_threshold: 0,
        length_abstraction: false,
        dfa_cache_capacity: 0,
        ..SolverConfig::default()
    });
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(0xea10 ^ seed);
        let mut pool = VarPool::new();
        let formula = random_formula(&mut rng, &mut pool);
        let (a, _) = lazy.solve(&formula);
        let (b, _) = eager.solve(&formula);
        assert_eq!(
            verdict(&a),
            verdict(&b),
            "seed {seed}: pipeline changed the verdict of {formula}"
        );
    }
}

#[test]
fn models_from_the_length_abstracted_solver_are_valid() {
    // Model soundness under the pass: every Sat model satisfies its
    // formula (checked with the solver's own final model — membership
    // via an independent eager DFA).
    let solver = Solver::new(SolverConfig {
        length_abstraction: true,
        ..SolverConfig::default()
    });
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0x10de1 ^ seed);
        let mut pool = VarPool::new();
        let formula = random_formula(&mut rng, &mut pool);
        if let (Outcome::Sat(model), _) = solver.solve(&formula) {
            assert!(
                eval(&formula, &model),
                "seed {seed}: model {model:?} violates {formula}"
            );
        }
    }
}

/// Independent evaluator (eager DFA membership, direct concatenation).
fn eval(formula: &Formula, model: &strsolve::Model) -> bool {
    use std::sync::Arc;
    use strsolve::Atom;
    let re_contains = |re: &CRegex, word: &str| -> bool {
        let mut sets = Vec::new();
        re.collect_sets(&mut sets);
        for c in word.chars() {
            sets.push(CharSet::single(c));
        }
        let alphabet = Arc::new(automata::Alphabet::from_sets(&sets));
        automata::Dfa::from_cregex(re, &alphabet).contains(word)
    };
    let term_value = |t: &Term| -> Option<String> {
        match t {
            Term::Var(v) => model.get_str(*v).map(str::to_string),
            Term::Lit(s) => Some(s.clone()),
        }
    };
    match formula {
        Formula::And(items) => items.iter().all(|f| eval(f, model)),
        Formula::Or(items) => items.iter().any(|f| eval(f, model)),
        Formula::Atom(atom) => match atom {
            Atom::True => true,
            Atom::False => false,
            Atom::Bool(b, value) => model.get_bool(*b) == *value,
            Atom::EqLit(v, lit) => model.get_str(*v) == Some(lit.as_str()),
            Atom::NeLit(v, lit) => model.get_str(*v).is_some_and(|value| value != lit.as_str()),
            Atom::EqVar(v, u) => {
                model.get_str(*v).is_some() && model.get_str(*v) == model.get_str(*u)
            }
            Atom::NeVar(v, u) => match (model.get_str(*v), model.get_str(*u)) {
                (Some(a), Some(b)) => a != b,
                _ => false,
            },
            Atom::InRe(v, re) => model
                .get_str(*v)
                .is_some_and(|value| re_contains(re, value)),
            Atom::NotInRe(v, re) => model
                .get_str(*v)
                .is_some_and(|value| !re_contains(re, value)),
            Atom::EqConcat(v, parts) => {
                let Some(lhs) = model.get_str(*v) else {
                    return false;
                };
                let mut rhs = String::new();
                for part in parts {
                    match term_value(part) {
                        Some(value) => rhs.push_str(&value),
                        None => return false,
                    }
                }
                lhs == rhs
            }
        },
    }
}

//! Word-language compilation helpers.
//!
//! Two services on top of [`automata::compile_classical`]:
//!
//! * [`try_wrapped_word_language`] — the *exact* word language of the
//!   Algorithm 2 wrapping `(?:.|\n)*?(R)(?:.|\n)*?` over marked input
//!   `⟨input⟩`, available when `R` is backreference-free and uses anchors
//!   only at its top level. Used for exact non-membership constraints
//!   (`∀C: (w, C) ∉ Lc(R)` reduces to `w ∉ L(...)` because captures do
//!   not affect the word language).
//! * [`overapprox_word_regex`] — a total overapproximation of the same
//!   language for *any* ES6 regex (backreferences become optional copies
//!   of their groups, lookarounds and inner anchors weaken to `ε`).
//!   Conjoined to positive membership queries as a *necessary* condition,
//!   it steers the solver's word enumeration toward matching inputs
//!   without affecting the model's meaning.

use automata::{compile_classical, CRegex, CharSet, CompileOptions};
use regex_syntax_es6::ast::{AssertionKind, Ast};
use regex_syntax_es6::rewrite::strip_captures;
use regex_syntax_es6::Flags;

use crate::meta::{INPUT_END, INPUT_START};

/// Compile options for user regexes: meta-characters are excluded from
/// wildcards and negated classes, and flags are applied.
pub fn user_compile_options(flags: Flags) -> CompileOptions {
    CompileOptions {
        exclude: crate::meta::meta_set(),
        ignore_case: flags.ignore_case,
        dot_all: flags.dot_all,
    }
}

/// Any character, including the meta-characters (the wrapper wildcard
/// `(?:.|\n)*?` of Algorithm 2 must be able to consume the markers).
pub fn wrapper_wildcard() -> CRegex {
    CRegex::star(CRegex::set(CharSet::any()))
}

/// `Σ*` over characters excluding the meta-characters.
pub fn no_meta_star() -> CRegex {
    CRegex::star(CRegex::set(
        CharSet::any().difference(&crate::meta::meta_set()),
    ))
}

/// Splits a top-level concatenation into (leading `^`?, body, trailing
/// `$`?). Returns `None` if anchors appear anywhere else.
fn split_top_anchors(ast: &Ast) -> Option<(bool, Vec<Ast>, bool)> {
    let items: Vec<Ast> = match ast {
        Ast::Concat(items) => items.clone(),
        other => vec![other.clone()],
    };
    let mut start = false;
    let mut end = false;
    let mut body = items.as_slice();
    if let Some(Ast::Assertion(AssertionKind::StartAnchor)) = body.first() {
        start = true;
        body = &body[1..];
    }
    if let Some(Ast::Assertion(AssertionKind::EndAnchor)) = body.last() {
        end = true;
        body = &body[..body.len() - 1];
    }
    if body.iter().any(Ast::has_assertion) {
        return None;
    }
    Some((start, end, body.to_vec())).map(|(s, e, b)| (s, b, e))
}

/// The exact word language of the wrapped pattern over marked input, if
/// computable classically.
///
/// Returns `None` when the regex contains backreferences, word
/// boundaries, multiline anchors, or anchors below the top level.
pub fn try_wrapped_word_language(ast: &Ast, flags: Flags) -> Option<CRegex> {
    if ast.has_backref() {
        return None;
    }
    if flags.multiline && ast.has_assertion() {
        return None;
    }
    let (anchored_start, body, anchored_end) = split_top_anchors(ast)?;
    let body = Ast::concat(body);
    let opts = user_compile_options(flags);
    // Marker uniqueness: an anchored start means the wrapper consumed
    // exactly `⟨`; unanchored, it consumed `⟨` plus arbitrary text.
    let start_marker = CRegex::set(CharSet::single(INPUT_START));
    let end_marker = CRegex::set(CharSet::single(INPUT_END));
    let left = if anchored_start {
        start_marker
    } else {
        CRegex::concat(vec![start_marker, no_meta_star()])
    };
    let right = if anchored_end {
        end_marker
    } else {
        CRegex::concat(vec![no_meta_star(), end_marker])
    };
    // The body is compiled *into* the rest-of-word language so that
    // lookaheads in (or at the end of) the body inspect the real
    // continuation — the suffix and the `⟩` marker, which correctly
    // plays "end of input" because no user atom can consume it.
    let inner_and_right =
        automata::compile_classical_into(&strip_captures(&body), &opts, right).ok()?;
    Some(CRegex::concat(vec![left, inner_and_right]))
}

/// A total overapproximation of the wrapped word language, used to guide
/// word enumeration for positive membership queries.
pub fn overapprox_word_regex(ast: &Ast, flags: Flags) -> CRegex {
    let opts = user_compile_options(flags);
    let (anchored_start, body, anchored_end) = match split_top_anchors(ast) {
        Some(split) => split,
        // Anchors in odd positions: ignore anchoring (overapproximate).
        None => (false, vec![ast.clone()], false),
    };
    let body = Ast::concat(body);
    let inner = overapprox_body(&body, ast, &opts, 0);
    let start_marker = CRegex::set(CharSet::single(INPUT_START));
    let end_marker = CRegex::set(CharSet::single(INPUT_END));
    let left = if anchored_start && !flags.multiline {
        start_marker
    } else {
        CRegex::concat(vec![start_marker, no_meta_star()])
    };
    let right = if anchored_end && !flags.multiline {
        end_marker
    } else {
        CRegex::concat(vec![no_meta_star(), end_marker])
    };
    CRegex::concat(vec![left, inner, right])
}

/// Overapproximates an arbitrary AST fragment as a classical regex
/// over the *user* alphabet (no input markers): assertions and
/// lookarounds weaken to `ε`, backreferences to an optional copy of the
/// referenced group's language (resolved against `root`). The result is
/// a necessary condition on the fragment's matched word — safe to
/// conjoin positively, or to use as the word language of an escape
/// disjunct that restores overapproximation to an otherwise truncated
/// expansion (quantified mutable backreferences, Table 3).
pub fn overapprox_fragment(ast: &Ast, root: &Ast, flags: Flags) -> CRegex {
    overapprox_body(ast, root, &user_compile_options(flags), 0)
}

/// Overapproximates an arbitrary AST as a classical regex: assertions
/// and lookarounds weaken to `ε`, backreferences to an optional copy of
/// the referenced group's language.
fn overapprox_body(ast: &Ast, root: &Ast, opts: &CompileOptions, depth: u32) -> CRegex {
    match ast {
        Ast::Empty => CRegex::Epsilon,
        Ast::Assertion(_) | Ast::Lookahead { .. } => CRegex::Epsilon,
        Ast::Backref(k) => {
            if depth >= 4 {
                // Self-referential chains: fall back to ε|anything-ish;
                // ε alone would underapproximate, so use the loosest
                // sound choice for a necessary condition: Σ*.
                return no_meta_star();
            }
            match find_group(root, *k) {
                // A backreference matches ε (group undefined) or a word
                // from (an overapproximation of) the group's language.
                Some(group_body) => {
                    CRegex::opt(overapprox_body(&group_body, root, opts, depth + 1))
                }
                None => CRegex::Epsilon,
            }
        }
        Ast::Group { ast, .. } | Ast::NonCapturing(ast) => overapprox_body(ast, root, opts, depth),
        Ast::Repeat { ast, min, max, .. } => {
            CRegex::repeat(overapprox_body(ast, root, opts, depth), *min, *max)
        }
        Ast::Alt(items) => CRegex::alt(
            items
                .iter()
                .map(|i| overapprox_body(i, root, opts, depth))
                .collect(),
        ),
        Ast::Concat(items) => CRegex::concat(
            items
                .iter()
                .map(|i| overapprox_body(i, root, opts, depth))
                .collect(),
        ),
        // Leaf cases are classical already.
        leaf => compile_classical(leaf, opts).unwrap_or_else(|_| no_meta_star()),
    }
}

/// Finds the body of capture group `k`.
fn find_group(ast: &Ast, k: u32) -> Option<Ast> {
    match ast {
        Ast::Group { index, ast } if *index == k => Some((**ast).clone()),
        Ast::Group { ast, .. } | Ast::NonCapturing(ast) | Ast::Lookahead { ast, .. } => {
            find_group(ast, k)
        }
        Ast::Repeat { ast, .. } => find_group(ast, k),
        Ast::Alt(items) | Ast::Concat(items) => items.iter().find_map(|i| find_group(i, k)),
        _ => None,
    }
}

/// `t̂₁*` of the Table 2 quantification rule: the classical star of the
/// capture-stripped body, when it is classical.
///
/// Lookaheads are refused along with backreferences and assertions: a
/// lookahead inside one iteration scopes over the *following*
/// iterations (and beyond), which the syntactic star cannot express —
/// compiling it fragment-locally produced constraints that were too
/// strong, i.e. unsound `Unsat`s. Callers treat `None` as `⊤` and mark
/// the model inexact.
pub fn try_hat_star(body: &Ast, flags: Flags) -> Option<CRegex> {
    if body.has_backref() || body.has_assertion() || body.has_lookahead() {
        return None;
    }
    let opts = user_compile_options(flags);
    compile_classical(&strip_captures(body), &opts)
        .ok()
        .map(CRegex::star)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::wrap_input;
    use automata::{Alphabet, Dfa};
    use regex_syntax_es6::parse;
    use std::sync::Arc;

    fn dfa_of(re: &CRegex) -> Dfa {
        let mut sets = Vec::new();
        re.collect_sets(&mut sets);
        let alphabet = Arc::new(Alphabet::from_sets(&sets));
        Dfa::from_cregex(re, &alphabet)
    }

    #[test]
    fn unanchored_word_language() {
        let ast = parse("goo+d").expect("parse");
        let re = try_wrapped_word_language(&ast, Flags::empty()).expect("classical");
        let dfa = dfa_of(&re);
        assert!(dfa.contains(&wrap_input("so goood")));
        assert!(!dfa.contains(&wrap_input("god")));
    }

    #[test]
    fn anchored_word_language() {
        let ast = parse("^[0-9]+$").expect("parse");
        let re = try_wrapped_word_language(&ast, Flags::empty()).expect("classical");
        let dfa = dfa_of(&re);
        assert!(dfa.contains(&wrap_input("123")));
        assert!(!dfa.contains(&wrap_input("x123")));
        assert!(!dfa.contains(&wrap_input("123x")));
        assert!(!dfa.contains(&wrap_input("")));
    }

    #[test]
    fn start_anchor_only() {
        let ast = parse("^ab").expect("parse");
        let re = try_wrapped_word_language(&ast, Flags::empty()).expect("classical");
        let dfa = dfa_of(&re);
        assert!(dfa.contains(&wrap_input("abc")));
        assert!(!dfa.contains(&wrap_input("xab")));
    }

    #[test]
    fn backrefs_are_not_classical() {
        let ast = parse(r"(a)\1").expect("parse");
        assert!(try_wrapped_word_language(&ast, Flags::empty()).is_none());
    }

    #[test]
    fn inner_anchor_rejected() {
        let ast = parse("a(?:^b)?").expect("parse");
        assert!(try_wrapped_word_language(&ast, Flags::empty()).is_none());
    }

    #[test]
    fn overapprox_contains_all_matches() {
        // The overapproximation must accept every truly matching input.
        let ast = parse(r"<(\w+)>([0-9]*)<\/\1>").expect("parse");
        let re = overapprox_word_regex(&ast, Flags::empty());
        let dfa = dfa_of(&re);
        assert!(dfa.contains(&wrap_input("<a>1</a>")));
        assert!(dfa.contains(&wrap_input("xx<tag>99</tag>yy")));
        // It may also accept non-matches (it is an overapproximation):
        assert!(dfa.contains(&wrap_input("<a>1</b>")));
        // But it must still prune grossly wrong words.
        assert!(!dfa.contains(&wrap_input("no tags at all")));
    }

    #[test]
    fn overapprox_with_anchors() {
        let ast = parse("^a+$").expect("parse");
        let re = overapprox_word_regex(&ast, Flags::empty());
        let dfa = dfa_of(&re);
        assert!(dfa.contains(&wrap_input("aaa")));
        assert!(!dfa.contains(&wrap_input("baa")));
    }

    #[test]
    fn hat_star_strips_captures() {
        let body = parse("(ab|c)").expect("parse");
        let re = try_hat_star(&body, Flags::empty()).expect("classical");
        let dfa = dfa_of(&re);
        assert!(dfa.contains(""));
        assert!(dfa.contains("abc"));
        assert!(dfa.contains("cab"));
        assert!(!dfa.contains("b"));
    }

    #[test]
    fn hat_star_rejects_backrefs() {
        let body = parse(r"(a)\1").expect("parse");
        assert!(try_hat_star(&body, Flags::empty()).is_none());
    }
}

//! Symbolic models of the ES6 regex API (Algorithm 2, §6.1).
//!
//! [`build_match_model`] implements the pseudocode of Algorithm 2 for
//! `RegExp.exec(input)` symbolically: the subject string is wrapped in
//! the ⟨/⟩ meta-characters, the pattern is wrapped in
//! `(?:.|\n)*?(source)(?:.|\n)*?` with the original source inside the
//! implicit capture group 0, flags are processed (`i` by case-expansion,
//! `m` by anchor-set adjustment), and the result is a
//! [`CapturingConstraint`] relating the input variable to the capture
//! variables. `RegExp.test(s)` is precisely
//! `RegExp.exec(s) !== undefined` and uses the same constraint.

use regex_syntax_es6::Regex;
use strsolve::{Formula, StrVar, Term, VarPool};

use crate::classical::{no_meta_star, overapprox_word_regex, try_wrapped_word_language};
use crate::meta::{INPUT_END, INPUT_START};
use crate::model::{BuildConfig, CaptureVar, ModelBuilder};
use crate::negate::nnf_negate;

/// One capturing-language membership constraint
/// `(w, C₀, …, Cₙ) ⊡ Lc(R)` with `⊡ ∈ {∈, ∉}`, packaged with everything
/// Algorithm 1 needs: the formula, the variables, and the original
/// regex for the concrete-matcher oracle.
#[derive(Debug, Clone)]
pub struct CapturingConstraint {
    /// The original regex (the CEGAR oracle matches against this).
    pub regex: Regex,
    /// The raw subject-string variable (no meta-characters).
    pub input: StrVar,
    /// The wrapped word variable `⟨input⟩`.
    pub wrapped: StrVar,
    /// Capture variables `C₀ … Cₙ` (`C₀` is the whole match).
    pub captures: Vec<CaptureVar>,
    /// True for membership (`∈`), false for non-membership (`∉`).
    pub positive: bool,
    /// The model formula (conjoin with the rest of the path condition).
    pub formula: Formula,
    /// False when the model took an extra overapproximation beyond the
    /// paper's base model (see [`crate::model::RegexModel::exact`]).
    pub exact: bool,
}

impl CapturingConstraint {
    /// The constraint with every variable shifted into another pool's
    /// numbering — the rebasing step of the cross-query model cache
    /// ([`crate::cache::ModelCache`]): a constraint built against a
    /// private pool is grafted onto a query's pool with the offsets
    /// returned by [`strsolve::VarPool::absorb`].
    pub fn offset_vars(&self, str_offset: u32, bool_offset: u32) -> CapturingConstraint {
        CapturingConstraint {
            regex: self.regex.clone(),
            input: self.input.offset_by(str_offset),
            wrapped: self.wrapped.offset_by(str_offset),
            captures: self
                .captures
                .iter()
                .map(|c| c.offset_by(str_offset, bool_offset))
                .collect(),
            positive: self.positive,
            formula: self.formula.offset_vars(str_offset, bool_offset),
            exact: self.exact,
        }
    }
}

/// Builds the Algorithm 2 model for a match (`exec` returning a result,
/// `test` returning `true`) or a non-match (`∉`, `test` returning
/// `false`) of `regex` against a fresh symbolic input string.
///
/// # Examples
///
/// ```
/// use expose_core::api::build_match_model;
/// use expose_core::model::BuildConfig;
/// use regex_syntax_es6::Regex;
/// use strsolve::{Solver, VarPool};
///
/// let regex = Regex::parse_literal("/goo+d/")?;
/// let mut pool = VarPool::new();
/// let constraint = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
/// let (outcome, _) = Solver::default().solve(&constraint.formula);
/// let model = outcome.model().expect("satisfiable");
/// let input = model.get_str(constraint.input).expect("assigned");
/// assert!(input.contains("goo"));
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
pub fn build_match_model(
    regex: &Regex,
    positive: bool,
    pool: &mut VarPool,
    cfg: &BuildConfig,
) -> CapturingConstraint {
    let input = pool.fresh_str("input");
    let wrapped = pool.fresh_str("input'");
    // input' = ⟨ + input + ⟩, and the raw input contains no markers.
    let well_formed = Formula::and(vec![
        Formula::eq_concat(
            wrapped,
            vec![
                Term::lit(INPUT_START.to_string()),
                Term::Var(input),
                Term::lit(INPUT_END.to_string()),
            ],
        ),
        Formula::in_re(input, no_meta_star()),
    ]);

    if positive {
        build_positive(regex, input, wrapped, well_formed, pool, cfg)
    } else {
        build_negative(regex, input, wrapped, well_formed, pool, cfg)
    }
}

fn build_positive(
    regex: &Regex,
    input: StrVar,
    wrapped: StrVar,
    well_formed: Formula,
    pool: &mut VarPool,
    cfg: &BuildConfig,
) -> CapturingConstraint {
    // source' = (?:.|\n)*?( source )(?:.|\n)*? — the outer group is C₀.
    let w1 = pool.fresh_str("w.pre");
    let w0 = pool.fresh_str("w.match");
    let w3 = pool.fresh_str("w.post");
    let c0 = CaptureVar::fresh(pool, "C0");

    let normalized = regex_syntax_es6::rewrite::normalize_lazy(&regex.ast);
    let mut builder = ModelBuilder::new(&normalized, regex.flags, pool, cfg.clone());
    let body = builder.model(
        &normalized,
        w0,
        Some(vec![Term::Var(w1)]),
        Some(vec![Term::Var(w3)]),
    );
    let mut captures = vec![c0];
    captures.extend_from_slice(builder.captures());
    let exact = builder.is_exact();

    // The wrapper wildcards: w1 starts with ⟨, w3 ends with ⟩, and the
    // match itself contains no markers.
    let start_marker = automata::CRegex::lit(&INPUT_START.to_string());
    let end_marker = automata::CRegex::lit(&INPUT_END.to_string());
    let pre_lang = automata::CRegex::concat(vec![start_marker, crate::classical::no_meta_star()]);
    let post_lang = automata::CRegex::concat(vec![crate::classical::no_meta_star(), end_marker]);

    // Necessary-condition guide for word enumeration (see
    // `classical::overapprox_word_regex`).
    let guide = overapprox_word_regex(&regex.ast, regex.flags);

    let formula = Formula::and(vec![
        well_formed,
        Formula::eq_concat(wrapped, vec![Term::Var(w1), Term::Var(w0), Term::Var(w3)]),
        Formula::in_re(w1, pre_lang),
        Formula::in_re(w3, post_lang),
        Formula::in_re(w0, crate::classical::no_meta_star()),
        c0.defined_as(w0),
        body,
        Formula::in_re(wrapped, guide),
    ]);

    CapturingConstraint {
        regex: regex.clone(),
        input,
        wrapped,
        captures,
        positive: true,
        formula,
        exact,
    }
}

fn build_negative(
    regex: &Regex,
    input: StrVar,
    wrapped: StrVar,
    well_formed: Formula,
    pool: &mut VarPool,
    cfg: &BuildConfig,
) -> CapturingConstraint {
    // Exact classical reduction when possible: captures do not affect
    // the word language, so ∀C: (w, C) ∉ Lc(R) ⟺ w ∉ L(wrapped R).
    if let Some(lang) = try_wrapped_word_language(&regex.ast, regex.flags) {
        let c0 = CaptureVar::fresh(pool, "C0");
        let n = regex.capture_count;
        let mut captures = vec![c0];
        for i in 1..=n {
            captures.push(CaptureVar::fresh(pool, &format!("C{i}")));
        }
        let mut conjuncts = vec![well_formed, Formula::not_in_re(wrapped, lang)];
        // A failed exec defines no captures.
        for cap in &captures {
            conjuncts.push(cap.undefined());
        }
        return CapturingConstraint {
            regex: regex.clone(),
            input,
            wrapped,
            captures,
            positive: false,
            formula: Formula::and(conjuncts),
            exact: true,
        };
    }

    // General path (§4.4): negate the structural model.
    let w1 = pool.fresh_str("w.pre");
    let w0 = pool.fresh_str("w.match");
    let w3 = pool.fresh_str("w.post");
    let c0 = CaptureVar::fresh(pool, "C0");
    let normalized = regex_syntax_es6::rewrite::normalize_lazy(&regex.ast);
    let mut builder = ModelBuilder::new(&normalized, regex.flags, pool, cfg.clone());
    let body = builder.model(
        &normalized,
        w0,
        Some(vec![Term::Var(w1)]),
        Some(vec![Term::Var(w3)]),
    );
    let mut captures = vec![c0];
    captures.extend_from_slice(builder.captures());

    let start_marker = automata::CRegex::lit(&INPUT_START.to_string());
    let end_marker = automata::CRegex::lit(&INPUT_END.to_string());
    let pre_lang = automata::CRegex::concat(vec![start_marker, crate::classical::no_meta_star()]);
    let post_lang = automata::CRegex::concat(vec![crate::classical::no_meta_star(), end_marker]);

    let match_structure = Formula::and(vec![
        Formula::eq_concat(wrapped, vec![Term::Var(w1), Term::Var(w0), Term::Var(w3)]),
        Formula::in_re(w1, pre_lang),
        Formula::in_re(w3, post_lang),
        body,
    ]);
    // The negated structural model keeps the partition equations
    // positive (§4.4), so it is only satisfiable when the match shape
    // can be laid out over the word at all. Words where it cannot (no
    // substring fits the structure) are genuine non-matches the
    // negation would otherwise miss — cover them with the sound escape
    // hatch "the wrapped word violates a necessary condition of
    // matching" (the overapproximated word language).
    let guide = overapprox_word_regex(&regex.ast, regex.flags);
    let formula = Formula::and(vec![
        well_formed,
        Formula::or(vec![
            Formula::not_in_re(wrapped, guide),
            nnf_negate(&match_structure),
        ]),
    ]);

    CapturingConstraint {
        regex: regex.clone(),
        input,
        wrapped,
        captures,
        positive: false,
        formula,
        // The general negated model is never exact before refinement.
        exact: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strsolve::Solver;

    fn constraint(literal: &str, positive: bool) -> (CapturingConstraint, VarPool) {
        let regex = Regex::parse_literal(literal).expect("literal");
        let mut pool = VarPool::new();
        let c = build_match_model(&regex, positive, &mut pool, &BuildConfig::default());
        (c, pool)
    }

    #[test]
    fn positive_model_produces_matching_input() {
        let (c, _) = constraint("/goo+d/", true);
        let (outcome, _) = Solver::default().solve(&c.formula);
        let model = outcome.model().expect("sat");
        let input = model.get_str(c.input).expect("assigned");
        let mut oracle = es6_matcher::RegExp::from_regex(c.regex.clone());
        assert!(oracle.test(input), "witness {input:?} must match");
    }

    #[test]
    fn negative_model_produces_non_matching_input() {
        let (c, _) = constraint("/goo+d/", false);
        let (outcome, _) = Solver::default().solve(&c.formula);
        let model = outcome.model().expect("sat");
        let input = model.get_str(c.input).expect("assigned");
        let mut oracle = es6_matcher::RegExp::from_regex(c.regex.clone());
        assert!(!oracle.test(input), "witness {input:?} must not match");
    }

    #[test]
    fn anchored_negative_is_exact() {
        let (c, _) = constraint("/^[0-9]+$/", false);
        assert!(c.exact);
        let (outcome, _) = Solver::default().solve(&c.formula);
        let model = outcome.model().expect("sat");
        let input = model.get_str(c.input).expect("assigned");
        let mut oracle = es6_matcher::RegExp::from_regex(c.regex.clone());
        assert!(!oracle.test(input));
    }

    #[test]
    fn positive_capture_variables_populated() {
        let (c, _) = constraint(r"/<([a-z]+)>/", true);
        let (outcome, _) = Solver::default().solve(&c.formula);
        let model = outcome.model().expect("sat");
        assert_eq!(c.captures.len(), 2); // C0, C1
        let c1 = c.captures[1];
        assert!(model.get_bool(c1.defined));
        let v = model.get_str(c1.value).expect("assigned");
        assert!(!v.is_empty());
    }

    #[test]
    fn backref_negative_uses_general_path() {
        let (c, _) = constraint(r"/(a)\1/", false);
        assert!(!c.exact);
    }
}
